//! Optimal meeting point (OMP) as a special case of FANN_R (paper §I).
//!
//! A group of friends wants to meet somewhere on the road network. The
//! classic OMP minimizes everyone's total travel; the *flexible* variant
//! finds the best spot reachable by any 60% of the group — useful when a
//! quorum suffices. By \[5\], \[10\] the candidate set is implicitly all of
//! `V`, which `fann_core::algo::omp` exploits directly.
//!
//! Run with: `cargo run --release --example meeting_point`

use fannr::fann::algo::{flexible_omp, omp};
use fannr::fann::Aggregate;
use fannr::roadnet::shortest_path;

fn main() {
    let mut rng = fannr::workload::rng(404);
    let graph = fannr::workload::synth::road_network(4000, &mut rng);
    let friends = fannr::workload::points::uniform_query_points(&graph, 10, 0.7, &mut rng);
    println!(
        "network: {} nodes | {} friends at {:?}",
        graph.num_nodes(),
        friends.len(),
        friends
    );

    for agg in [Aggregate::Sum, Aggregate::Max] {
        let (spot, cost) = omp(&graph, &friends, agg).expect("connected");
        println!("\n{agg}-OMP (everyone attends): meet at node {spot}, cost {cost}");
    }

    let flexible = flexible_omp(&graph, &friends, 0.6, Aggregate::Sum).expect("connected");
    println!(
        "\nflexible sum-OMP (any 60% = {} friends): meet at node {}, total travel {}",
        flexible.subset.len(),
        flexible.p_star,
        flexible.dist
    );
    println!("attendees: {:?}", flexible.subset);
    // Show each attendee's route.
    for &f in flexible.subset.iter().take(3) {
        if let Some((d, path)) = shortest_path(&graph, f, flexible.p_star) {
            println!("  {f} travels {d} via {} hops", path.len() - 1);
        }
    }

    let (_, full_cost) = omp(&graph, &friends, Aggregate::Sum).expect("connected");
    println!(
        "\nthe 60% quorum costs {:.0}% of full attendance",
        100.0 * flexible.dist as f64 / full_cost as f64
    );
    assert!(flexible.dist <= full_cost);
}
