//! Live traffic and the case for index-free FANN_R (paper §IV).
//!
//! A dispatch service keeps choosing the best depot (`P`) to serve a set
//! of delivery stops (`Q`, any 70% per run). When traffic changes, the
//! indexed pipeline must rebuild its labels (seconds to minutes, Fig. 9b)
//! while the index-free `Exact-max` answers on a fresh snapshot
//! immediately — this example measures both sides of that trade-off.
//!
//! Run with: `cargo run --release --example traffic_rerouting`

use fannr::fann::algo::exact_max;
use fannr::fann::{Aggregate, FannQuery};
use fannr::hublabel::HubLabels;
use fannr::roadnet::DynamicNetwork;

fn main() {
    let mut rng = fannr::workload::rng(66);
    let base = fannr::workload::synth::road_network(6000, &mut rng);
    let depots = fannr::workload::points::uniform_data_points(
        &base,
        30.0 / base.num_nodes() as f64,
        &mut rng,
    );
    let stops = fannr::workload::points::uniform_query_points(&base, 20, 0.4, &mut rng);
    println!(
        "network: {} nodes | {} depots | {} stops (serve any 70%)",
        base.num_nodes(),
        depots.len(),
        stops.len()
    );

    let mut live = DynamicNetwork::from_graph(&base);
    let query = |g: &fannr::roadnet::Graph| {
        let q = FannQuery::new(&depots, &stops, 0.7, Aggregate::Max);
        exact_max(g, &q).expect("reachable")
    };

    // Morning: free-flowing traffic.
    let t0 = std::time::Instant::now();
    let morning = query(&live.snapshot());
    println!(
        "\n08:00 — depot {} (worst leg {}), answered in {:?} with zero index",
        morning.p_star,
        morning.dist,
        t0.elapsed()
    );

    // Rush hour: congest every road around the chosen depot 6x.
    let snapshot = live.snapshot();
    let mut jammed = 0;
    for (u, v, _) in snapshot.edges() {
        let close = snapshot
            .euclid(u, morning.p_star)
            .min(snapshot.euclid(v, morning.p_star));
        if close < 800.0 {
            live.scale_weight(u, v, 6.0).expect("edge exists");
            jammed += 1;
        }
    }
    println!(
        "\n17:30 — rush hour: {jammed} road segments around depot {} now 6x slower",
        morning.p_star
    );

    let t0 = std::time::Instant::now();
    let evening = query(&live.snapshot());
    let index_free = t0.elapsed();
    println!(
        "new answer: depot {} (worst leg {}), answered in {index_free:?}",
        evening.p_star, evening.dist
    );

    // What the indexed pipeline would pay first: a label rebuild.
    let t0 = std::time::Instant::now();
    let _labels = HubLabels::build(&live.snapshot());
    let rebuild = t0.elapsed();
    println!(
        "\nindexed alternative: rebuild hub labels first = {rebuild:?} \
         ({}x the index-free answer)",
        (rebuild.as_secs_f64() / index_free.as_secs_f64()) as u64
    );
    assert_ne!(
        (morning.p_star, morning.dist),
        (evening.p_star, evening.dist),
        "the jam should move or worsen the optimum"
    );
}
