//! The paper's real-world scenario (§I): choosing a venue for an election
//! meeting that is legitimate as long as at least half the members attend.
//!
//! `Q` = members' locations, `P` = available venues, `g` = sum (total
//! traveling expense), `phi` = the quorum. Compares the exact answer with
//! the index-free `APX-sum` 3-approximation and reports the realized
//! ratio — in the paper's experiments it never exceeded 1.2.
//!
//! Run with: `cargo run --release --example election_meeting`

use fannr::fann::algo::{apx_sum, gd};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::{Aggregate, FannQuery};

fn main() {
    let mut rng = fannr::workload::rng(1789);
    let graph = fannr::workload::synth::road_network(8000, &mut rng);

    // 25 venues, 60 members spread over most of the city.
    let venues = fannr::workload::points::uniform_data_points(
        &graph,
        25.0 / graph.num_nodes() as f64,
        &mut rng,
    );
    let members = fannr::workload::points::uniform_query_points(&graph, 60, 0.8, &mut rng);
    println!(
        "city: {} road nodes | {} venues | {} members",
        graph.num_nodes(),
        venues.len(),
        members.len()
    );

    for quorum in [0.5, 0.75, 1.0] {
        let query = FannQuery::new(&venues, &members, quorum, Aggregate::Sum);
        let ine = InePhi::new(&graph, &members);

        let exact = gd(&query, &ine).expect("reachable");
        let approx = apx_sum(&graph, &query, &ine).expect("reachable");
        let ratio = approx.dist as f64 / exact.dist.max(1) as f64;

        println!(
            "\nquorum {:>3.0}% ({} members must attend):",
            quorum * 100.0,
            query.subset_size()
        );
        println!(
            "  exact:   venue {} — total travel {}",
            exact.p_star, exact.dist
        );
        println!(
            "  APX-sum: venue {} — total travel {} (ratio {ratio:.3}, bound 3.0)",
            approx.p_star, approx.dist
        );
        assert!(approx.dist >= exact.dist);
        assert!(ratio <= 3.0, "Theorem 1 violated");
    }

    // The flexible quorum saves real travel: compare phi = 0.5 vs 1.0.
    let ine = InePhi::new(&graph, &members);
    let half = gd(
        &FannQuery::new(&venues, &members, 0.5, Aggregate::Sum),
        &ine,
    )
    .unwrap();
    let all = gd(
        &FannQuery::new(&venues, &members, 1.0, Aggregate::Sum),
        &ine,
    )
    .unwrap();
    println!(
        "\nhalf-quorum meeting costs {:.1}% of the full-attendance optimum",
        100.0 * half.dist as f64 / all.dist as f64
    );
}
