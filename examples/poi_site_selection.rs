//! POI-based site selection with indexes and k-FANN_R (§V, Fig. 12).
//!
//! A delivery chain wants the 5 best fast-food locations (`P` = FF POIs)
//! to serve hospital demand (`Q` = HOS POIs), where each kitchen only has
//! capacity for 60% of the hospitals. Builds the full index stack (hub
//! labels, G-tree, R-tree) as a production deployment would, then answers
//! with the indexed IER-kNN pipeline and cross-checks with Exact-max.
//!
//! Run with: `cargo run --release --example poi_site_selection`

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::topk::{exact_max_topk, ier_topk};
use fannr::fann::gphi::ier2::IerPhi;
use fannr::fann::gphi::oracle::LabelOracle;
use fannr::fann::{Aggregate, FannQuery};
use fannr::hublabel::HubLabels;
use fannr::workload::poi::{generate_poi, PoiKind};

fn main() {
    let mut rng = fannr::workload::rng(2024);
    let graph = fannr::workload::synth::road_network(12_000, &mut rng);
    println!(
        "network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Index construction (one-off, amortized over all queries).
    let t0 = std::time::Instant::now();
    let labels = HubLabels::build(&graph);
    println!(
        "hub labels: {:.1}s, avg label size {:.1}",
        t0.elapsed().as_secs_f64(),
        labels.avg_label_size()
    );

    // POI sets at Table IV densities.
    let kitchens = generate_poi(&graph, PoiKind::FastFood, &mut rng);
    let hospitals = generate_poi(&graph, PoiKind::Hospitals, &mut rng);
    println!(
        "POIs: {} fast-food sites (P), {} hospitals (Q)",
        kitchens.len(),
        hospitals.len()
    );

    let query = FannQuery::new(&kitchens, &hospitals, 0.6, Aggregate::Max);
    let rtree = build_p_rtree(&graph, &kitchens);
    let gphi = IerPhi::new(&graph, LabelOracle { labels: &labels }, &hospitals);

    // Top-5 sites via the indexed pipeline.
    let t0 = std::time::Instant::now();
    let top5 = ier_topk(&graph, &query, &rtree, &gphi, 5);
    let indexed = t0.elapsed();

    // Cross-check with the index-free Exact-max adaptation.
    let t0 = std::time::Instant::now();
    let check = exact_max_topk(&graph, &query, 5);
    let index_free = t0.elapsed();

    println!("\ntop-5 kitchen sites (serve any 60% of hospitals):");
    println!("rank  node     worst-delivery");
    for (i, (p, d)) in top5.iter().enumerate() {
        println!("{:>4}  {:<7}  {}", i + 1, p, d);
    }
    let a: Vec<u64> = top5.iter().map(|&(_, d)| d).collect();
    let b: Vec<u64> = check.iter().map(|&(_, d)| d).collect();
    assert_eq!(a, b, "indexed and index-free pipelines disagree");
    println!(
        "\nindexed IER-kNN: {:?} vs index-free Exact-max: {:?} (identical answers)",
        indexed, index_free
    );
}
