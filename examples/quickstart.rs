//! Quickstart: build a small road network, run an FANN_R query with every
//! algorithm, and check they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::{apx_sum, brute_force, exact_max, gd, ier_knn, r_list};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::{Aggregate, FannQuery};

fn main() {
    // 1. A synthetic road network (~2000 nodes) — swap in
    //    `roadnet::io::load_dimacs("path/to/NW")` for a real DIMACS graph.
    let mut rng = fannr::workload::rng(7);
    let graph = fannr::workload::synth::road_network(2000, &mut rng);
    println!(
        "network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Data points P (density 1%) and query points Q (16 points spread
    //    over 30% of the network radius).
    let p = fannr::workload::points::uniform_data_points(&graph, 0.01, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&graph, 16, 0.3, &mut rng);
    println!("|P| = {}, |Q| = {}", p.len(), q.len());

    // 3. A max-FANN_R query with phi = 0.5: find the data point minimizing
    //    the max distance to its best 8 query points.
    let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
    query.validate(&graph).expect("valid query");

    // Index-free g_phi backend (INE); see fann_core::gphi for the others.
    let ine = InePhi::new(&graph, &q);
    let rtree = build_p_rtree(&graph, &p);

    let answers = [
        ("brute-force", brute_force(&graph, &query)),
        ("GD", gd(&query, &ine)),
        ("R-List", r_list(&graph, &query, &ine)),
        ("IER-kNN", ier_knn(&graph, &query, &rtree, &ine)),
        ("Exact-max", exact_max(&graph, &query)),
    ];
    for (name, a) in &answers {
        let a = a.as_ref().expect("connected network");
        println!(
            "{name:12} -> p* = node {:5}, d* = {:6}, |Q*_phi| = {}",
            a.p_star,
            a.dist,
            a.subset.len()
        );
    }
    let d0 = answers[0].1.as_ref().unwrap().dist;
    assert!(
        answers.iter().all(|(_, a)| a.as_ref().unwrap().dist == d0),
        "exact algorithms must agree"
    );

    // 4. sum-FANN_R: exact vs the 3-approximation APX-sum.
    let sum_query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
    let exact = gd(&sum_query, &ine).unwrap();
    let approx = apx_sum(&graph, &sum_query, &ine).unwrap();
    println!(
        "sum-FANN_R: exact d* = {}, APX-sum d = {} (ratio {:.3}, guaranteed <= 3)",
        exact.dist,
        approx.dist,
        approx.dist as f64 / exact.dist as f64
    );
}
