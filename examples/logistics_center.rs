//! The paper's motivating scenario (§I): an online war-strategy game.
//!
//! `Q` is a set of military camps, `P` a set of candidate locations for a
//! logistics center. With abundant supplies the best site is the classic
//! aggregate nearest neighbor (phi = 1). When the center can only support
//! 50% of the camps, the right question is the *flexible* ANN with
//! phi = 0.5 — and the answer moves, exactly as in the paper's Fig. 1
//! (p2 for ANN, p3 for FANN).
//!
//! Run with: `cargo run --release --example logistics_center`

use fannr::fann::algo::{exact_max, gd};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::{Aggregate, FannQuery};

fn main() {
    let mut rng = fannr::workload::rng(1918);
    let graph = fannr::workload::synth::road_network(5000, &mut rng);

    // 40 candidate construction sites, 24 camps concentrated in two war
    // zones (clustered query points).
    let sites = fannr::workload::points::uniform_data_points(
        &graph,
        40.0 / graph.num_nodes() as f64,
        &mut rng,
    );
    let camps = fannr::workload::points::clustered_query_points(&graph, 24, 0.6, 2, &mut rng);
    println!(
        "map: {} road nodes | {} candidate sites | {} camps in 2 clusters",
        graph.num_nodes(),
        sites.len(),
        camps.len()
    );

    let ine = InePhi::new(&graph, &camps);

    // Abundant supplies: support ALL camps (classic max-ANN, phi = 1).
    let ann = FannQuery::new(&sites, &camps, 1.0, Aggregate::Max);
    let full = gd(&ann, &ine).expect("reachable");
    println!(
        "\nphi = 1.0 (supply all {} camps):\n  build at node {} — worst supply run: {} length units",
        camps.len(),
        full.p_star,
        full.dist
    );

    // Limited supplies: support any 50% of the camps. Exact-max needs no
    // precomputed index — ideal for a game map that changes every session.
    let fann = FannQuery::new(&sites, &camps, 0.5, Aggregate::Max);
    let half = exact_max(&graph, &fann).expect("reachable");
    println!(
        "\nphi = 0.5 (supply any {} camps):\n  build at node {} — worst supply run: {} length units",
        fann.subset_size(),
        half.p_star,
        half.dist
    );
    println!("  camps served: {:?}", half.subset);

    let gain = full.dist as f64 / half.dist.max(1) as f64;
    println!(
        "\nflexibility gain: restricting to 50% of camps cuts the worst run by {gain:.1}x{}",
        if half.p_star != full.p_star {
            " and moves the optimal site"
        } else {
            ""
        }
    );
    assert!(half.dist <= full.dist, "more flexibility can never hurt");
}
