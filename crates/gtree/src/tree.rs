//! G-tree construction: hierarchy, borders, and distance matrices.
//!
//! Matrices are built in two phases:
//!
//! 1. **Bottom-up assembly** — leaf matrices come from Dijkstra restricted
//!    to the leaf subgraph; each internal node's matrix is all-pairs over a
//!    small *assembly graph* whose vertices are its children's borders and
//!    whose edges are child matrix entries plus the original cut edges
//!    between children. After this phase every matrix holds shortest-path
//!    distances *within the node's subgraph*.
//! 2. **Top-down refinement** — the root's subgraph is the whole network,
//!    so its matrix is already global; walking down, each matrix entry is
//!    improved with detours that leave the subgraph through its borders
//!    (`d_g(u,v) = min(d_X(u,v), min_{a,b in borders(X)} d_X(u,a) +
//!    d_g(a,b) + d_X(b,v))`). After this phase every matrix holds **global**
//!    shortest-path distances, which makes the query-time assembly
//!    (`crate::query`) and kNN (`crate::knn`) simple and exact.

use crate::partition::{partition_graph, PartitionNode};
use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Saturating distance addition: `INF + x = INF`.
#[inline]
pub(crate) fn dadd(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b)
}

/// Build parameters. The paper sets `fanout = 4` and `leaf_cap` (`tau`)
/// from 64 to 512 depending on the dataset (§VI-A).
#[derive(Debug, Clone, Copy)]
pub struct GTreeParams {
    pub fanout: usize,
    pub leaf_cap: usize,
}

impl Default for GTreeParams {
    fn default() -> Self {
        GTreeParams {
            fanout: 4,
            leaf_cap: 64,
        }
    }
}

pub(crate) struct GNode {
    pub parent: Option<u32>,
    pub children: Vec<u32>,
    pub depth: u32,
    /// Border vertices: members of this subgraph with an edge leaving it.
    pub borders: Vec<NodeId>,
    /// Matrix vertex set. Internal nodes: union of children's borders.
    /// Leaves: every vertex of the leaf (matrix columns).
    pub verts: Vec<NodeId>,
    /// Position of a vertex within `verts`.
    pub vert_pos: HashMap<NodeId, u32>,
    /// Positions of `borders[i]` within `verts`.
    pub border_pos: Vec<u32>,
    /// Internal: `|verts| x |verts|`, row-major.
    /// Leaf: `|borders| x |verts|`, row-major.
    pub matrix: Vec<Dist>,
}

impl GNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Internal-node matrix lookup by `verts` positions.
    #[inline]
    pub fn mat(&self, i: u32, j: u32) -> Dist {
        self.matrix[i as usize * self.verts.len() + j as usize]
    }

    /// Leaf matrix lookup: row = border index, column = `verts` position.
    #[inline]
    pub fn lmat(&self, border_idx: usize, col: u32) -> Dist {
        self.matrix[border_idx * self.verts.len() + col as usize]
    }
}

/// The built G-tree index.
pub struct GTree {
    pub(crate) nodes: Vec<GNode>,
    /// Vertex -> arena index of its leaf node.
    pub(crate) leaf_of: Vec<u32>,
    params: GTreeParams,
}

/// Root node arena index (build order guarantees 0).
#[cfg(test)]
pub(crate) const ROOT: u32 = 0;

impl GTree {
    /// Build a G-tree over `g` with default parameters.
    pub fn build(g: &Graph) -> Self {
        Self::build_with_params(g, GTreeParams::default())
    }

    /// Build a G-tree over `g`.
    pub fn build_with_params(g: &Graph, params: GTreeParams) -> Self {
        let hierarchy = partition_graph(g, params.fanout, params.leaf_cap);
        let mut tree = GTree {
            nodes: Vec::new(),
            leaf_of: vec![u32::MAX; g.num_nodes()],
            params,
        };
        tree.instantiate(&hierarchy, None, 0);
        tree.assemble_bottom_up(g);
        tree.refine_top_down();
        tree
    }

    pub fn params(&self) -> GTreeParams {
        self.params
    }

    /// Number of tree nodes.
    pub fn num_tree_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 for a single-leaf tree).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0) as usize + 1
    }

    /// Reassemble from decoded parts (persistence path).
    pub(crate) fn from_parts(nodes: Vec<GNode>, leaf_of: Vec<u32>, params: GTreeParams) -> Self {
        GTree {
            nodes,
            leaf_of,
            params,
        }
    }

    /// Arena index of the leaf containing `v`.
    pub(crate) fn leaf(&self, v: NodeId) -> u32 {
        self.leaf_of[v as usize]
    }

    /// Approximate in-memory size of borders + matrices (Fig. 9a analogue).
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.matrix.len() * std::mem::size_of::<Dist>()
                    + n.verts.len() * (4 + 8) // id + hash entry overhead approx
                    + n.borders.len() * 4
            })
            .sum()
    }

    /// Recursively instantiate arena nodes from the partition hierarchy.
    /// Returns the arena index of the created node.
    fn instantiate(&mut self, part: &PartitionNode, parent: Option<u32>, depth: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(GNode {
            parent,
            children: Vec::new(),
            depth,
            borders: Vec::new(),
            verts: Vec::new(),
            vert_pos: HashMap::new(),
            border_pos: Vec::new(),
            matrix: Vec::new(),
        });
        if part.is_leaf() {
            for &v in &part.vertices {
                self.leaf_of[v as usize] = idx;
            }
            // Leaf verts = its vertices, sorted for determinism.
            let mut vs = part.vertices.clone();
            vs.sort_unstable();
            let vert_pos = vs.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            self.nodes[idx as usize].verts = vs;
            self.nodes[idx as usize].vert_pos = vert_pos;
        } else {
            let mut children = Vec::with_capacity(part.children.len());
            for c in &part.children {
                let cid = self.instantiate(c, Some(idx), depth + 1);
                children.push(cid);
            }
            self.nodes[idx as usize].children = children;
        }
        idx
    }

    /// True when `v` belongs to the subtree rooted at arena node `x`.
    /// Uses leaf -> ancestors walk; depth is small (O(log n)).
    pub(crate) fn contains(&self, x: u32, v: NodeId) -> bool {
        let mut cur = self.leaf_of[v as usize];
        loop {
            if cur == x {
                return true;
            }
            match self.nodes[cur as usize].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Compute borders for every node and fill leaf/internal matrices
    /// bottom-up (within-subgraph distances).
    fn assemble_bottom_up(&mut self, g: &Graph) {
        // Borders: v is a border of node x iff some neighbor of v lies
        // outside x's subtree. Compute per node by scanning its vertices.
        // Vertices per subtree are collected leaf-up to avoid re-walks.
        let order: Vec<u32> = {
            // Deeper nodes first.
            let mut idxs: Vec<u32> = (0..self.nodes.len() as u32).collect();
            idxs.sort_by_key(|&i| Reverse(self.nodes[i as usize].depth));
            idxs
        };

        // subtree vertex lists (moved out as computed to save memory).
        let mut subtree_verts: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for &x in &order {
            let xi = x as usize;
            if self.nodes[xi].is_leaf() {
                subtree_verts[xi] = self.nodes[xi].verts.clone();
            } else {
                let mut all = Vec::new();
                for &c in &self.nodes[xi].children {
                    all.extend_from_slice(&subtree_verts[c as usize]);
                }
                subtree_verts[xi] = all;
            }
            // Borders of x.
            let borders: Vec<NodeId> = subtree_verts[xi]
                .iter()
                .copied()
                .filter(|&v| g.neighbors(v).any(|(nb, _)| !self.contains(x, nb)))
                .collect();
            self.nodes[xi].borders = borders;
        }

        // Matrices bottom-up.
        for &x in &order {
            if self.nodes[x as usize].is_leaf() {
                self.build_leaf_matrix(g, x);
            } else {
                self.build_internal_matrix(g, x, &subtree_verts);
            }
        }
    }

    /// Leaf matrix: Dijkstra restricted to the leaf from each border.
    fn build_leaf_matrix(&mut self, g: &Graph, x: u32) {
        let xi = x as usize;
        let verts = self.nodes[xi].verts.clone();
        let borders = self.nodes[xi].borders.clone();
        let pos: &HashMap<NodeId, u32> = &self.nodes[xi].vert_pos;
        let ncols = verts.len();
        let mut matrix = vec![INF; borders.len() * ncols];
        for (bi, &b) in borders.iter().enumerate() {
            let dists = restricted_dijkstra(g, b, pos);
            matrix[bi * ncols..(bi + 1) * ncols].copy_from_slice(&dists);
        }
        let border_pos = borders.iter().map(|b| pos[b]).collect();
        let n = &mut self.nodes[xi];
        n.matrix = matrix;
        n.border_pos = border_pos;
    }

    /// Internal matrix: all-pairs over the assembly graph of child borders.
    fn build_internal_matrix(&mut self, g: &Graph, x: u32, subtree_verts: &[Vec<NodeId>]) {
        let xi = x as usize;
        let children = self.nodes[xi].children.clone();

        // Matrix vertex set: union of children borders (sorted, deduped).
        let mut verts: Vec<NodeId> = children
            .iter()
            .flat_map(|&c| self.nodes[c as usize].borders.iter().copied())
            .collect();
        verts.sort_unstable();
        verts.dedup();
        let vert_pos: HashMap<NodeId, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let nv = verts.len();

        // Assembly adjacency: child matrix entries + cut edges between
        // children of x.
        let mut adj: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); nv];
        for &c in &children {
            let cn = &self.nodes[c as usize];
            for (i, &bi) in cn.borders.iter().enumerate() {
                let pi = vert_pos[&bi];
                for (j, &bj) in cn.borders.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = if cn.is_leaf() {
                        cn.lmat(i, cn.vert_pos[&bj])
                    } else {
                        cn.mat(cn.vert_pos[&bi], cn.vert_pos[&bj])
                    };
                    if d != INF {
                        adj[pi as usize].push((vert_pos[&bj], d));
                    }
                }
            }
        }
        // Cut edges: map each subtree vertex to its child, then scan borders'
        // original edges for endpoints in different children of x.
        let mut child_of: HashMap<NodeId, u32> = HashMap::new();
        for &c in &children {
            for &v in &subtree_verts[c as usize] {
                child_of.insert(v, c);
            }
        }
        for &u in &verts {
            let cu = child_of[&u];
            for (v, w) in g.neighbors(u) {
                if let Some(&cv) = child_of.get(&v) {
                    if cv != cu {
                        // Both endpoints are borders of their children,
                        // hence in `verts`.
                        adj[vert_pos[&u] as usize].push((vert_pos[&v], w as Dist));
                    }
                }
            }
        }

        // All-pairs over the assembly graph.
        let mut matrix = vec![INF; nv * nv];
        let mut heap: BinaryHeap<(Reverse<Dist>, u32)> = BinaryHeap::new();
        for s in 0..nv as u32 {
            let row = &mut matrix[s as usize * nv..(s as usize + 1) * nv];
            row[s as usize] = 0;
            heap.push((Reverse(0), s));
            while let Some((Reverse(d), v)) = heap.pop() {
                if d > row[v as usize] {
                    continue;
                }
                for &(t, w) in &adj[v as usize] {
                    let nd = dadd(d, w);
                    if nd < row[t as usize] {
                        row[t as usize] = nd;
                        heap.push((Reverse(nd), t));
                    }
                }
            }
            heap.clear();
        }

        let border_pos = self.nodes[xi].borders.iter().map(|b| vert_pos[b]).collect();
        let n = &mut self.nodes[xi];
        n.verts = verts;
        n.vert_pos = vert_pos;
        n.border_pos = border_pos;
        n.matrix = matrix;
    }

    /// Top-down refinement: lift within-subgraph matrices to global ones.
    fn refine_top_down(&mut self) {
        // BFS order (arena construction is pre-order, so increasing index
        // visits parents before children).
        for x in 1..self.nodes.len() as u32 {
            let xi = x as usize;
            let parent = self.nodes[xi].parent.expect("non-root has parent") as usize;
            let nb = self.nodes[xi].borders.len();
            if nb == 0 {
                continue; // isolated subgraph: nothing can leave it
            }
            // Global border-to-border distances from the (already refined)
            // parent matrix.
            let pborder: Vec<u32> = self.nodes[xi]
                .borders
                .iter()
                .map(|b| self.nodes[parent].vert_pos[b])
                .collect();
            let mut gbb = vec![INF; nb * nb];
            for a in 0..nb {
                for b in 0..nb {
                    gbb[a * nb + b] = self.nodes[parent].mat(pborder[a], pborder[b]);
                }
            }
            if self.nodes[xi].is_leaf() {
                self.refine_leaf(x, &gbb);
            } else {
                self.refine_internal(x, &gbb);
            }
        }
    }

    /// Leaf: `d_g(b, v) = min(d_L(b, v), min_c g(b, c) + d_L(c, v))`.
    fn refine_leaf(&mut self, x: u32, gbb: &[Dist]) {
        let n = &mut self.nodes[x as usize];
        let nb = n.borders.len();
        let ncols = n.verts.len();
        let old = n.matrix.clone();
        for b in 0..nb {
            for v in 0..ncols {
                let mut best = old[b * ncols + v];
                for c in 0..nb {
                    best = best.min(dadd(gbb[b * nb + c], old[c * ncols + v]));
                }
                n.matrix[b * ncols + v] = best;
            }
        }
    }

    /// Internal: `d_g(u, v) = min(d_X(u, v), min_{a,b} d_X(u, a) + g(a, b)
    /// + d_X(b, v))`, factored through `h(u, b) = min_a d_X(u, a) + g(a, b)`.
    fn refine_internal(&mut self, x: u32, gbb: &[Dist]) {
        let n = &mut self.nodes[x as usize];
        let nb = n.borders.len();
        let nv = n.verts.len();
        let bp: Vec<usize> = n.border_pos.iter().map(|&p| p as usize).collect();
        let old = n.matrix.clone();
        // h[u][b] = min_a old(u, a) + g(a, b)
        let mut h = vec![INF; nv * nb];
        for u in 0..nv {
            for b in 0..nb {
                let mut best = INF;
                for a in 0..nb {
                    best = best.min(dadd(old[u * nv + bp[a]], gbb[a * nb + b]));
                }
                h[u * nb + b] = best;
            }
        }
        for u in 0..nv {
            for v in 0..nv {
                let mut best = old[u * nv + v];
                for b in 0..nb {
                    best = best.min(dadd(h[u * nb + b], old[bp[b] * nv + v]));
                }
                n.matrix[u * nv + v] = best;
            }
        }
    }
}

/// Dijkstra from `src` restricted to the vertices present in `pos`
/// (a leaf's vertex set); returns distances aligned with `pos` values.
pub(crate) fn restricted_dijkstra(g: &Graph, src: NodeId, pos: &HashMap<NodeId, u32>) -> Vec<Dist> {
    let mut dist = vec![INF; pos.len()];
    let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
    dist[pos[&src] as usize] = 0;
    heap.push((Reverse(0), src));
    while let Some((Reverse(d), v)) = heap.pop() {
        if d > dist[pos[&v] as usize] {
            continue;
        }
        for (t, w) in g.neighbors(v) {
            if let Some(&tp) = pos.get(&t) {
                let nd = dadd(d, w as Dist);
                if nd < dist[tp as usize] {
                    dist[tp as usize] = nd;
                    heap.push((Reverse(nd), t));
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + x % 2);
                }
            }
        }
        b.build()
    }

    #[test]
    fn single_leaf_tree_for_tiny_graph() {
        let g = grid(3, 3);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 16,
            },
        );
        assert_eq!(t.num_tree_nodes(), 1);
        assert_eq!(t.height(), 1);
        assert!(t.nodes[0].borders.is_empty()); // nothing leaves the root
    }

    #[test]
    fn every_vertex_assigned_to_a_leaf() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for v in 0..g.num_nodes() {
            let leaf = t.leaf_of[v];
            assert_ne!(leaf, u32::MAX);
            assert!(t.nodes[leaf as usize].is_leaf());
            assert!(t.nodes[leaf as usize].vert_pos.contains_key(&(v as u32)));
        }
    }

    #[test]
    fn root_has_no_borders_on_connected_graph() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 6,
            },
        );
        assert!(t.nodes[ROOT as usize].borders.is_empty());
    }

    #[test]
    fn borders_have_outside_edges() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        for (x, n) in t.nodes.iter().enumerate() {
            for &b in &n.borders {
                assert!(
                    g.neighbors(b).any(|(nb, _)| !t.contains(x as u32, nb)),
                    "border {b} of node {x} has no outside edge"
                );
            }
        }
    }

    #[test]
    fn child_borders_are_matrix_verts() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for n in &t.nodes {
            if n.is_leaf() {
                continue;
            }
            for &c in &n.children {
                for b in &t.nodes[c as usize].borders {
                    assert!(n.vert_pos.contains_key(b));
                }
            }
        }
    }

    #[test]
    fn matrix_diagonal_is_zero() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for n in &t.nodes {
            if n.is_leaf() {
                for (bi, &b) in n.borders.iter().enumerate() {
                    assert_eq!(n.lmat(bi, n.vert_pos[&b]), 0);
                }
            } else {
                for i in 0..n.verts.len() as u32 {
                    assert_eq!(n.mat(i, i), 0);
                }
            }
        }
    }

    #[test]
    fn refined_matrices_are_global_distances() {
        use roadnet::dijkstra::dijkstra_all;
        let g = grid(7, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 6,
            },
        );
        for n in &t.nodes {
            if n.is_leaf() {
                for (bi, &b) in n.borders.iter().enumerate() {
                    let truth = dijkstra_all(&g, b);
                    for (&v, &vp) in &n.vert_pos {
                        assert_eq!(
                            n.lmat(bi, vp),
                            truth[v as usize],
                            "leaf matrix wrong for {b}->{v}"
                        );
                    }
                }
            } else {
                for (i, &u) in n.verts.iter().enumerate() {
                    let truth = dijkstra_all(&g, u);
                    for (j, &v) in n.verts.iter().enumerate() {
                        assert_eq!(
                            n.mat(i as u32, j as u32),
                            truth[v as usize],
                            "matrix wrong for {u}->{v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memory_reporting_positive() {
        let g = grid(8, 8);
        let t = GTree::build(&g);
        assert!(t.memory_bytes() > 0);
    }
}
