//! G-tree construction: hierarchy, borders, and distance matrices.
//!
//! Matrices are built in two phases:
//!
//! 1. **Bottom-up assembly** — leaf matrices come from Dijkstra restricted
//!    to the leaf subgraph; each internal node's matrix is all-pairs over a
//!    small *assembly graph* whose vertices are its children's borders and
//!    whose edges are child matrix entries plus the original cut edges
//!    between children. After this phase every matrix holds shortest-path
//!    distances *within the node's subgraph*.
//! 2. **Top-down refinement** — the root's subgraph is the whole network,
//!    so its matrix is already global; walking down, each matrix entry is
//!    improved with detours that leave the subgraph through its borders
//!    (`d_g(u,v) = min(d_X(u,v), min_{a,b in borders(X)} d_X(u,a) +
//!    d_g(a,b) + d_X(b,v))`). After this phase every matrix holds **global**
//!    shortest-path distances, which makes the query-time assembly
//!    (`crate::query`) and kNN (`crate::knn`) simple and exact.
//!
//! Both phases parallelize level-synchronously (leaf matrices are mutually
//! independent; nodes of equal depth depend only on deeper/shallower
//! levels), so [`GTree::build_with_params_parallel`] fans each level across
//! a worker pool and produces a bit-identical tree for any worker count.
//!
//! The built tree lives in flat CSR-style arrays behind shared
//! [`FlatVec`] handles (per-node runs addressed by offset arrays), so the
//! in-memory layout coincides with the flat v2 on-disk sections and a
//! loaded index serves queries directly from the file buffer
//! (see `crate::persist`).

use crate::partition::{partition_graph, PartitionNode};
use roadnet::flat::FlatVec;
use roadnet::par::par_map_indexed;
use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Saturating distance addition: `INF + x = INF`.
#[inline]
pub(crate) fn dadd(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b)
}

/// Build parameters. The paper sets `fanout = 4` and `leaf_cap` (`tau`)
/// from 64 to 512 depending on the dataset (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GTreeParams {
    pub fanout: usize,
    pub leaf_cap: usize,
}

impl Default for GTreeParams {
    fn default() -> Self {
        GTreeParams {
            fanout: 4,
            leaf_cap: 64,
        }
    }
}

/// Sentinel for "no parent" in the flat parent array.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Build- and v1-decode-time node representation; flattened into the CSR
/// arrays of [`GTree`] once construction finishes.
pub(crate) struct GNode {
    pub parent: Option<u32>,
    pub children: Vec<u32>,
    pub depth: u32,
    /// Border vertices: members of this subgraph with an edge leaving it.
    pub borders: Vec<NodeId>,
    /// Matrix vertex set, sorted ascending. Internal nodes: union of
    /// children's borders. Leaves: every vertex of the leaf.
    pub verts: Vec<NodeId>,
    /// Positions of `borders[i]` within `verts`.
    pub border_pos: Vec<u32>,
    /// Internal: `|verts| x |verts|`, row-major.
    /// Leaf: `|borders| x |verts|`, row-major.
    pub matrix: Vec<Dist>,
}

impl GNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    #[inline]
    fn mat(&self, i: u32, j: u32) -> Dist {
        self.matrix[i as usize * self.verts.len() + j as usize]
    }

    #[inline]
    fn lmat(&self, border_idx: usize, col: u32) -> Dist {
        self.matrix[border_idx * self.verts.len() + col as usize]
    }
}

/// Position of `v` in a sorted vertex run (matrix column / row index).
#[inline]
pub(crate) fn pos_in(verts: &[NodeId], v: NodeId) -> u32 {
    verts
        .binary_search(&v)
        .expect("vertex belongs to this node") as u32
}

#[inline]
pub(crate) fn try_pos_in(verts: &[NodeId], v: NodeId) -> Option<u32> {
    verts.binary_search(&v).ok().map(|i| i as u32)
}

/// The built G-tree index, stored as flat per-tree arrays: scalar columns
/// (`parent`, `depth`) plus CSR runs (`*_off[x]..*_off[x+1]` addresses node
/// `x`'s children / borders / matrix vertices / matrix entries). All arrays
/// are shared [`FlatVec`] handles, so a tree loaded from the flat v2 format
/// answers queries straight out of the load buffer.
pub struct GTree {
    params: GTreeParams,
    /// Vertex -> arena index of its leaf node.
    pub(crate) leaf_of: FlatVec<u32>,
    pub(crate) parent: FlatVec<u32>,
    pub(crate) depth: FlatVec<u32>,
    pub(crate) children_off: FlatVec<u32>,
    pub(crate) children: FlatVec<u32>,
    pub(crate) borders_off: FlatVec<u32>,
    pub(crate) borders: FlatVec<NodeId>,
    /// Parallel to `borders` (shares `borders_off`).
    pub(crate) border_pos: FlatVec<u32>,
    pub(crate) verts_off: FlatVec<u32>,
    pub(crate) verts: FlatVec<NodeId>,
    pub(crate) matrix_off: FlatVec<u64>,
    pub(crate) matrix: FlatVec<Dist>,
}

/// Borrowed view of one tree node's runs — the accessor layer every query
/// path goes through, independent of whether the arrays are owned or
/// mapped from a flat file.
#[derive(Clone, Copy)]
pub(crate) struct NodeView<'t> {
    pub children: &'t [u32],
    pub borders: &'t [NodeId],
    pub border_pos: &'t [u32],
    pub verts: &'t [NodeId],
    matrix: &'t [Dist],
}

impl NodeView<'_> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Internal-node matrix lookup by `verts` positions.
    #[inline]
    pub fn mat(&self, i: u32, j: u32) -> Dist {
        self.matrix[i as usize * self.verts.len() + j as usize]
    }

    /// Leaf matrix lookup: row = border index, column = `verts` position.
    #[inline]
    pub fn lmat(&self, border_idx: usize, col: u32) -> Dist {
        self.matrix[border_idx * self.verts.len() + col as usize]
    }

    /// Position of `v` within this node's matrix vertex set.
    #[inline]
    pub fn vert_pos(&self, v: NodeId) -> u32 {
        pos_in(self.verts, v)
    }

    #[cfg(test)]
    pub fn try_vert_pos(&self, v: NodeId) -> Option<u32> {
        try_pos_in(self.verts, v)
    }
}

/// Root node arena index (build order guarantees 0).
#[cfg(test)]
pub(crate) const ROOT: u32 = 0;

impl GTree {
    /// Build a G-tree over `g` with default parameters.
    pub fn build(g: &Graph) -> Self {
        Self::build_with_params(g, GTreeParams::default())
    }

    /// Build a G-tree over `g`.
    pub fn build_with_params(g: &Graph, params: GTreeParams) -> Self {
        Self::build_with_params_parallel(g, params, 1)
    }

    /// Build a G-tree over `g`, fanning per-node matrix construction and
    /// refinement across `workers` threads (`0` = one per core). Each level
    /// of the hierarchy is a set of independent per-node computations, so
    /// the result is bit-identical to the sequential build.
    pub fn build_with_params_parallel(g: &Graph, params: GTreeParams, workers: usize) -> Self {
        Self::build_parallel_inner(g, params, workers, false).0
    }

    /// Build a G-tree and keep its phase-1 (within-subgraph) assembly
    /// matrices as a [`RepairCache`], the state [`GTree::repair_scoped`]
    /// needs to fold weight updates in incrementally. The tree is
    /// bit-identical to [`GTree::build_with_params_parallel`].
    pub fn build_with_cache(g: &Graph, params: GTreeParams, workers: usize) -> (Self, RepairCache) {
        let (tree, cache) = Self::build_parallel_inner(g, params, workers, true);
        (tree, cache.expect("cache requested"))
    }

    fn build_parallel_inner(
        g: &Graph,
        params: GTreeParams,
        workers: usize,
        want_cache: bool,
    ) -> (Self, Option<RepairCache>) {
        let workers = if workers == 0 {
            roadnet::par::default_workers()
        } else {
            workers
        };
        let hierarchy = partition_graph(g, params.fanout, params.leaf_cap);
        let mut b = Builder {
            nodes: Vec::new(),
            leaf_of: vec![u32::MAX; g.num_nodes()],
            workers,
        };
        b.instantiate(&hierarchy, None, 0);
        b.assemble_bottom_up(g);
        // Snapshot before refinement overwrites the matrices in place.
        let cache = want_cache.then(|| RepairCache {
            assembly: b.nodes.iter().map(|n| n.matrix.clone()).collect(),
        });
        b.refine_top_down();
        (Self::from_parts(b.nodes, b.leaf_of, params), cache)
    }

    pub fn params(&self) -> GTreeParams {
        self.params
    }

    /// Number of tree nodes.
    pub fn num_tree_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Tree height (1 for a single-leaf tree).
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize + 1
    }

    /// Flatten build/decode nodes into the CSR arrays.
    pub(crate) fn from_parts(nodes: Vec<GNode>, leaf_of: Vec<u32>, params: GTreeParams) -> Self {
        let t = nodes.len();
        let mut parent = Vec::with_capacity(t);
        let mut depth = Vec::with_capacity(t);
        let mut children_off = Vec::with_capacity(t + 1);
        let mut children = Vec::new();
        let mut borders_off = Vec::with_capacity(t + 1);
        let mut borders = Vec::new();
        let mut border_pos = Vec::new();
        let mut verts_off = Vec::with_capacity(t + 1);
        let mut verts = Vec::new();
        let mut matrix_off = Vec::with_capacity(t + 1);
        let mut matrix = Vec::new();
        children_off.push(0u32);
        borders_off.push(0u32);
        verts_off.push(0u32);
        matrix_off.push(0u64);
        for n in &nodes {
            parent.push(n.parent.unwrap_or(NO_PARENT));
            depth.push(n.depth);
            children.extend_from_slice(&n.children);
            children_off.push(children.len() as u32);
            borders.extend_from_slice(&n.borders);
            border_pos.extend_from_slice(&n.border_pos);
            borders_off.push(borders.len() as u32);
            verts.extend_from_slice(&n.verts);
            verts_off.push(verts.len() as u32);
            matrix.extend_from_slice(&n.matrix);
            matrix_off.push(matrix.len() as u64);
        }
        GTree {
            params,
            leaf_of: leaf_of.into(),
            parent: parent.into(),
            depth: depth.into(),
            children_off: children_off.into(),
            children: children.into(),
            borders_off: borders_off.into(),
            borders: borders.into(),
            border_pos: border_pos.into(),
            verts_off: verts_off.into(),
            verts: verts.into(),
            matrix_off: matrix_off.into(),
            matrix: matrix.into(),
        }
    }

    /// Assemble directly from validated flat arrays (zero-copy load path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_flat_parts(
        params: GTreeParams,
        leaf_of: FlatVec<u32>,
        parent: FlatVec<u32>,
        depth: FlatVec<u32>,
        children_off: FlatVec<u32>,
        children: FlatVec<u32>,
        borders_off: FlatVec<u32>,
        borders: FlatVec<NodeId>,
        border_pos: FlatVec<u32>,
        verts_off: FlatVec<u32>,
        verts: FlatVec<NodeId>,
        matrix_off: FlatVec<u64>,
        matrix: FlatVec<Dist>,
    ) -> Self {
        GTree {
            params,
            leaf_of,
            parent,
            depth,
            children_off,
            children,
            borders_off,
            borders,
            border_pos,
            verts_off,
            verts,
            matrix_off,
            matrix,
        }
    }

    /// Accessor view of node `x`.
    #[inline]
    pub(crate) fn node(&self, x: u32) -> NodeView<'_> {
        let xi = x as usize;
        let (c0, c1) = (
            self.children_off[xi] as usize,
            self.children_off[xi + 1] as usize,
        );
        let (b0, b1) = (
            self.borders_off[xi] as usize,
            self.borders_off[xi + 1] as usize,
        );
        let (v0, v1) = (self.verts_off[xi] as usize, self.verts_off[xi + 1] as usize);
        let (m0, m1) = (
            self.matrix_off[xi] as usize,
            self.matrix_off[xi + 1] as usize,
        );
        NodeView {
            children: &self.children[c0..c1],
            borders: &self.borders[b0..b1],
            border_pos: &self.border_pos[b0..b1],
            verts: &self.verts[v0..v1],
            matrix: &self.matrix[m0..m1],
        }
    }

    #[inline]
    pub(crate) fn depth_of(&self, x: u32) -> u32 {
        self.depth[x as usize]
    }

    /// Arena index of the leaf containing `v`.
    pub(crate) fn leaf(&self, v: NodeId) -> u32 {
        self.leaf_of[v as usize]
    }

    pub(crate) fn parent_of(&self, x: u32) -> Option<u32> {
        let p = self.parent[x as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// True when `v` belongs to the subtree rooted at arena node `x`.
    /// Uses leaf -> ancestors walk; depth is small (O(log n)).
    #[cfg(test)]
    pub(crate) fn contains(&self, x: u32, v: NodeId) -> bool {
        let mut cur = self.leaf_of[v as usize];
        loop {
            if cur == x {
                return true;
            }
            match self.parent_of(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Approximate in-memory size of borders + matrices (Fig. 9a analogue).
    pub fn memory_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<Dist>()
            + self.verts.len() * 4
            + self.borders.len() * 8
            + self.leaf_of.len() * 4
            + self.parent.len() * 8
    }

    /// The vertex -> leaf-node assignment (e.g. for
    /// `roadnet::snapshot::RepairScope::leaves`).
    pub fn leaf_assignment(&self) -> &[u32] {
        &self.leaf_of
    }

    /// The child of internal node `x` whose subtree contains graph vertex
    /// `v`, or `None` when `v` is outside `x`'s subtree.
    fn child_under(&self, x: u32, v: NodeId) -> Option<u32> {
        let mut cur = self.leaf_of[v as usize];
        loop {
            match self.parent_of(cur) {
                Some(p) if p == x => return Some(cur),
                Some(p) => cur = p,
                None => return None,
            }
        }
    }

    /// Arena indices grouped by depth, deepest level first.
    fn levels_deepest_first(&self) -> Vec<Vec<u32>> {
        let max_depth = self.depth.iter().copied().max().unwrap_or(0) as usize;
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for x in 0..self.num_tree_nodes() {
            levels[max_depth - self.depth[x] as usize].push(x as u32);
        }
        levels
    }

    /// Topology-only build nodes (no borders/matrices), for recomputing a
    /// [`RepairCache`] over an already-built tree.
    fn topology_gnodes(&self) -> Vec<GNode> {
        (0..self.num_tree_nodes() as u32)
            .map(|x| {
                let v = self.node(x);
                GNode {
                    parent: self.parent_of(x),
                    children: v.children.to_vec(),
                    depth: self.depth_of(x),
                    borders: Vec::new(),
                    verts: if v.is_leaf() {
                        v.verts.to_vec()
                    } else {
                        Vec::new()
                    },
                    border_pos: Vec::new(),
                    matrix: Vec::new(),
                }
            })
            .collect()
    }

    /// Recompute the within-subgraph (phase-1) matrix of node `x` on the
    /// patched graph, reading children's assemblies from the cache.
    fn assemble_one(&self, g: &Graph, x: u32, cache: &RepairCache) -> Vec<Dist> {
        let node = self.node(x);
        if node.is_leaf() {
            return leaf_assembly(g, node.borders, node.verts);
        }
        let verts = node.verts;
        let nv = verts.len();
        let mut adj: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); nv];
        for &c in node.children {
            let cn = self.node(c);
            let ca = &cache.assembly[c as usize];
            let cnv = cn.verts.len();
            for (i, &bi) in cn.borders.iter().enumerate() {
                let pi = pos_in(verts, bi);
                for (j, &bj) in cn.borders.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = if cn.is_leaf() {
                        ca[i * cnv + pos_in(cn.verts, bj) as usize]
                    } else {
                        ca[pos_in(cn.verts, bi) as usize * cnv + pos_in(cn.verts, bj) as usize]
                    };
                    if d != INF {
                        adj[pi as usize].push((pos_in(verts, bj), d));
                    }
                }
            }
        }
        // Cut edges between children of `x` (resolved by walking each
        // endpoint's leaf up to the child, instead of the build-time
        // subtree-vertex hash map).
        for &u in verts {
            let cu = self
                .child_under(x, u)
                .expect("assembly vertex lies inside the subtree");
            for (v, w) in g.neighbors(u) {
                if let Some(cv) = self.child_under(x, v) {
                    if cv != cu {
                        adj[pos_in(verts, u) as usize].push((pos_in(verts, v), w as Dist));
                    }
                }
            }
        }
        assembly_all_pairs(&adj)
    }

    /// True when the global border-to-border block node `x` reads from its
    /// parent's matrix differs between the old tree and `new_matrix`.
    fn gbb_block_changed(&self, x: u32, p: u32, new_matrix: &[Dist]) -> bool {
        let xv = self.node(x);
        let pv = self.node(p);
        let pnv = pv.verts.len();
        let pm0 = self.matrix_off[p as usize] as usize;
        for &a in xv.borders {
            let pa = pos_in(pv.verts, a) as usize;
            for &b in xv.borders {
                let pb = pos_in(pv.verts, b) as usize;
                let at = pm0 + pa * pnv + pb;
                if self.matrix[at] != new_matrix[at] {
                    return true;
                }
            }
        }
        false
    }

    /// Re-refine node `x` against its parent's already-final matrix in
    /// `new_matrix` (phase 2 of the scoped repair).
    fn refine_one(&self, x: u32, p: u32, cache: &RepairCache, new_matrix: &[Dist]) -> Vec<Dist> {
        let xv = self.node(x);
        let nb = xv.borders.len();
        let own = &cache.assembly[x as usize];
        if nb == 0 {
            // Isolated subgraph: nothing can leave it, the assembly matrix
            // is already global (mirrors `Builder::refined_matrix == None`).
            return own.clone();
        }
        let pv = self.node(p);
        let pnv = pv.verts.len();
        let pm0 = self.matrix_off[p as usize] as usize;
        let pnew = &new_matrix[pm0..pm0 + pnv * pnv];
        let mut gbb = vec![INF; nb * nb];
        for (a, &ba) in xv.borders.iter().enumerate() {
            let pa = pos_in(pv.verts, ba) as usize;
            for (b, &bb) in xv.borders.iter().enumerate() {
                let pb = pos_in(pv.verts, bb) as usize;
                gbb[a * nb + b] = pnew[pa * pnv + pb];
            }
        }
        refine_with_gbb(xv.is_leaf(), xv.verts.len(), xv.border_pos, own, &gbb)
    }

    /// Scoped repair after a batch of edge-weight changes: recompute only
    /// the tree nodes whose matrices can actually differ, and return a new
    /// tree **bit-identical** to a from-scratch rebuild on `g`, sharing
    /// every topology array (and all unchanged matrix content is memcpy'd,
    /// not recomputed).
    ///
    /// `touched` lists edges whose weights differ from the graph this tree
    /// was built on (a superset is safe). `cache` must hold this tree's
    /// phase-1 assembly matrices ([`GTree::build_with_cache`] /
    /// [`RepairCache::for_tree`]); it is advanced to `g` in place, so after
    /// this call it belongs to the *returned* tree.
    ///
    /// Scoping argument: partition, borders and vertex sets depend only on
    /// topology, which weight updates never change. A touched edge's weight
    /// is read by exactly one node's phase-1 computation — the leaf
    /// containing both endpoints, or the LCA of the two leaves when it is a
    /// cut edge — so phase 1 recomputes those anchors and propagates
    /// upward only while a recomputed assembly actually changed. Phase 2
    /// walks back down re-refining a node iff its own assembly changed or
    /// the border-to-border block it reads from its parent did, which
    /// bounds the fringe to matrices whose inputs differ; everything
    /// skipped is bit-identical by the determinism of the shared
    /// per-node kernels.
    pub fn repair_scoped(
        &self,
        g: &Graph,
        cache: &mut RepairCache,
        touched: &[(NodeId, NodeId)],
        workers: usize,
    ) -> (GTree, GTreeRepairStats) {
        let workers = if workers == 0 {
            roadnet::par::default_workers()
        } else {
            workers
        };
        let t = self.num_tree_nodes();
        assert_eq!(cache.assembly.len(), t, "cache must match this tree");
        let mut stats = GTreeRepairStats {
            entries_total: self.matrix.len() as u64,
            ..GTreeRepairStats::default()
        };

        let mut anchor = vec![false; t];
        for &(u, v) in touched {
            let (lu, lv) = (self.leaf(u), self.leaf(v));
            let a = if lu == lv { lu } else { self.lca(lu, lv) };
            anchor[a as usize] = true;
        }

        let levels = self.levels_deepest_first();
        let mut recomputed = vec![false; t];
        let mut assembly_changed = vec![false; t];

        // Phase 1 (bottom-up, level-parallel): recompute anchors and any
        // node with a changed child assembly; stop propagating upward as
        // soon as a recomputed assembly matches the cached one.
        for level in &levels {
            let work: Vec<u32> = level
                .iter()
                .copied()
                .filter(|&x| {
                    anchor[x as usize]
                        || self
                            .node(x)
                            .children
                            .iter()
                            .any(|&c| assembly_changed[c as usize])
                })
                .collect();
            if work.is_empty() {
                continue;
            }
            let results = {
                let cache = &*cache;
                par_map_indexed(work.len(), workers, |i| {
                    self.assemble_one(g, work[i], cache)
                })
            };
            for (&x, m) in work.iter().zip(results) {
                let xi = x as usize;
                recomputed[xi] = true;
                if self.node(x).is_leaf() {
                    stats.scoped_leaves += 1;
                }
                if m != cache.assembly[xi] {
                    assembly_changed[xi] = true;
                    cache.assembly[xi] = m;
                }
            }
        }

        // Phase 2 (top-down, level-parallel): parents are final before
        // children read their border-to-border blocks.
        let mut new_matrix: Vec<Dist> = self.matrix.to_vec();
        let mut refined_changed = vec![false; t];
        for level in levels.iter().rev() {
            let work: Vec<u32> = level
                .iter()
                .copied()
                .filter(|&x| {
                    let xi = x as usize;
                    match self.parent_of(x) {
                        // Root: refined == assembly.
                        None => assembly_changed[xi],
                        Some(p) => {
                            assembly_changed[xi]
                                || (refined_changed[p as usize]
                                    && self.gbb_block_changed(x, p, &new_matrix))
                        }
                    }
                })
                .collect();
            if work.is_empty() {
                continue;
            }
            let results = {
                let cache = &*cache;
                let new_matrix = &new_matrix;
                par_map_indexed(work.len(), workers, |i| {
                    let x = work[i];
                    match self.parent_of(x) {
                        None => cache.assembly[x as usize].clone(),
                        Some(p) => self.refine_one(x, p, cache, new_matrix),
                    }
                })
            };
            for (&x, m) in work.iter().zip(results) {
                let xi = x as usize;
                recomputed[xi] = true;
                let (m0, m1) = (
                    self.matrix_off[xi] as usize,
                    self.matrix_off[xi + 1] as usize,
                );
                if m[..] != self.matrix[m0..m1] {
                    refined_changed[xi] = true;
                    new_matrix[m0..m1].copy_from_slice(&m);
                }
            }
        }

        for (xi, &hit) in recomputed.iter().enumerate() {
            if hit {
                stats.nodes_recomputed += 1;
                stats.entries_repaired += self.matrix_off[xi + 1] - self.matrix_off[xi];
            }
        }

        let tree = GTree {
            params: self.params,
            leaf_of: self.leaf_of.clone(),
            parent: self.parent.clone(),
            depth: self.depth.clone(),
            children_off: self.children_off.clone(),
            children: self.children.clone(),
            borders_off: self.borders_off.clone(),
            borders: self.borders.clone(),
            border_pos: self.border_pos.clone(),
            verts_off: self.verts_off.clone(),
            verts: self.verts.clone(),
            matrix_off: self.matrix_off.clone(),
            matrix: new_matrix.into(),
        };
        (tree, stats)
    }
}

/// The phase-1 (within-subgraph) assembly matrices of a built tree — the
/// sidecar state scoped repair needs, kept out of [`GTree`] so the flat
/// persist format and tree equality are unchanged.
pub struct RepairCache {
    /// Per arena node, the matrix as of the end of bottom-up assembly.
    assembly: Vec<Vec<Dist>>,
}

impl RepairCache {
    /// Recompute the cache for an already-built tree (e.g. one loaded from
    /// the flat format) against the graph it was built on. Costs one
    /// bottom-up assembly pass (roughly half a rebuild).
    pub fn for_tree(tree: &GTree, g: &Graph, workers: usize) -> Self {
        let workers = if workers == 0 {
            roadnet::par::default_workers()
        } else {
            workers
        };
        let mut b = Builder {
            nodes: tree.topology_gnodes(),
            leaf_of: tree.leaf_of.to_vec(),
            workers,
        };
        b.assemble_bottom_up(g);
        RepairCache {
            assembly: b.nodes.into_iter().map(|n| n.matrix).collect(),
        }
    }
}

/// Repair-cost counters from [`GTree::repair_scoped`]: how much matrix
/// content was actually recomputed versus the full-rebuild volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GTreeRepairStats {
    /// Leaves whose assembly matrix was recomputed.
    pub scoped_leaves: u64,
    /// Tree nodes touched by either repair phase.
    pub nodes_recomputed: u64,
    /// Matrix entries belonging to recomputed nodes.
    pub entries_repaired: u64,
    /// Matrix entries a full rebuild recomputes (the whole index).
    pub entries_total: u64,
}

impl Clone for GTree {
    /// Cheap: every array is a shared [`FlatVec`] handle.
    fn clone(&self) -> Self {
        GTree {
            params: self.params,
            leaf_of: self.leaf_of.clone(),
            parent: self.parent.clone(),
            depth: self.depth.clone(),
            children_off: self.children_off.clone(),
            children: self.children.clone(),
            borders_off: self.borders_off.clone(),
            borders: self.borders.clone(),
            border_pos: self.border_pos.clone(),
            verts_off: self.verts_off.clone(),
            verts: self.verts.clone(),
            matrix_off: self.matrix_off.clone(),
            matrix: self.matrix.clone(),
        }
    }
}

impl std::fmt::Debug for GTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GTree")
            .field("params", &self.params)
            .field("graph_nodes", &self.leaf_of.len())
            .field("tree_nodes", &self.num_tree_nodes())
            .field("matrix_entries", &self.matrix.len())
            .finish()
    }
}

impl PartialEq for GTree {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
            && self.leaf_of == other.leaf_of
            && self.parent == other.parent
            && self.depth == other.depth
            && self.children_off == other.children_off
            && self.children == other.children
            && self.borders_off == other.borders_off
            && self.borders == other.borders
            && self.border_pos == other.border_pos
            && self.verts_off == other.verts_off
            && self.verts == other.verts
            && self.matrix_off == other.matrix_off
            && self.matrix == other.matrix
    }
}

/// Construction state: per-node owned vectors, flattened on completion.
struct Builder {
    nodes: Vec<GNode>,
    leaf_of: Vec<u32>,
    workers: usize,
}

impl Builder {
    /// Recursively instantiate arena nodes from the partition hierarchy.
    /// Returns the arena index of the created node.
    fn instantiate(&mut self, part: &PartitionNode, parent: Option<u32>, depth: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(GNode {
            parent,
            children: Vec::new(),
            depth,
            borders: Vec::new(),
            verts: Vec::new(),
            border_pos: Vec::new(),
            matrix: Vec::new(),
        });
        if part.is_leaf() {
            for &v in &part.vertices {
                self.leaf_of[v as usize] = idx;
            }
            // Leaf verts = its vertices, sorted (determinism + binary-search
            // position lookups).
            let mut vs = part.vertices.clone();
            vs.sort_unstable();
            self.nodes[idx as usize].verts = vs;
        } else {
            let mut children = Vec::with_capacity(part.children.len());
            for c in &part.children {
                let cid = self.instantiate(c, Some(idx), depth + 1);
                children.push(cid);
            }
            self.nodes[idx as usize].children = children;
        }
        idx
    }

    /// True when `v` belongs to the subtree rooted at arena node `x`.
    fn contains(&self, x: u32, v: NodeId) -> bool {
        let mut cur = self.leaf_of[v as usize];
        loop {
            if cur == x {
                return true;
            }
            match self.nodes[cur as usize].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Arena indices grouped by depth, deepest level first.
    fn levels_deepest_first(&self) -> Vec<Vec<u32>> {
        let max_depth = self.nodes.iter().map(|n| n.depth).max().unwrap_or(0) as usize;
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for (i, n) in self.nodes.iter().enumerate() {
            levels[max_depth - n.depth as usize].push(i as u32);
        }
        levels
    }

    /// Compute borders for every node and fill leaf/internal matrices
    /// bottom-up (within-subgraph distances). Matrices of one level are
    /// mutually independent, so each level fans across the worker pool.
    fn assemble_bottom_up(&mut self, g: &Graph) {
        let levels = self.levels_deepest_first();

        // Borders: v is a border of node x iff some neighbor of v lies
        // outside x's subtree. Subtree vertex lists are collected leaf-up.
        let mut subtree_verts: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for level in &levels {
            for &x in level {
                let xi = x as usize;
                if self.nodes[xi].is_leaf() {
                    subtree_verts[xi] = self.nodes[xi].verts.clone();
                } else {
                    let mut all = Vec::new();
                    for &c in &self.nodes[xi].children {
                        all.extend_from_slice(&subtree_verts[c as usize]);
                    }
                    subtree_verts[xi] = all;
                }
                let borders: Vec<NodeId> = subtree_verts[xi]
                    .iter()
                    .copied()
                    .filter(|&v| g.neighbors(v).any(|(nb, _)| !self.contains(x, nb)))
                    .collect();
                self.nodes[xi].borders = borders;
            }
        }

        // Matrices, level-synchronous bottom-up: leaves (and any node of
        // the level) depend only on already-finished deeper levels.
        for level in &levels {
            let results = par_map_indexed(level.len(), self.workers, |i| {
                let x = level[i];
                if self.nodes[x as usize].is_leaf() {
                    let (matrix, border_pos) = self.leaf_matrix(g, x);
                    (Vec::new(), border_pos, matrix)
                } else {
                    self.internal_matrix(g, x, &subtree_verts)
                }
            });
            for (&x, (verts, border_pos, matrix)) in level.iter().zip(results) {
                let n = &mut self.nodes[x as usize];
                if !n.is_leaf() {
                    n.verts = verts;
                }
                n.border_pos = border_pos;
                n.matrix = matrix;
            }
        }
    }

    /// Leaf matrix: Dijkstra restricted to the leaf from each border.
    fn leaf_matrix(&self, g: &Graph, x: u32) -> (Vec<Dist>, Vec<u32>) {
        let n = &self.nodes[x as usize];
        let matrix = leaf_assembly(g, &n.borders, &n.verts);
        let border_pos = n.borders.iter().map(|&b| pos_in(&n.verts, b)).collect();
        (matrix, border_pos)
    }

    /// Internal matrix: all-pairs over the assembly graph of child borders.
    /// Returns `(verts, border_pos, matrix)`.
    fn internal_matrix(
        &self,
        g: &Graph,
        x: u32,
        subtree_verts: &[Vec<NodeId>],
    ) -> (Vec<NodeId>, Vec<u32>, Vec<Dist>) {
        let node = &self.nodes[x as usize];

        // Matrix vertex set: union of children borders (sorted, deduped).
        let mut verts: Vec<NodeId> = node
            .children
            .iter()
            .flat_map(|&c| self.nodes[c as usize].borders.iter().copied())
            .collect();
        verts.sort_unstable();
        verts.dedup();
        let nv = verts.len();

        // Assembly adjacency: child matrix entries + cut edges between
        // children of x.
        let mut adj: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); nv];
        for &c in &node.children {
            let cn = &self.nodes[c as usize];
            for (i, &bi) in cn.borders.iter().enumerate() {
                let pi = pos_in(&verts, bi);
                for (j, &bj) in cn.borders.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = if cn.is_leaf() {
                        cn.lmat(i, pos_in(&cn.verts, bj))
                    } else {
                        cn.mat(pos_in(&cn.verts, bi), pos_in(&cn.verts, bj))
                    };
                    if d != INF {
                        adj[pi as usize].push((pos_in(&verts, bj), d));
                    }
                }
            }
        }
        // Cut edges: map each subtree vertex to its child, then scan borders'
        // original edges for endpoints in different children of x.
        let mut child_of: HashMap<NodeId, u32> = HashMap::new();
        for &c in &node.children {
            for &v in &subtree_verts[c as usize] {
                child_of.insert(v, c);
            }
        }
        for &u in &verts {
            let cu = child_of[&u];
            for (v, w) in g.neighbors(u) {
                if let Some(&cv) = child_of.get(&v) {
                    if cv != cu {
                        // Both endpoints are borders of their children,
                        // hence in `verts`.
                        adj[pos_in(&verts, u) as usize].push((pos_in(&verts, v), w as Dist));
                    }
                }
            }
        }

        let matrix = assembly_all_pairs(&adj);
        let border_pos = node.borders.iter().map(|&b| pos_in(&verts, b)).collect();
        (verts, border_pos, matrix)
    }

    /// Top-down refinement: lift within-subgraph matrices to global ones.
    /// Nodes of equal depth read only their (already refined) parents, so
    /// each level fans across the worker pool.
    fn refine_top_down(&mut self) {
        let mut levels = self.levels_deepest_first();
        levels.reverse(); // shallowest first; parents refined before children
        for level in &levels {
            // Root level needs no refinement (its matrix is already global).
            let work: Vec<u32> = level
                .iter()
                .copied()
                .filter(|&x| self.nodes[x as usize].parent.is_some())
                .collect();
            if work.is_empty() {
                continue;
            }
            let results =
                par_map_indexed(work.len(), self.workers, |i| self.refined_matrix(work[i]));
            for (&x, m) in work.iter().zip(results) {
                if let Some(matrix) = m {
                    self.nodes[x as usize].matrix = matrix;
                }
            }
        }
    }

    /// The refined (global) matrix of non-root node `x`, or `None` when the
    /// node has no borders (isolated subgraph: nothing can leave it).
    fn refined_matrix(&self, x: u32) -> Option<Vec<Dist>> {
        let n = &self.nodes[x as usize];
        let parent = &self.nodes[n.parent.expect("non-root has parent") as usize];
        let nb = n.borders.len();
        if nb == 0 {
            return None;
        }
        // Global border-to-border distances from the (already refined)
        // parent matrix.
        let pborder: Vec<u32> = n
            .borders
            .iter()
            .map(|&b| pos_in(&parent.verts, b))
            .collect();
        let mut gbb = vec![INF; nb * nb];
        for a in 0..nb {
            for b in 0..nb {
                gbb[a * nb + b] = parent.mat(pborder[a], pborder[b]);
            }
        }
        Some(refine_with_gbb(
            n.is_leaf(),
            n.verts.len(),
            &n.border_pos,
            &n.matrix,
            &gbb,
        ))
    }
}

/// Leaf assembly matrix (`|borders| x |verts|`, row-major): Dijkstra
/// restricted to the leaf subgraph from each border. Shared by the build
/// and the scoped-repair paths so both produce bit-identical matrices.
fn leaf_assembly(g: &Graph, borders: &[NodeId], verts: &[NodeId]) -> Vec<Dist> {
    let ncols = verts.len();
    let mut matrix = vec![INF; borders.len() * ncols];
    for (bi, &b) in borders.iter().enumerate() {
        let dists = restricted_dijkstra(g, b, verts);
        matrix[bi * ncols..(bi + 1) * ncols].copy_from_slice(&dists);
    }
    matrix
}

/// All-pairs shortest paths over an assembly adjacency (`adj.len()` small
/// vertices). Shared by the build and the scoped-repair paths.
fn assembly_all_pairs(adj: &[Vec<(u32, Dist)>]) -> Vec<Dist> {
    let nv = adj.len();
    let mut matrix = vec![INF; nv * nv];
    let mut heap: BinaryHeap<(Reverse<Dist>, u32)> = BinaryHeap::new();
    for s in 0..nv as u32 {
        let row = &mut matrix[s as usize * nv..(s as usize + 1) * nv];
        row[s as usize] = 0;
        heap.push((Reverse(0), s));
        while let Some((Reverse(d), v)) = heap.pop() {
            if d > row[v as usize] {
                continue;
            }
            for &(t, w) in &adj[v as usize] {
                let nd = dadd(d, w);
                if nd < row[t as usize] {
                    row[t as usize] = nd;
                    heap.push((Reverse(nd), t));
                }
            }
        }
        heap.clear();
    }
    matrix
}

/// Lift a node's within-subgraph matrix `own` to global distances given
/// the global border-to-border matrix `gbb` (`nb x nb`, `nb =
/// border_pos.len()`). Shared by the build and the scoped-repair paths.
fn refine_with_gbb(
    is_leaf: bool,
    verts_len: usize,
    border_pos: &[u32],
    own: &[Dist],
    gbb: &[Dist],
) -> Vec<Dist> {
    let nb = border_pos.len();
    if is_leaf {
        // Leaf: `d_g(b, v) = min(d_L(b, v), min_c g(b, c) + d_L(c, v))`.
        let ncols = verts_len;
        let mut matrix = vec![INF; own.len()];
        for b in 0..nb {
            for v in 0..ncols {
                let mut best = own[b * ncols + v];
                for c in 0..nb {
                    best = best.min(dadd(gbb[b * nb + c], own[c * ncols + v]));
                }
                matrix[b * ncols + v] = best;
            }
        }
        matrix
    } else {
        // Internal: `d_g(u, v) = min(d_X(u, v), min_{a,b} d_X(u, a) +
        // g(a, b) + d_X(b, v))`, factored through
        // `h(u, b) = min_a d_X(u, a) + g(a, b)`.
        let nv = verts_len;
        let bp: Vec<usize> = border_pos.iter().map(|&p| p as usize).collect();
        let mut h = vec![INF; nv * nb];
        for u in 0..nv {
            for b in 0..nb {
                let mut best = INF;
                for a in 0..nb {
                    best = best.min(dadd(own[u * nv + bp[a]], gbb[a * nb + b]));
                }
                h[u * nb + b] = best;
            }
        }
        let mut matrix = vec![INF; own.len()];
        for u in 0..nv {
            for v in 0..nv {
                let mut best = own[u * nv + v];
                for b in 0..nb {
                    best = best.min(dadd(h[u * nb + b], own[bp[b] * nv + v]));
                }
                matrix[u * nv + v] = best;
            }
        }
        matrix
    }
}

/// Dijkstra from `src` restricted to the sorted vertex set `verts`
/// (a leaf's vertex set); returns distances aligned with `verts` positions.
pub(crate) fn restricted_dijkstra(g: &Graph, src: NodeId, verts: &[NodeId]) -> Vec<Dist> {
    let mut dist = vec![INF; verts.len()];
    let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
    dist[pos_in(verts, src) as usize] = 0;
    heap.push((Reverse(0), src));
    while let Some((Reverse(d), v)) = heap.pop() {
        if d > dist[pos_in(verts, v) as usize] {
            continue;
        }
        for (t, w) in g.neighbors(v) {
            if let Some(tp) = try_pos_in(verts, t) {
                let nd = dadd(d, w as Dist);
                if nd < dist[tp as usize] {
                    dist[tp as usize] = nd;
                    heap.push((Reverse(nd), t));
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + x % 2);
                }
            }
        }
        b.build()
    }

    #[test]
    fn single_leaf_tree_for_tiny_graph() {
        let g = grid(3, 3);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 16,
            },
        );
        assert_eq!(t.num_tree_nodes(), 1);
        assert_eq!(t.height(), 1);
        assert!(t.node(0).borders.is_empty()); // nothing leaves the root
    }

    #[test]
    fn every_vertex_assigned_to_a_leaf() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for v in 0..g.num_nodes() {
            let leaf = t.leaf(v as u32);
            assert_ne!(leaf, u32::MAX);
            assert!(t.node(leaf).is_leaf());
            assert!(t.node(leaf).try_vert_pos(v as u32).is_some());
        }
    }

    #[test]
    fn root_has_no_borders_on_connected_graph() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 6,
            },
        );
        assert!(t.node(ROOT).borders.is_empty());
    }

    #[test]
    fn borders_have_outside_edges() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        for x in 0..t.num_tree_nodes() as u32 {
            for &b in t.node(x).borders {
                assert!(
                    g.neighbors(b).any(|(nb, _)| !t.contains(x, nb)),
                    "border {b} of node {x} has no outside edge"
                );
            }
        }
    }

    #[test]
    fn child_borders_are_matrix_verts() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for x in 0..t.num_tree_nodes() as u32 {
            let n = t.node(x);
            if n.is_leaf() {
                continue;
            }
            for &c in n.children {
                for &b in t.node(c).borders {
                    assert!(n.try_vert_pos(b).is_some());
                }
            }
        }
    }

    #[test]
    fn matrix_diagonal_is_zero() {
        let g = grid(8, 8);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        for x in 0..t.num_tree_nodes() as u32 {
            let n = t.node(x);
            if n.is_leaf() {
                for (bi, &b) in n.borders.iter().enumerate() {
                    assert_eq!(n.lmat(bi, n.vert_pos(b)), 0);
                }
            } else {
                for i in 0..n.verts.len() as u32 {
                    assert_eq!(n.mat(i, i), 0);
                }
            }
        }
    }

    #[test]
    fn refined_matrices_are_global_distances() {
        use roadnet::dijkstra::dijkstra_all;
        let g = grid(7, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 6,
            },
        );
        for x in 0..t.num_tree_nodes() as u32 {
            let n = t.node(x);
            if n.is_leaf() {
                for (bi, &b) in n.borders.iter().enumerate() {
                    let truth = dijkstra_all(&g, b);
                    for (vp, &v) in n.verts.iter().enumerate() {
                        assert_eq!(
                            n.lmat(bi, vp as u32),
                            truth[v as usize],
                            "leaf matrix wrong for {b}->{v}"
                        );
                    }
                }
            } else {
                for (i, &u) in n.verts.iter().enumerate() {
                    let truth = dijkstra_all(&g, u);
                    for (j, &v) in n.verts.iter().enumerate() {
                        assert_eq!(
                            n.mat(i as u32, j as u32),
                            truth[v as usize],
                            "matrix wrong for {u}->{v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let g = grid(9, 8);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 7,
        };
        let seq = GTree::build_with_params(&g, params);
        for workers in [2, 4, 16] {
            let par = GTree::build_with_params_parallel(&g, params, workers);
            assert!(par == seq, "tree differs with {workers} workers");
        }
    }

    #[test]
    fn memory_reporting_positive() {
        let g = grid(8, 8);
        let t = GTree::build(&g);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn build_with_cache_matches_plain_build() {
        let g = grid(8, 6);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 8,
        };
        let plain = GTree::build_with_params(&g, params);
        let (cached, _) = GTree::build_with_cache(&g, params, 2);
        assert!(cached == plain);
    }

    #[test]
    fn repair_scoped_is_bit_identical_to_rebuild() {
        let g = grid(9, 7);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 8,
        };
        let (tree, mut cache) = GTree::build_with_cache(&g, params, 2);
        // Same-leaf edge, likely cross-leaf edges, increase + decrease,
        // and a multi-edge batch.
        let batches: Vec<Vec<(NodeId, NodeId, u32)>> = vec![
            vec![(0, 1, 9)],
            vec![(30, 31, 1)],
            vec![(4, 13, 7), (40, 41, 2)],
            vec![(20, 29, 5), (55, 56, 8), (10, 11, 1)],
        ];
        let mut cur = tree;
        let mut g2 = g.clone();
        for batch in batches {
            let patches: Vec<_> = batch.iter().map(|&(u, v, w)| (u, v, w)).collect();
            g2 = g2.with_patched_weights(&patches).unwrap();
            let touched: Vec<(NodeId, NodeId)> = batch.iter().map(|&(u, v, _)| (u, v)).collect();
            let (next, stats) = cur.repair_scoped(&g2, &mut cache, &touched, 2);
            let fresh = GTree::build_with_params(&g2, params);
            assert!(next == fresh, "repair diverged for batch {batch:?}");
            assert_eq!(stats.entries_total, fresh_entries(&fresh));
            assert!(stats.entries_repaired <= stats.entries_total);
            // Cross-leaf edges anchor at the leaves' LCA, so a batch may
            // legitimately touch zero leaf matrices — but something must
            // have been recomputed.
            assert!(stats.nodes_recomputed >= 1);
            cur = next;
        }
    }

    fn fresh_entries(t: &GTree) -> u64 {
        t.matrix.len() as u64
    }

    #[test]
    fn repair_scoped_empty_scope_changes_nothing() {
        let g = grid(6, 6);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 6,
        };
        let (tree, mut cache) = GTree::build_with_cache(&g, params, 1);
        let (same, stats) = tree.repair_scoped(&g, &mut cache, &[], 1);
        assert!(same == tree);
        assert_eq!(stats.nodes_recomputed, 0);
        assert_eq!(stats.scoped_leaves, 0);
    }

    #[test]
    fn repair_cache_for_tree_matches_build_cache() {
        // A cache recomputed over a finished tree must repair exactly like
        // the cache captured during the build.
        let g = grid(7, 7);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 7,
        };
        let (tree, mut built_cache) = GTree::build_with_cache(&g, params, 2);
        let mut recomputed_cache = RepairCache::for_tree(&tree, &g, 2);
        let g2 = g.with_patched_weights(&[(8, 9, 9), (24, 31, 1)]).unwrap();
        let touched = [(8, 9), (24, 31)];
        let (a, _) = tree.repair_scoped(&g2, &mut built_cache, &touched, 2);
        let (b, _) = tree.repair_scoped(&g2, &mut recomputed_cache, &touched, 2);
        assert!(a == b);
        assert!(a == GTree::build_with_params(&g2, params));
    }

    #[test]
    fn repair_scoped_single_leaf_tree() {
        let g = grid(3, 3);
        let params = GTreeParams {
            fanout: 4,
            leaf_cap: 16,
        };
        let (tree, mut cache) = GTree::build_with_cache(&g, params, 1);
        assert_eq!(tree.num_tree_nodes(), 1);
        let g2 = g.with_patched_weights(&[(0, 1, 7)]).unwrap();
        let (next, _) = tree.repair_scoped(&g2, &mut cache, &[(0, 1)], 1);
        assert!(next == GTree::build_with_params(&g2, params));
    }
}
