//! Binary persistence for the G-tree index.
//!
//! G-tree construction dominates deployment cost on large networks
//! (Fig. 9b); this module serializes the full index — hierarchy, borders,
//! matrix vertex sets, and distance matrices — into a versioned
//! little-endian stream so it can be built once and shipped.
//!
//! ```text
//! magic "GTRE" | version u32 | params (fanout u32, leaf_cap u32)
//! graph nodes u64 | leaf_of u32*
//! tree nodes u64
//! per node: parent i64 (-1 = root) | depth u32
//!           children len u32 + u32*
//!           borders  len u32 + u32*
//!           verts    len u32 + u32*
//!           border_pos len u32 + u32*
//!           matrix   len u64 + u64*
//! ```

use crate::tree::{GNode, GTree, GTreeParams};
use roadnet::Dist;
use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"GTRE";
const VERSION: u32 = 1;

/// Errors raised while decoding a G-tree file.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    /// A structural invariant failed (dangling child, bad leaf pointer,
    /// matrix size mismatch, ...).
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a G-tree file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "unexpected end of data"),
            PersistError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let len = self.u32()? as usize;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }
}

fn put_u32_vec(out: &mut Vec<u8>, v: &[u32]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl GTree {
    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let params = self.params();
        out.extend_from_slice(&(params.fanout as u32).to_le_bytes());
        out.extend_from_slice(&(params.leaf_cap as u32).to_le_bytes());
        out.extend_from_slice(&(self.leaf_of.len() as u64).to_le_bytes());
        for &l in &self.leaf_of {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            let parent: i64 = n.parent.map_or(-1, |p| p as i64);
            out.extend_from_slice(&parent.to_le_bytes());
            out.extend_from_slice(&n.depth.to_le_bytes());
            put_u32_vec(&mut out, &n.children);
            put_u32_vec(&mut out, &n.borders);
            put_u32_vec(&mut out, &n.verts);
            put_u32_vec(&mut out, &n.border_pos);
            out.extend_from_slice(&(n.matrix.len() as u64).to_le_bytes());
            for &d in &n.matrix {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    /// Decode a stream produced by [`GTree::to_bytes`], re-deriving the
    /// hash lookups and validating structural invariants.
    pub fn from_bytes(data: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader { buf: data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let params = GTreeParams {
            fanout: r.u32()? as usize,
            leaf_cap: r.u32()? as usize,
        };
        let graph_nodes = r.u64()? as usize;
        let mut leaf_of = Vec::with_capacity(graph_nodes.min(1 << 26));
        for _ in 0..graph_nodes {
            leaf_of.push(r.u32()?);
        }
        let num_tree_nodes = r.u64()? as usize;
        let mut nodes = Vec::with_capacity(num_tree_nodes.min(1 << 22));
        for _ in 0..num_tree_nodes {
            let parent_raw = r.i64()?;
            let parent = if parent_raw < 0 {
                None
            } else {
                Some(parent_raw as u32)
            };
            let depth = r.u32()?;
            let children = r.u32_vec()?;
            let borders = r.u32_vec()?;
            let verts = r.u32_vec()?;
            let border_pos = r.u32_vec()?;
            let mlen = r.u64()? as usize;
            let mut matrix: Vec<Dist> = Vec::with_capacity(mlen.min(1 << 26));
            for _ in 0..mlen {
                matrix.push(r.u64()?);
            }
            let vert_pos: HashMap<u32, u32> = verts
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();
            nodes.push(GNode {
                parent,
                children,
                depth,
                borders,
                verts,
                vert_pos,
                border_pos,
                matrix,
            });
        }

        // Structural validation.
        for (i, n) in nodes.iter().enumerate() {
            for &c in &n.children {
                if c as usize >= nodes.len() {
                    return Err(PersistError::Corrupt("child index out of range"));
                }
                if nodes[c as usize].parent != Some(i as u32) {
                    return Err(PersistError::Corrupt("parent/child mismatch"));
                }
            }
            let expected = if n.children.is_empty() {
                n.borders.len() * n.verts.len()
            } else {
                n.verts.len() * n.verts.len()
            };
            if n.matrix.len() != expected {
                return Err(PersistError::Corrupt("matrix size mismatch"));
            }
            if n.border_pos.len() != n.borders.len() {
                return Err(PersistError::Corrupt("border_pos size mismatch"));
            }
        }
        for &l in &leaf_of {
            if l as usize >= nodes.len() || !nodes[l as usize].children.is_empty() {
                return Err(PersistError::Corrupt("leaf_of points at a non-leaf"));
            }
        }
        Ok(GTree::from_parts(nodes, leaf_of, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{Graph, GraphBuilder, NodeId};

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + x % 2);
                }
            }
        }
        b.build()
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let g = grid(7, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        let bytes = t.to_bytes();
        let t2 = GTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.num_tree_nodes(), t.num_tree_nodes());
        assert_eq!(t2.params().leaf_cap, 6);
        for s in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(t2.dist(&g, s, v), t.dist(&g, s, v), "pair {s}->{v}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_knn() {
        use crate::knn::Occurrence;
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let t2 = GTree::from_bytes(&t.to_bytes()).unwrap();
        let objects: Vec<NodeId> = (0..36).step_by(4).collect();
        let occ1 = Occurrence::build(&t, &objects);
        let occ2 = Occurrence::build(&t2, &objects);
        for v in 0..36 {
            let a: Vec<_> = t.knn(&g, &occ1, v, 3);
            let b: Vec<_> = t2.knn(&g, &occ2, v, 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            GTree::from_bytes(b"XXXX????"),
            Err(PersistError::BadMagic)
        ));
        let g = grid(3, 3);
        let mut bytes = GTree::build(&g).to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            GTree::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let g = grid(4, 4);
        let bytes = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        )
        .to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(GTree::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_corrupt_leaf_pointer() {
        let g = grid(4, 4);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let mut bytes = t.to_bytes();
        // leaf_of starts at offset 4+4+8+8 = 24; point node 0 at node 0
        // (the root, which is internal here).
        bytes[24..28].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            GTree::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }
}
