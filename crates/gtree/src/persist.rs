//! Binary persistence for the G-tree index.
//!
//! G-tree construction dominates deployment cost on large networks
//! (Fig. 9b); this module serializes the full index — hierarchy, borders,
//! matrix vertex sets, and distance matrices — so it can be built once and
//! shipped. Two formats are supported:
//!
//! **v1** (`GTRE`) — the original element-wise little-endian stream:
//!
//! ```text
//! magic "GTRE" | version u32 | params (fanout u32, leaf_cap u32)
//! graph nodes u64 | leaf_of u32*
//! tree nodes u64
//! per node: parent i64 (-1 = root) | depth u32
//!           children len u32 + u32*
//!           borders  len u32 + u32*
//!           verts    len u32 + u32*
//!           border_pos len u32 + u32*
//!           matrix   len u64 + u64*
//! ```
//!
//! Decoding v1 rebuilds every per-node vector; all declared counts are
//! checked against the remaining input *before* any allocation, so a
//! corrupt length field yields [`PersistError::Oversized`] instead of an
//! abort in the allocator.
//!
//! **v2** (`FANNGT2`) — the flat container of `roadnet::flat`: the
//! thirteen CSR arrays of [`GTree`] written as sections, loaded zero-copy
//! (the tree serves queries directly out of the load buffer after a
//! scan-only validation pass; allocations are O(sections), not O(nodes)).

use crate::tree::{GNode, GTree, GTreeParams, NO_PARENT};
use roadnet::flat::{ensure, FlatError, FlatFile, FlatStreamWriter, FlatVec, FlatWriter, LoadMode};
use roadnet::Dist;
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"GTRE";
const VERSION: u32 = 1;

/// Magic for the flat (v2) container.
pub const FLAT_MAGIC: [u8; 8] = *b"FANNGT2\0";
const FLAT_VERSION: u32 = 2;

/// Errors raised while decoding a G-tree file.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    /// A declared element count exceeds the bytes actually present.
    Oversized,
    /// A structural invariant failed (dangling child, bad leaf pointer,
    /// matrix size mismatch, ...).
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a G-tree file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "unexpected end of data"),
            PersistError::Oversized => write!(f, "declared count exceeds input size"),
            PersistError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reject a declared `count` of `elem_bytes`-sized elements that could
    /// not possibly fit in the remaining input — before allocating for it.
    fn check_count(&self, count: usize, elem_bytes: usize) -> Result<(), PersistError> {
        match count.checked_mul(elem_bytes) {
            Some(total) if total <= self.remaining() => Ok(()),
            _ => Err(PersistError::Oversized),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let len = self.u32()? as usize;
        self.check_count(len, 4)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }
}

fn put_u32_vec(out: &mut Vec<u8>, v: &[u32]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl GTree {
    /// Serialize to the v1 element-wise binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let params = self.params();
        out.extend_from_slice(&(params.fanout as u32).to_le_bytes());
        out.extend_from_slice(&(params.leaf_cap as u32).to_le_bytes());
        out.extend_from_slice(&(self.leaf_of.len() as u64).to_le_bytes());
        for &l in self.leaf_of.iter() {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&(self.num_tree_nodes() as u64).to_le_bytes());
        for x in 0..self.num_tree_nodes() as u32 {
            let n = self.node(x);
            let parent: i64 = self.parent_of(x).map_or(-1, |p| p as i64);
            out.extend_from_slice(&parent.to_le_bytes());
            out.extend_from_slice(&self.depth_of(x).to_le_bytes());
            put_u32_vec(&mut out, n.children);
            put_u32_vec(&mut out, n.borders);
            put_u32_vec(&mut out, n.verts);
            put_u32_vec(&mut out, n.border_pos);
            let (m0, m1) = self.matrix_run(x);
            out.extend_from_slice(&((m1 - m0) as u64).to_le_bytes());
            for &d in &self.matrix[m0..m1] {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    fn matrix_run(&self, x: u32) -> (usize, usize) {
        (
            self.matrix_off[x as usize] as usize,
            self.matrix_off[x as usize + 1] as usize,
        )
    }

    /// Decode a stream produced by [`GTree::to_bytes`], validating
    /// structural invariants and flattening into the CSR layout.
    pub fn from_bytes(data: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader { buf: data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let params = GTreeParams {
            fanout: r.u32()? as usize,
            leaf_cap: r.u32()? as usize,
        };
        let graph_nodes = usize::try_from(r.u64()?).map_err(|_| PersistError::Oversized)?;
        r.check_count(graph_nodes, 4)?;
        let mut leaf_of = Vec::with_capacity(graph_nodes);
        for _ in 0..graph_nodes {
            leaf_of.push(r.u32()?);
        }
        let num_tree_nodes = usize::try_from(r.u64()?).map_err(|_| PersistError::Oversized)?;
        // Minimum per-node encoding: parent 8 + depth 4 + four u32 lengths
        // + matrix length u64.
        r.check_count(num_tree_nodes, 8 + 4 + 16 + 8)?;
        let mut nodes = Vec::with_capacity(num_tree_nodes);
        for _ in 0..num_tree_nodes {
            let parent_raw = r.i64()?;
            let parent = if parent_raw < 0 {
                None
            } else {
                Some(u32::try_from(parent_raw).map_err(|_| PersistError::Oversized)?)
            };
            let depth = r.u32()?;
            let children = r.u32_vec()?;
            let borders = r.u32_vec()?;
            let verts = r.u32_vec()?;
            let border_pos = r.u32_vec()?;
            let mlen = usize::try_from(r.u64()?).map_err(|_| PersistError::Oversized)?;
            r.check_count(mlen, 8)?;
            let mut matrix: Vec<Dist> = Vec::with_capacity(mlen);
            for _ in 0..mlen {
                matrix.push(r.u64()?);
            }
            nodes.push(GNode {
                parent,
                children,
                depth,
                borders,
                verts,
                border_pos,
                matrix,
            });
        }
        validate_nodes(&nodes, &leaf_of).map_err(PersistError::Corrupt)?;
        Ok(GTree::from_parts(nodes, leaf_of, params))
    }
}

/// Structural invariants shared by the v1 decoder (and mirrored by the
/// scan-only checks of the v2 loader). `Err` carries the failed invariant.
fn validate_nodes(nodes: &[GNode], leaf_of: &[u32]) -> Result<(), &'static str> {
    if nodes.is_empty() {
        return Err("empty tree");
    }
    for (i, n) in nodes.iter().enumerate() {
        if let Some(p) = n.parent {
            let pn = nodes.get(p as usize).ok_or("parent index out of range")?;
            // Depth must strictly increase along parent links: rules out
            // cycles that would hang ancestor walks.
            if n.depth != pn.depth + 1 {
                return Err("depth not parent depth + 1");
            }
        } else if i != 0 {
            return Err("non-root without parent");
        }
        for &c in &n.children {
            if c as usize >= nodes.len() {
                return Err("child index out of range");
            }
            if nodes[c as usize].parent != Some(i as u32) {
                return Err("parent/child mismatch");
            }
        }
        // Positions are looked up by binary search: verts must be strictly
        // ascending.
        if !n.verts.windows(2).all(|w| w[0] < w[1]) {
            return Err("verts not sorted");
        }
        let expected = if n.children.is_empty() {
            n.borders.len().checked_mul(n.verts.len())
        } else {
            n.verts.len().checked_mul(n.verts.len())
        };
        if expected != Some(n.matrix.len()) {
            return Err("matrix size mismatch");
        }
        if n.border_pos.len() != n.borders.len() {
            return Err("border_pos size mismatch");
        }
        for (&b, &bp) in n.borders.iter().zip(&n.border_pos) {
            if n.verts.get(bp as usize) != Some(&b) {
                return Err("border_pos does not locate border");
            }
        }
    }
    for &l in leaf_of {
        if l as usize >= nodes.len() || !nodes[l as usize].children.is_empty() {
            return Err("leaf_of points at a non-leaf");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// v2 flat container
// ---------------------------------------------------------------------------

impl GTree {
    /// Serialize to the flat v2 container ([`FLAT_MAGIC`]). Section order:
    /// params, leaf_of, parent, depth, children_off, children, borders_off,
    /// borders, border_pos, verts_off, verts, matrix_off, matrix.
    pub fn to_flat_bytes(&self) -> Vec<u8> {
        self.flat_writer().finish()
    }

    /// Write the flat v2 container to `path`, streaming each of the 13
    /// CSR sections straight to the file — peak writer memory is the tree
    /// itself, never a second assembled copy (at continental scale the
    /// matrix section dominates the file).
    pub fn write_flat(&self, path: &Path) -> std::io::Result<()> {
        let params = self.params();
        let mut w = FlatStreamWriter::create(path, FLAT_MAGIC, FLAT_VERSION, 13)?;
        w.section::<u32>(&[params.fanout as u32, params.leaf_cap as u32])?;
        w.section::<u32>(&self.leaf_of)?;
        w.section::<u32>(&self.parent)?;
        w.section::<u32>(&self.depth)?;
        w.section::<u32>(&self.children_off)?;
        w.section::<u32>(&self.children)?;
        w.section::<u32>(&self.borders_off)?;
        w.section::<u32>(&self.borders)?;
        w.section::<u32>(&self.border_pos)?;
        w.section::<u32>(&self.verts_off)?;
        w.section::<u32>(&self.verts)?;
        w.section::<u64>(&self.matrix_off)?;
        w.section::<u64>(&self.matrix)?;
        w.finish()
    }

    fn flat_writer(&self) -> FlatWriter {
        let params = self.params();
        let mut w = FlatWriter::new(FLAT_MAGIC, FLAT_VERSION);
        w.section::<u32>(&[params.fanout as u32, params.leaf_cap as u32]);
        w.section::<u32>(&self.leaf_of);
        w.section::<u32>(&self.parent);
        w.section::<u32>(&self.depth);
        w.section::<u32>(&self.children_off);
        w.section::<u32>(&self.children);
        w.section::<u32>(&self.borders_off);
        w.section::<u32>(&self.borders);
        w.section::<u32>(&self.border_pos);
        w.section::<u32>(&self.verts_off);
        w.section::<u32>(&self.verts);
        w.section::<u64>(&self.matrix_off);
        w.section::<u64>(&self.matrix);
        w
    }

    /// Load a flat v2 container from `path` zero-copy: one aligned buffer
    /// (mapped when possible, see [`LoadMode::Auto`]), then typed slice
    /// views over it (allocations are O(sections)).
    pub fn read_flat(path: &Path) -> Result<Self, FlatError> {
        Self::read_flat_with(path, LoadMode::Auto)
    }

    /// [`GTree::read_flat`] with an explicit backing [`LoadMode`].
    pub fn read_flat_with(path: &Path, mode: LoadMode) -> Result<Self, FlatError> {
        Self::from_flat(FlatFile::open(path, FLAT_MAGIC, FLAT_VERSION, mode)?)
    }

    /// Decode a flat v2 container from a byte buffer (copies once).
    pub fn from_flat_bytes(bytes: &[u8]) -> Result<Self, FlatError> {
        Self::from_flat(FlatFile::parse(bytes, FLAT_MAGIC, FLAT_VERSION)?)
    }

    fn from_flat(f: FlatFile) -> Result<Self, FlatError> {
        ensure(f.section_count() == 13, "gtree section count")?;
        let params_raw: FlatVec<u32> = f.section(0)?;
        let leaf_of: FlatVec<u32> = f.section(1)?;
        let parent: FlatVec<u32> = f.section(2)?;
        let depth: FlatVec<u32> = f.section(3)?;
        let children_off: FlatVec<u32> = f.section(4)?;
        let children: FlatVec<u32> = f.section(5)?;
        let borders_off: FlatVec<u32> = f.section(6)?;
        let borders: FlatVec<u32> = f.section(7)?;
        let border_pos: FlatVec<u32> = f.section(8)?;
        let verts_off: FlatVec<u32> = f.section(9)?;
        let verts: FlatVec<u32> = f.section(10)?;
        let matrix_off: FlatVec<u64> = f.section(11)?;
        let matrix: FlatVec<Dist> = f.section(12)?;

        ensure(params_raw.len() == 2, "gtree params length")?;
        // Hoist the typed views onto plain slices once: the scans below
        // touch every array element, and indexing through the `FlatVec`
        // handles would re-resolve the backing on each access.
        let (parent_s, depth_s): (&[u32], &[u32]) = (&parent, &depth);
        let (children_off_s, children_s): (&[u32], &[u32]) = (&children_off, &children);
        let (borders_off_s, borders_s): (&[u32], &[u32]) = (&borders_off, &borders);
        let (verts_off_s, verts_s): (&[u32], &[u32]) = (&verts_off, &verts);
        let (border_pos_s, matrix_off_s): (&[u32], &[u64]) = (&border_pos, &matrix_off);
        let t = parent_s.len();
        ensure(t >= 1, "gtree empty")?;
        ensure(depth_s.len() == t, "gtree depth length")?;
        for (off, total) in [
            (children_off_s, children_s.len()),
            (borders_off_s, borders_s.len()),
            (verts_off_s, verts_s.len()),
        ] {
            ensure(off.len() == t + 1, "gtree offsets length")?;
            ensure(off[0] == 0, "gtree offsets origin")?;
            ensure(off.windows(2).all(|w| w[0] <= w[1]), "gtree offsets order")?;
            ensure(off[t] as usize == total, "gtree offsets terminal")?;
        }
        ensure(matrix_off_s.len() == t + 1, "gtree offsets length")?;
        ensure(matrix_off_s[0] == 0, "gtree offsets origin")?;
        ensure(
            matrix_off_s.windows(2).all(|w| w[0] <= w[1]),
            "gtree offsets order",
        )?;
        ensure(
            matrix_off_s[t] as usize == matrix.len(),
            "gtree offsets terminal",
        )?;
        ensure(
            border_pos_s.len() == borders_s.len(),
            "gtree border_pos length",
        )?;

        // Per-node invariants, scan-only (no per-node allocation).
        ensure(parent_s[0] == NO_PARENT, "gtree root parent")?;
        ensure(depth_s[0] == 0, "gtree root depth")?;
        for x in 1..t {
            let p = parent_s[x];
            ensure((p as usize) < t, "gtree parent range")?;
            // Strictly increasing depth along parent links rules out cycles.
            ensure(depth_s[x] == depth_s[p as usize] + 1, "gtree depth chain")?;
        }
        for x in 0..t {
            let (c0, c1) = (children_off_s[x] as usize, children_off_s[x + 1] as usize);
            for &c in &children_s[c0..c1] {
                ensure((c as usize) < t, "gtree child range")?;
                ensure(parent_s[c as usize] == x as u32, "gtree parent/child link")?;
            }
            let (v0, v1) = (verts_off_s[x] as usize, verts_off_s[x + 1] as usize);
            let vrun = &verts_s[v0..v1];
            ensure(vrun.windows(2).all(|w| w[0] < w[1]), "gtree verts sorted")?;
            let (b0, b1) = (borders_off_s[x] as usize, borders_off_s[x + 1] as usize);
            for (&b, &bp) in borders_s[b0..b1].iter().zip(&border_pos_s[b0..b1]) {
                ensure(vrun.get(bp as usize) == Some(&b), "gtree border_pos")?;
            }
            let rows = if c0 == c1 { b1 - b0 } else { v1 - v0 };
            let expected = rows.checked_mul(v1 - v0);
            let got = (matrix_off_s[x + 1] - matrix_off_s[x]) as usize;
            ensure(expected == Some(got), "gtree matrix size")?;
        }
        for &l in leaf_of.iter() {
            ensure((l as usize) < t, "gtree leaf_of range")?;
            let li = l as usize;
            ensure(
                children_off_s[li] == children_off_s[li + 1],
                "gtree leaf_of non-leaf",
            )?;
        }

        let params = GTreeParams {
            fanout: params_raw[0] as usize,
            leaf_cap: params_raw[1] as usize,
        };
        Ok(GTree::from_flat_parts(
            params,
            leaf_of,
            parent,
            depth,
            children_off,
            children,
            borders_off,
            borders,
            border_pos,
            verts_off,
            verts,
            matrix_off,
            matrix,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use roadnet::{Graph, GraphBuilder, NodeId};

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + x % 2);
                }
            }
        }
        b.build()
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let g = grid(7, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        let bytes = t.to_bytes();
        let t2 = GTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.num_tree_nodes(), t.num_tree_nodes());
        assert_eq!(t2.params().leaf_cap, 6);
        assert!(t2 == t, "v1 round trip must reproduce the tree exactly");
        for s in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(t2.dist(&g, s, v), t.dist(&g, s, v), "pair {s}->{v}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_knn() {
        use crate::knn::Occurrence;
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let t2 = GTree::from_bytes(&t.to_bytes()).unwrap();
        let objects: Vec<NodeId> = (0..36).step_by(4).collect();
        let occ1 = Occurrence::build(&t, &objects);
        let occ2 = Occurrence::build(&t2, &objects);
        for v in 0..36 {
            let a: Vec<_> = t.knn(&g, &occ1, v, 3);
            let b: Vec<_> = t2.knn(&g, &occ2, v, 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            GTree::from_bytes(b"XXXX????"),
            Err(PersistError::BadMagic)
        ));
        let g = grid(3, 3);
        let mut bytes = GTree::build(&g).to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            GTree::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let g = grid(4, 4);
        let bytes = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        )
        .to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(GTree::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_corrupt_leaf_pointer() {
        let g = grid(4, 4);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let mut bytes = t.to_bytes();
        // leaf_of starts at offset 4+4+8+8 = 24; point node 0 at node 0
        // (the root, which is internal here).
        bytes[24..28].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            GTree::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_counts() {
        let g = grid(4, 4);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let mut bytes = t.to_bytes();
        // graph node count at offset 16: absurdly large counts must fail
        // the size check, not abort inside the allocator.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(GTree::from_bytes(&bytes), Err(PersistError::Oversized));

        let mut bytes = t.to_bytes();
        let tree_count_at = 24 + 4 * g.num_nodes();
        bytes[tree_count_at..tree_count_at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert_eq!(GTree::from_bytes(&bytes), Err(PersistError::Oversized));
    }

    /// Decoding arbitrarily mangled input must return an error or a valid
    /// tree — never panic and never over-allocate.
    #[test]
    fn fuzzed_corruption_never_panics() {
        let g = grid(5, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let clean = t.to_bytes();
        let mut rng = StdRng::seed_from_u64(0x4754_5245);
        for _ in 0..500 {
            let mut bytes = clean.clone();
            if rng.gen_bool(0.3) {
                bytes.truncate(rng.gen_range(0..bytes.len()));
            }
            if !bytes.is_empty() {
                for _ in 0..rng.gen_range(1..8usize) {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] = rng.gen_range(0..=255u32) as u8;
                }
            }
            let _ = GTree::from_bytes(&bytes); // any Result is fine
        }
    }

    #[test]
    fn flat_round_trip_is_identical() {
        let g = grid(7, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        let t2 = GTree::from_flat_bytes(&t.to_flat_bytes()).unwrap();
        assert!(t2 == t, "flat round trip must reproduce the tree exactly");
        for s in (0..g.num_nodes() as NodeId).step_by(5) {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(t2.dist(&g, s, v), t.dist(&g, s, v), "pair {s}->{v}");
            }
        }
    }

    #[test]
    fn flat_matches_v1_decode() {
        let g = grid(6, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let via_v1 = GTree::from_bytes(&t.to_bytes()).unwrap();
        let via_v2 = GTree::from_flat_bytes(&t.to_flat_bytes()).unwrap();
        assert!(via_v1 == via_v2);
    }

    #[test]
    fn flat_rejects_malformed_containers() {
        let g = grid(5, 4);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let bytes = t.to_flat_bytes();
        for cut in (0..bytes.len()).step_by(8) {
            assert!(GTree::from_flat_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            GTree::from_flat_bytes(&bad),
            Err(FlatError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[12] = 9;
        assert!(matches!(
            GTree::from_flat_bytes(&bad),
            Err(FlatError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn flat_rejects_structural_corruption() {
        let g = grid(5, 4);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        assert!(t.num_tree_nodes() > 1, "need an internal root");
        let bytes = t.to_flat_bytes();
        // Section 1 is leaf_of; its offset lives in the second table entry
        // (table starts at byte 24, 16 bytes per entry).
        let entry = 24 + 16;
        let off = u64::from_le_bytes(bytes[entry..entry + 8].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        // Point vertex 0's leaf at the root (internal).
        bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            GTree::from_flat_bytes(&bad),
            Err(FlatError::Corrupt(_))
        ));
        // Break the parent of node 1 (section 2): self-loop must be caught
        // by the depth-chain check.
        let entry = 24 + 2 * 16;
        let off = u64::from_le_bytes(bytes[entry..entry + 8].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        bad[off + 4..off + 8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            GTree::from_flat_bytes(&bad),
            Err(FlatError::Corrupt(_))
        ));
    }
}
