//! G-tree: a hierarchical road-network index for distance and kNN queries.
//!
//! Reimplementation of the G-tree index of Zhong et al. \[11\], \[21\], used by
//! the paper as one of the state-of-the-art `g_phi` backends (Table I):
//! the graph is recursively partitioned (fanout `f`, leaf capacity `tau`),
//! each tree node materializes a distance matrix over its (children's)
//! borders, and queries assemble distances through those matrices. The
//! occurrence-list (`Occ`) kNN search of the original paper is provided by
//! [`Occurrence`] + [`GTree::knn`].
//!
//! Differences from the original are documented in DESIGN.md: METIS is
//! replaced by geometric recursive bisection with greedy cut refinement,
//! and matrices are lifted to global distances by a top-down refinement
//! pass, which keeps queries simple and provably exact.

pub mod knn;
pub mod partition;
pub mod persist;
pub mod query;
pub mod tree;

pub use knn::Occurrence;
pub use partition::top_level_cut;
pub use tree::{GTree, GTreeParams, GTreeRepairStats, RepairCache};
