//! Multilevel graph partitioning for the G-tree hierarchy.
//!
//! G-tree \[11\], \[21\] recursively splits the road network into `f` balanced
//! subgraphs until a leaf holds at most `tau` vertices (§VI-A sets `f = 4`
//! and `tau` per dataset). The original uses METIS; road networks are
//! near-planar, so this implementation uses *geometric recursive bisection*
//! (median split along the wider coordinate axis), which produces balanced
//! parts with small cuts on road-like graphs and is fully deterministic —
//! the substitution is recorded in DESIGN.md. A local greedy refinement
//! pass shrinks the cut after each bisection.

use roadnet::{Graph, NodeId};

/// The partition hierarchy: internal nodes hold children, leaves hold the
/// vertex set. Every vertex of the input set appears in exactly one leaf.
pub struct PartitionNode {
    pub children: Vec<PartitionNode>,
    /// Vertices of this part; populated for leaves only.
    pub vertices: Vec<NodeId>,
}

impl PartitionNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total number of leaves under this node.
    pub fn num_leaves(&self) -> usize {
        if self.is_leaf() {
            1
        } else {
            self.children.iter().map(PartitionNode::num_leaves).sum()
        }
    }

    /// All vertices under this node (leaf order).
    pub fn collect_vertices(&self, out: &mut Vec<NodeId>) {
        if self.is_leaf() {
            out.extend_from_slice(&self.vertices);
        } else {
            for c in &self.children {
                c.collect_vertices(out);
            }
        }
    }
}

/// Recursively partition the whole graph.
///
/// `fanout` must be a power of two `>= 2` (each level performs
/// `log2(fanout)` median bisections); `leaf_cap >= 1`.
pub fn partition_graph(g: &Graph, fanout: usize, leaf_cap: usize) -> PartitionNode {
    assert!(
        fanout >= 2 && fanout.is_power_of_two(),
        "fanout must be a power of two >= 2, got {fanout}"
    );
    assert!(leaf_cap >= 1, "leaf_cap must be >= 1");
    let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    split_recursive(g, all, fanout, leaf_cap)
}

fn split_recursive(g: &Graph, verts: Vec<NodeId>, fanout: usize, leaf_cap: usize) -> PartitionNode {
    if verts.len() <= leaf_cap {
        return PartitionNode {
            children: Vec::new(),
            vertices: verts,
        };
    }
    let parts = split_ways(g, verts, fanout);
    let children = parts
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|p| split_recursive(g, p, fanout, leaf_cap))
        .collect();
    PartitionNode {
        children,
        vertices: Vec::new(),
    }
}

/// The G-tree *top-level cut*: the whole vertex set split into exactly
/// `shards` non-empty, disjoint parts (sorted node lists), suitable as the
/// shard assignment for the partitioned serving tier. Each part is a
/// contiguous geometric region (same median-bisection + cut-refinement
/// machinery as [`partition_graph`]'s top level); when `shards` is not a
/// power of two, the extra parts from the next power-of-two bisection are
/// merged smallest-first until exactly `shards` remain.
///
/// Deterministic for a given graph. Panics if `shards == 0` or exceeds the
/// number of vertices.
pub fn top_level_cut(g: &Graph, shards: usize) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    assert!(shards >= 1, "need at least one shard");
    assert!(shards <= n, "more shards ({shards}) than vertices ({n})");
    let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    if shards == 1 {
        return vec![all];
    }
    let fanout = shards.next_power_of_two();
    let mut parts: Vec<Vec<NodeId>> = split_ways(g, all, fanout)
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    // Merge smallest pairs until exactly `shards` parts remain. Parts come
    // out of the bisection in geometric order, so merging a smallest part
    // into its smaller neighbor keeps regions roughly contiguous.
    while parts.len() > shards {
        let i = (0..parts.len())
            .min_by_key(|&i| parts[i].len())
            .expect("non-empty");
        let merged = parts.remove(i);
        let j = match (i.checked_sub(1), parts.get(i)) {
            (Some(l), Some(r)) if parts[l].len() <= r.len() => l,
            (Some(l), None) => l,
            (_, Some(_)) => i,
            (None, None) => unreachable!("shards >= 2"),
        };
        parts[j].extend_from_slice(&merged);
    }
    // A bisection of >= `shards` vertices cannot leave fewer non-empty
    // parts than `shards` only when refinement collapsed a side; split
    // round-robin as a last resort so the contract (exactly `shards`
    // non-empty parts) always holds.
    while parts.len() < shards {
        let i = (0..parts.len())
            .max_by_key(|&i| parts[i].len())
            .expect("non-empty");
        let big = &mut parts[i];
        let tail = big.split_off(big.len() / 2);
        parts.push(tail);
    }
    for p in &mut parts {
        p.sort_unstable();
    }
    parts
}

/// Split `verts` into up to `fanout` parts by repeated bisection.
fn split_ways(g: &Graph, verts: Vec<NodeId>, fanout: usize) -> Vec<Vec<NodeId>> {
    let mut parts = vec![verts];
    let levels = fanout.trailing_zeros();
    for _ in 0..levels {
        let mut next = Vec::with_capacity(parts.len() * 2);
        for p in parts {
            if p.len() <= 1 {
                next.push(p);
                continue;
            }
            let (a, b) = bisect(g, p);
            next.push(a);
            next.push(b);
        }
        parts = next;
    }
    parts
}

/// Median bisection along the wider coordinate axis, followed by a greedy
/// boundary-refinement pass that moves vertices whose neighbors
/// predominantly lie on the other side (cut reduction), subject to a
/// balance constraint.
fn bisect(g: &Graph, mut verts: Vec<NodeId>) -> (Vec<NodeId>, Vec<NodeId>) {
    // Choose split axis by bounding-box extent.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &verts {
        let p = g.coord(v);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let by_x = (max_x - min_x) >= (max_y - min_y);
    let key = |v: NodeId| {
        let p = g.coord(v);
        if by_x {
            p.x
        } else {
            p.y
        }
    };
    let mid = verts.len() / 2;
    verts.select_nth_unstable_by(mid, |&a, &b| key(a).total_cmp(&key(b)).then(a.cmp(&b)));
    let right: Vec<NodeId> = verts.split_off(mid);
    let left = verts;
    refine_cut(g, left, right)
}

/// One pass of greedy boundary refinement: a vertex moves to the other side
/// if that strictly reduces the number of cut edges, as long as the balance
/// stays within 10% of even.
fn refine_cut(g: &Graph, left: Vec<NodeId>, right: Vec<NodeId>) -> (Vec<NodeId>, Vec<NodeId>) {
    let total = left.len() + right.len();
    let slack = total / 10 + 1;
    let lo = (total / 2).saturating_sub(slack);
    let hi = total / 2 + slack;

    // side: 0 = left, 1 = right, sparse map over this part only.
    let mut side = std::collections::HashMap::with_capacity(total);
    for &v in &left {
        side.insert(v, 0u8);
    }
    for &v in &right {
        side.insert(v, 1u8);
    }
    let mut sizes = [left.len(), right.len()];

    let candidates: Vec<NodeId> = left.iter().chain(right.iter()).copied().collect();
    for &v in &candidates {
        let s = side[&v];
        let o = 1 - s;
        // Gain = cut edges removed - cut edges added when moving v.
        let mut same = 0i64;
        let mut other = 0i64;
        for (nb, _) in g.neighbors(v) {
            match side.get(&nb) {
                Some(&ns) if ns == s => same += 1,
                Some(_) => other += 1,
                None => {} // neighbor outside this part: unaffected
            }
        }
        let bigger_after = sizes[o as usize] + 1;
        if other > same && bigger_after <= hi && sizes[s as usize] > lo {
            side.insert(v, o);
            sizes[s as usize] -= 1;
            sizes[o as usize] += 1;
        }
    }

    let mut l = Vec::with_capacity(sizes[0]);
    let mut r = Vec::with_capacity(sizes[1]);
    for v in candidates {
        if side[&v] == 0 {
            l.push(v);
        } else {
            r.push(v);
        }
    }
    (l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn covers_all_vertices_exactly_once() {
        let g = grid(10, 10);
        let p = partition_graph(&g, 4, 8);
        let mut verts = Vec::new();
        p.collect_vertices(&mut verts);
        verts.sort_unstable();
        assert_eq!(verts, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn leaves_respect_cap() {
        let g = grid(12, 12);
        let p = partition_graph(&g, 4, 10);
        fn check(n: &PartitionNode, cap: usize) {
            if n.is_leaf() {
                assert!(
                    n.vertices.len() <= cap,
                    "leaf too big: {}",
                    n.vertices.len()
                );
            } else {
                for c in &n.children {
                    check(c, cap);
                }
            }
        }
        check(&p, 10);
    }

    #[test]
    fn fanout_bounds_children() {
        let g = grid(16, 16);
        let p = partition_graph(&g, 4, 16);
        fn check(n: &PartitionNode) {
            assert!(n.children.len() <= 4);
            for c in &n.children {
                check(c);
            }
        }
        check(&p);
    }

    #[test]
    fn small_graph_is_single_leaf() {
        let g = grid(2, 2);
        let p = partition_graph(&g, 4, 16);
        assert!(p.is_leaf());
        assert_eq!(p.vertices.len(), 4);
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = grid(20, 20);
        let p = partition_graph(&g, 2, 50);
        // Top-level split of 400 vertices into 2 parts: each within 40%..60%.
        assert_eq!(p.children.len(), 2);
        let mut sizes = Vec::new();
        for c in &p.children {
            let mut v = Vec::new();
            c.collect_vertices(&mut v);
            sizes.push(v.len());
        }
        for s in sizes {
            assert!((160..=240).contains(&s), "unbalanced: {s}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_fanout() {
        let g = grid(4, 4);
        let _ = partition_graph(&g, 3, 4);
    }

    #[test]
    fn top_level_cut_is_a_partition() {
        let g = grid(10, 10);
        for shards in [1usize, 2, 3, 4, 5, 7] {
            let parts = top_level_cut(&g, shards);
            assert_eq!(parts.len(), shards, "{shards} shards requested");
            let mut all = Vec::new();
            for p in &parts {
                assert!(!p.is_empty(), "empty shard in {shards}-way cut");
                assert!(p.windows(2).all(|w| w[0] < w[1]), "part not sorted");
                all.extend_from_slice(p);
            }
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn top_level_cut_is_roughly_balanced_for_powers_of_two() {
        let g = grid(20, 20);
        let parts = top_level_cut(&g, 2);
        for p in &parts {
            assert!((160..=240).contains(&p.len()), "unbalanced: {}", p.len());
        }
    }
}
