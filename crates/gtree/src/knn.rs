//! kNN search over an object set with occurrence lists (`Occ`).
//!
//! This is the "GTree" kNN algorithm of Table I: given a query vertex `v`
//! and an object set `O` (for FANN_R, `O = Q` and `k = phi|Q|`), the search
//! walks the G-tree best-first, pruning subtrees without objects using the
//! occurrence structure and lower-bounding each subtree by the exact global
//! distance from `v` to the subtree's nearest border.

use crate::tree::{dadd, restricted_dijkstra, GTree};
use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Occurrence lists over an object set: for every tree node whether its
/// subtree contains an object, and the objects of each leaf.
pub struct Occurrence {
    has: Vec<bool>,
    leaf_objects: Vec<Vec<NodeId>>,
    num_objects: usize,
}

impl Occurrence {
    /// Mark the tree nodes covering `objects`.
    pub fn build(tree: &GTree, objects: &[NodeId]) -> Self {
        let n = tree.num_tree_nodes();
        let mut has = vec![false; n];
        let mut leaf_objects = vec![Vec::new(); n];
        for &o in objects {
            let leaf = tree.leaf(o);
            leaf_objects[leaf as usize].push(o);
            let mut cur = leaf;
            loop {
                if has[cur as usize] {
                    break; // ancestors already marked
                }
                has[cur as usize] = true;
                match tree.parent_of(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        Occurrence {
            has,
            leaf_objects,
            num_objects: objects.len(),
        }
    }

    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Approximate in-memory size (Appendix-A index-cost experiment).
    pub fn memory_bytes(&self) -> usize {
        self.has.len()
            + self
                .leaf_objects
                .iter()
                .map(|l| l.len() * 4 + std::mem::size_of::<Vec<NodeId>>())
                .sum::<usize>()
    }
}

/// Bounded max-heap collecting the k smallest `(dist, node)` results.
struct TopK {
    k: usize,
    heap: BinaryHeap<(Dist, NodeId)>,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::new(),
        }
    }

    fn offer(&mut self, d: Dist, v: NodeId) {
        if d == INF || self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((d, v));
        } else if let Some(&(worst, _)) = self.heap.peek() {
            if d < worst {
                self.heap.pop();
                self.heap.push((d, v));
            }
        }
    }

    /// Current pruning threshold: the k-th best distance so far.
    fn threshold(&self) -> Dist {
        if self.heap.len() < self.k {
            INF
        } else {
            self.heap.peek().map_or(INF, |&(d, _)| d)
        }
    }

    fn into_sorted(self) -> Vec<(NodeId, Dist)> {
        let mut v: Vec<(NodeId, Dist)> = self.heap.into_iter().map(|(d, n)| (n, d)).collect();
        v.sort_by_key(|&(n, d)| (d, n));
        v
    }
}

impl GTree {
    /// The `k` objects of `occ` nearest to `v` in network distance,
    /// ascending; fewer than `k` if fewer are reachable.
    pub fn knn(&self, g: &Graph, occ: &Occurrence, v: NodeId, k: usize) -> Vec<(NodeId, Dist)> {
        let mut best = TopK::new(k);
        if k == 0 {
            return Vec::new();
        }
        let lv = self.leaf(v);

        // 1) Objects in v's own leaf: inner Dijkstra + out-and-back via
        //    borders (leaf matrices are global).
        {
            let leaf = self.node(lv);
            let inner = restricted_dijkstra(g, v, leaf.verts);
            let vp = leaf.vert_pos(v);
            for &o in &occ.leaf_objects[lv as usize] {
                let op = leaf.vert_pos(o);
                let mut d = inner[op as usize];
                for bi in 0..leaf.borders.len() {
                    d = d.min(dadd(leaf.lmat(bi, vp), leaf.lmat(bi, op)));
                }
                best.offer(d, o);
            }
        }

        // 2) Eagerly compute global distance vectors from v to the matrix
        //    vertices of every ancestor, seeding the frontier with each
        //    ancestor's non-path object children.
        //    dv_of[x] = distances from v to node(x).verts (internal only).
        let mut dv_of: HashMap<u32, Vec<Dist>> = HashMap::new();
        let mut frontier: BinaryHeap<(Reverse<Dist>, u32)> = BinaryHeap::new();

        {
            let leaf = self.node(lv);
            let vp = leaf.vert_pos(v);
            // Distance vector over current child's borders, walking up.
            let mut cur = lv;
            let mut dv: Vec<Dist> = (0..leaf.borders.len())
                .map(|bi| leaf.lmat(bi, vp))
                .collect();
            while let Some(parent) = self.parent_of(cur) {
                let p = self.node(parent);
                let cur_bpos: Vec<u32> = self
                    .node(cur)
                    .borders
                    .iter()
                    .map(|&b| p.vert_pos(b))
                    .collect();
                // Distances from v to all matrix verts of `parent`.
                let dvp: Vec<Dist> = (0..p.verts.len() as u32)
                    .map(|u| {
                        let mut bd = INF;
                        for (i, &fp) in cur_bpos.iter().enumerate() {
                            bd = bd.min(dadd(dv[i], p.mat(fp, u)));
                        }
                        bd
                    })
                    .collect();
                // Seed sibling subtrees that contain objects.
                for &c in p.children {
                    if c == cur || !occ.has[c as usize] {
                        continue;
                    }
                    let key = self
                        .node(c)
                        .borders
                        .iter()
                        .map(|&b| dvp[p.vert_pos(b) as usize])
                        .min()
                        .unwrap_or(INF);
                    if key != INF {
                        frontier.push((Reverse(key), c));
                    }
                }
                dv = p.border_pos.iter().map(|&bp| dvp[bp as usize]).collect();
                dv_of.insert(parent, dvp);
                cur = parent;
            }
        }

        // 3) Best-first descent.
        while let Some((Reverse(key), x)) = frontier.pop() {
            if key >= best.threshold() {
                break;
            }
            let node = self.node(x);
            let parent = self.parent_of(x).expect("frontier nodes are non-root");
            let p = self.node(parent);
            let dvp = &dv_of[&parent];
            // Distances from v to this node's borders via the parent vector.
            let dvb: Vec<Dist> = node
                .borders
                .iter()
                .map(|&b| dvp[p.vert_pos(b) as usize])
                .collect();
            if node.is_leaf() {
                for &o in &occ.leaf_objects[x as usize] {
                    let op = node.vert_pos(o);
                    let mut d = INF;
                    for (bi, &db) in dvb.iter().enumerate() {
                        d = d.min(dadd(db, node.lmat(bi, op)));
                    }
                    best.offer(d, o);
                }
            } else {
                let dvx: Vec<Dist> = (0..node.verts.len() as u32)
                    .map(|u| {
                        let mut bd = INF;
                        for (bi, &db) in dvb.iter().enumerate() {
                            bd = bd.min(dadd(db, node.mat(node.border_pos[bi], u)));
                        }
                        bd
                    })
                    .collect();
                for &c in node.children {
                    if !occ.has[c as usize] {
                        continue;
                    }
                    let key = self
                        .node(c)
                        .borders
                        .iter()
                        .map(|&b| dvx[node.vert_pos(b) as usize])
                        .min()
                        .unwrap_or(INF);
                    if key != INF && key < best.threshold() {
                        frontier.push((Reverse(key), c));
                    }
                }
                dv_of.insert(x, dvx);
            }
        }
        best.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GTreeParams;
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::Graph;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 3 + y) % 4);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y) % 3);
                }
            }
        }
        b.build()
    }

    /// Reference kNN by full Dijkstra + sort.
    fn knn_naive(g: &Graph, objects: &[NodeId], v: NodeId, k: usize) -> Vec<(NodeId, Dist)> {
        let d = dijkstra_all(g, v);
        let mut all: Vec<(NodeId, Dist)> = objects
            .iter()
            .map(|&o| (o, d[o as usize]))
            .filter(|&(_, d)| d != INF)
            .collect();
        all.sort_by_key(|&(n, d)| (d, n));
        all.truncate(k);
        all
    }

    fn assert_knn_matches(g: &Graph, t: &GTree, objects: &[NodeId], k: usize) {
        let occ = Occurrence::build(t, objects);
        for v in 0..g.num_nodes() as NodeId {
            let got = t.knn(g, &occ, v, k);
            let want = knn_naive(g, objects, v, k);
            // Distances must agree exactly; at equal distance the object
            // choice may differ, so compare the distance multisets.
            let gd: Vec<Dist> = got.iter().map(|&(_, d)| d).collect();
            let wd: Vec<Dist> = want.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, wd, "knn dist mismatch from {v}");
        }
    }

    #[test]
    fn knn_matches_naive_small() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let objects: Vec<NodeId> = vec![0, 7, 13, 21, 35];
        assert_knn_matches(&g, &t, &objects, 3);
    }

    #[test]
    fn knn_matches_naive_fanout4() {
        let g = grid(9, 7);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 8,
            },
        );
        let objects: Vec<NodeId> = (0..63).step_by(5).collect();
        assert_knn_matches(&g, &t, &objects, 4);
    }

    #[test]
    fn knn_k_exceeds_objects() {
        let g = grid(5, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let objects = vec![3, 17];
        let occ = Occurrence::build(&t, &objects);
        let got = t.knn(&g, &occ, 0, 10);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn knn_query_on_object() {
        let g = grid(5, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        let objects = vec![12, 3];
        let occ = Occurrence::build(&t, &objects);
        let got = t.knn(&g, &occ, 12, 1);
        assert_eq!(got, vec![(12, 0)]);
    }

    #[test]
    fn knn_zero_k() {
        let g = grid(4, 4);
        let t = GTree::build(&g);
        let occ = Occurrence::build(&t, &[1, 2]);
        assert!(t.knn(&g, &occ, 0, 0).is_empty());
    }

    #[test]
    fn knn_single_leaf_tree() {
        let g = grid(3, 3);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 64,
            },
        );
        let objects = vec![8, 4];
        let occ = Occurrence::build(&t, &objects);
        let got = t.knn(&g, &occ, 0, 2);
        let want = knn_naive(&g, &objects, 0, 2);
        assert_eq!(got, want);
    }

    #[test]
    fn knn_respects_disconnection() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 2,
            },
        );
        let objects = vec![2, 5];
        let occ = Occurrence::build(&t, &objects);
        // From node 0 only object 2 is reachable.
        let got = t.knn(&g, &occ, 0, 2);
        assert_eq!(got, vec![(2, 2)]);
    }

    #[test]
    fn occurrence_stats() {
        let g = grid(6, 6);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let occ = Occurrence::build(&t, &[0, 1, 2]);
        assert_eq!(occ.num_objects(), 3);
        assert!(occ.memory_bytes() > 0);
        assert!(occ.has[0], "root must be marked");
    }
}
