//! Shortest-path distance queries over the G-tree (the assembly method).
//!
//! Because matrices hold *global* distances after refinement
//! (see [`crate::tree`]), a query is a small dynamic program:
//! ascend from each endpoint's leaf to the LCA, combining border vectors
//! with matrix lookups, then join the two vectors through the LCA matrix.

use crate::tree::{dadd, restricted_dijkstra, GTree};
use roadnet::{Dist, Graph, NodeId, INF};

impl GTree {
    /// Lowest common ancestor of two arena nodes.
    pub(crate) fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        while self.depth_of(a) > self.depth_of(b) {
            a = self.parent_of(a).expect("deeper node has parent");
        }
        while self.depth_of(b) > self.depth_of(a) {
            b = self.parent_of(b).expect("deeper node has parent");
        }
        while a != b {
            a = self.parent_of(a).expect("distinct roots impossible");
            b = self.parent_of(b).expect("distinct roots impossible");
        }
        a
    }

    /// Global distances from `v` to the borders of the child of `stop`
    /// on the path from `leaf(v)` up to `stop`. Returns
    /// `(child_of_stop, dist_per_border)` aligned with that child's
    /// `borders` vector.
    ///
    /// # Panics
    /// If `stop` is `leaf(v)` itself (there is no child on the path).
    pub(crate) fn ascend(&self, v: NodeId, stop: u32) -> (u32, Vec<Dist>) {
        let mut cur = self.leaf(v);
        assert_ne!(cur, stop, "ascend requires v's leaf below `stop`");
        let leaf = self.node(cur);
        let vp = leaf.vert_pos(v);
        let mut dv: Vec<Dist> = (0..leaf.borders.len())
            .map(|bi| leaf.lmat(bi, vp))
            .collect();
        loop {
            let parent = self.parent_of(cur).expect("stop is an ancestor");
            if parent == stop {
                return (cur, dv);
            }
            let p = self.node(parent);
            let cur_borders = self.node(cur).borders;
            let bpos: Vec<u32> = cur_borders.iter().map(|&b| p.vert_pos(b)).collect();
            let ndv: Vec<Dist> = p
                .border_pos
                .iter()
                .map(|&tp| {
                    let mut best = INF;
                    for (i, &fp) in bpos.iter().enumerate() {
                        best = best.min(dadd(dv[i], p.mat(fp, tp)));
                    }
                    best
                })
                .collect();
            dv = ndv;
            cur = parent;
        }
    }

    /// Exact network distance between any two vertices; `None` when
    /// disconnected. This is the "GTree" shortest-path backend of Table I.
    pub fn dist(&self, g: &Graph, s: NodeId, t: NodeId) -> Option<Dist> {
        if s == t {
            return Some(0);
        }
        let ls = self.leaf(s);
        let lt = self.leaf(t);
        if ls == lt {
            let leaf = self.node(ls);
            let (ps, pt) = (leaf.vert_pos(s), leaf.vert_pos(t));
            // Paths inside the leaf...
            let mut best = restricted_dijkstra(g, s, leaf.verts)[pt as usize];
            // ...or out through a border and back (matrix entries are global).
            for bi in 0..leaf.borders.len() {
                best = best.min(dadd(leaf.lmat(bi, ps), leaf.lmat(bi, pt)));
            }
            return (best != INF).then_some(best);
        }
        let lca = self.lca(ls, lt);
        let (cs, dvs) = self.ascend(s, lca);
        let (ct, dvt) = self.ascend(t, lca);
        let a = self.node(lca);
        let bs: Vec<u32> = self
            .node(cs)
            .borders
            .iter()
            .map(|&b| a.vert_pos(b))
            .collect();
        let bt: Vec<u32> = self
            .node(ct)
            .borders
            .iter()
            .map(|&b| a.vert_pos(b))
            .collect();
        let mut best = INF;
        for (i, &p1) in bs.iter().enumerate() {
            if dvs[i] == INF {
                continue;
            }
            for (j, &p2) in bt.iter().enumerate() {
                best = best.min(dadd(dadd(dvs[i], a.mat(p1, p2)), dvt[j]));
            }
        }
        (best != INF).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{GTree, GTreeParams};
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::{Graph, GraphBuilder, NodeId, INF};

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 7 + y * 3) % 5);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y * 2) % 4);
                }
            }
        }
        b.build()
    }

    fn assert_all_pairs(g: &Graph, t: &GTree) {
        for s in 0..g.num_nodes() as NodeId {
            let truth = dijkstra_all(g, s);
            for v in 0..g.num_nodes() as NodeId {
                let expect = (truth[v as usize] != INF).then_some(truth[v as usize]);
                assert_eq!(t.dist(g, s, v), expect, "pair {s}->{v}");
            }
        }
    }

    #[test]
    fn exact_small_leaves() {
        let g = grid(6, 5);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
        );
        assert_all_pairs(&g, &t);
    }

    #[test]
    fn exact_fanout_four() {
        let g = grid(8, 7);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        assert_all_pairs(&g, &t);
    }

    #[test]
    fn exact_single_leaf() {
        let g = grid(3, 3);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 100,
            },
        );
        assert_all_pairs(&g, &t);
    }

    #[test]
    fn disconnected_graph_returns_none_across() {
        // Two 2x2 grids with no connection.
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_node((i % 4) as f64, (i / 4) as f64 * 10.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(4, 5, 1);
        b.add_edge(5, 6, 1);
        b.add_edge(6, 7, 1);
        let g = b.build();
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 3,
            },
        );
        assert_all_pairs(&g, &t);
        assert_eq!(t.dist(&g, 0, 7), None);
    }

    #[test]
    fn deep_tree_stays_exact() {
        let g = grid(10, 10);
        let t = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 3,
            },
        );
        assert!(t.height() >= 5);
        // Spot-check a sample of pairs (full 100x100 is covered above on
        // smaller grids).
        let truth0 = dijkstra_all(&g, 0);
        for v in (0..100).step_by(7) {
            assert_eq!(t.dist(&g, 0, v), Some(truth0[v as usize]));
        }
    }
}
