//! Property tests: the G-tree is exact for distances and kNN, and its
//! persistence round-trips, on arbitrary graphs and parameters.

use gtree::{GTree, GTreeParams, Occurrence};
use proptest::prelude::*;
use roadnet::dijkstra::dijkstra_all;
use roadnet::{Graph, GraphBuilder, INF};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..28, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node((i % 6) as f64, (i / 6) as f64);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, 1 + (next() % 20) as u32);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1 + (next() % 20) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distances_exact(
        g in arb_graph(),
        fanout_pow in 1u32..3,
        leaf_cap in 2usize..8,
    ) {
        let t = GTree::build_with_params(&g, GTreeParams {
            fanout: 1 << fanout_pow,
            leaf_cap,
        });
        for s in 0..g.num_nodes() as u32 {
            let truth = dijkstra_all(&g, s);
            for v in 0..g.num_nodes() as u32 {
                let want = (truth[v as usize] != INF).then_some(truth[v as usize]);
                prop_assert_eq!(t.dist(&g, s, v), want, "pair {}->{}", s, v);
            }
        }
    }

    #[test]
    fn knn_distances_exact(g in arb_graph(), mask in any::<u64>(), k in 1usize..5) {
        let n = g.num_nodes();
        let objects: Vec<u32> = (0..n as u32).filter(|v| (mask >> (v % 60)) & 1 == 1).collect();
        prop_assume!(!objects.is_empty());
        let t = GTree::build_with_params(&g, GTreeParams { fanout: 2, leaf_cap: 4 });
        let occ = Occurrence::build(&t, &objects);
        for v in 0..n as u32 {
            let d = dijkstra_all(&g, v);
            let mut want: Vec<u64> = objects.iter().map(|&o| d[o as usize]).filter(|&x| x != INF).collect();
            want.sort_unstable();
            want.truncate(k);
            let got: Vec<u64> = t.knn(&g, &occ, v, k).into_iter().map(|(_, dd)| dd).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn persistence_roundtrip(g in arb_graph()) {
        let t = GTree::build_with_params(&g, GTreeParams { fanout: 2, leaf_cap: 4 });
        let t2 = GTree::from_bytes(&t.to_bytes()).unwrap();
        for s in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                prop_assert_eq!(t2.dist(&g, s, v), t.dist(&g, s, v));
            }
        }
    }
}
