//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the `criterion` API subset its benches use: `Criterion::benchmark_group`,
//! group configuration (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` with a [`Bencher::iter`] closure, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — warm up for the configured
//! duration, run timed samples until the measurement budget or sample count
//! is reached, and print mean / min / max per benchmark. No outlier
//! analysis, HTML reports, or regression tracking; the figure binaries in
//! `crates/bench/src/bin` remain the canonical experiment harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }

    /// Ungrouped benchmark (upstream convenience; used rarely).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`: warm up, then collect samples until the measurement budget
    /// or the configured sample count is exhausted (at least one sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        self.samples.clear();
        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if self.samples.len() >= self.sample_size || measure_start.elapsed() >= self.measurement
            {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples — bencher.iter never called)");
            return;
        }
        let n = self.samples.len();
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{label:<40} mean {:>10} (min {}, max {}, n={n})",
            fmt(mean),
            fmt(min),
            fmt(max),
        );
    }
}

fn fmt(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 3, "closure ran {runs} times");
    }

    #[test]
    fn fmt_scales() {
        assert!(fmt(2e-9).ends_with("ns"));
        assert!(fmt(2e-5).ends_with("us"));
        assert!(fmt(2e-2).ends_with("ms"));
        assert!(fmt(2.0).ends_with('s'));
    }
}
