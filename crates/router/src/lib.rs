//! `fannr-router`: the thin routing tier in front of shard servers.
//!
//! A deployment partitions the road network into `N` shards
//! (`fannr partition` → `FANNSM2\0` shard map), runs one `serve --shard`
//! process per shard against the shared `graph.v2`, and puts this router
//! in front. The router speaks the *same* line protocol as a single
//! server, so clients cannot tell the difference — except that a degraded
//! shard degrades only its region.
//!
//! Per query the router:
//!
//! 1. computes `b_Q` (the MBR of the query points) and splits the
//!    candidate set `P` by shard ownership;
//! 2. prices every shard with the paper's pruning bound lifted to whole
//!    regions: `bound(S) = flex_k(φ,|Q|) · scale · mdist(b_Q, region(S))`
//!    for SUM, `scale · mdist` for MAX (see `roadnet::ShardMap` and
//!    DESIGN.md §12) — a shard whose bound exceeds the best merged
//!    aggregate cannot hold the optimum;
//! 3. contacts the lowest-bound shard first over a pooled persistent
//!    connection, then fans out concurrently to every other shard whose
//!    bound does not already exceed that first answer, each with the
//!    remaining request deadline;
//! 4. merges per-shard answers by minimum `(dist, p_star)` — the same tie
//!    contract the in-process strategies use — and propagates
//!    `shed`/`cancelled`/`upstream` only when the failing shard's bound
//!    means it could still have improved the merged answer.
//!
//! Weight updates are routed to owning shards only (the owner of an edge
//! is the owner of its smaller endpoint); acks merge as `max(epoch)` /
//! `sum(applied)`. Connection failures surface as a typed `upstream`
//! error naming the shard, after one reconnect retry.
//!
//! `update_stream` segments are broadcast to *every* shard over dedicated
//! per-client upstream connections (shard stream state is per-connection,
//! so pooled connections cannot carry sequenced segments). Each shard
//! filters to the edges it owns and advances its own per-connection
//! sequence, so the router keeps one upstream counter per shard and merges
//! acks as `max(epoch)` / `sum(applied)` under the client-facing sequence
//! number. A broken upstream is re-dialed with a fresh sequence (updates
//! carry absolute weights, so a re-send after an ack lost in flight is
//! idempotent on graph state).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fann_core::{flex_k, FannQuery};
use fannr_serve::{
    Body, Client, HealthInfo, MetricsInfo, Op, QuerySpec, Request, Response, StreamErrorKind,
    MAX_STREAM_SEGMENT,
};
use roadnet::{Dist, Graph, NodeId, ShardMap};

/// How the router behaves.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (port 0 picks a free port).
    pub addr: String,
    /// One upstream address per shard, indexed by shard id. Must match
    /// the shard map's `num_shards`.
    pub shard_addrs: Vec<String>,
    /// The shard map every upstream was launched with.
    pub map: Arc<ShardMap>,
    /// The shared graph (for query-point coordinates and validation).
    pub graph: Graph,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Ceiling on how long the router waits for one upstream response
    /// beyond the request deadline (protects against a hung shard).
    pub upstream_timeout: Duration,
    /// Propagate a wire `shutdown` to every shard before draining, so one
    /// shutdown drains the whole deployment.
    pub propagate_shutdown: bool,
}

impl RouterConfig {
    /// A config with the standard knobs (10s upstream timeout, shutdown
    /// propagation on); the caller provides the topology.
    pub fn new(
        addr: impl Into<String>,
        shard_addrs: Vec<String>,
        map: Arc<ShardMap>,
        graph: Graph,
    ) -> RouterConfig {
        RouterConfig {
            addr: addr.into(),
            shard_addrs,
            map,
            graph,
            default_deadline: None,
            upstream_timeout: Duration::from_secs(10),
            propagate_shutdown: true,
        }
    }
}

/// Final report returned by [`Router::run`].
#[derive(Debug, Clone)]
pub struct RouterSummary {
    pub uptime: Duration,
    pub connections: u64,
    pub metrics: MetricsInfo,
}

/// Clonable remote control mirroring the serve layer's handle.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A pool of persistent connections to one shard. Checked-in connections
/// are reused; a transport failure burns the connection and the caller
/// retries once on a fresh one.
struct Pool {
    shard: u32,
    addr: String,
    idle: Mutex<Vec<Client>>,
}

/// Errors that mean "the connection is dead, a fresh one may work" — the
/// only errors worth the one reconnect retry. A timeout is not one of
/// them: retrying a slow shard doubles the load exactly when it hurts.
fn is_connection_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::AddrNotAvailable
    )
}

impl Pool {
    fn new(shard: u32, addr: String) -> Pool {
        Pool {
            shard,
            addr,
            idle: Mutex::new(Vec::new()),
        }
    }

    fn checkout(&self) -> io::Result<Client> {
        if let Some(c) = self.idle.lock().unwrap().pop() {
            return Ok(c);
        }
        Client::connect(&self.addr)
    }

    fn checkin(&self, c: Client) {
        self.idle.lock().unwrap().push(c);
    }

    /// One request/response over a pooled connection, with one reconnect
    /// retry on connection failure. On success the connection goes back
    /// to the pool; on any failure it is dropped.
    fn call(&self, req: &Request, timeout: Duration) -> Result<Response, io::Error> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..2 {
            let conn = if attempt == 0 {
                self.checkout()
            } else {
                // Retry path: never reuse pooled state after a failure.
                Client::connect(&self.addr)
            };
            let mut c = match conn {
                Ok(c) => c,
                Err(e) => {
                    let retry = attempt == 0 && is_connection_error(&e);
                    last = Some(e);
                    if retry {
                        continue;
                    }
                    break;
                }
            };
            let _ = c.set_read_timeout(Some(timeout));
            match c.call(req) {
                Ok(resp) => {
                    self.checkin(c);
                    return Ok(resp);
                }
                Err(e) => {
                    let retry = attempt == 0 && is_connection_error(&e);
                    last = Some(e);
                    if !retry {
                        break;
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("upstream call failed")))
    }
}

/// Counters shared across connection threads.
#[derive(Default)]
struct Shared {
    metrics: Mutex<MetricsInfo>,
    shards_pruned: AtomicU64,
    shards_contacted: AtomicU64,
    upstream_errors: AtomicU64,
    inflight: AtomicU64,
    connections: AtomicU64,
}

/// A bound router, not yet serving. Call [`Router::run`] to serve.
pub struct Router {
    listener: TcpListener,
    config: RouterConfig,
    stop: Arc<AtomicBool>,
}

/// What one shard contributed to a query.
enum ShardOutcome {
    Answer {
        p_star: NodeId,
        dist: Dist,
        subset: Vec<NodeId>,
        strategy: String,
    },
    Empty,
    Cancelled,
    Shed,
    Error(String),
    Transport(String),
}

impl Router {
    /// Bind the listening socket. Verifies the shard map and the address
    /// list agree on the shard count.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        if config.shard_addrs.len() != config.map.num_shards() as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard map has {} shards but {} addresses were given",
                    config.map.num_shards(),
                    config.shard_addrs.len()
                ),
            ));
        }
        if config.map.num_nodes() as usize != config.graph.num_nodes() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shard map and graph disagree on the node count",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Router {
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn num_shards(&self) -> u32 {
        self.config.map.num_shards()
    }

    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Serve until shutdown; every connection thread is joined before this
    /// returns.
    pub fn run(self) -> io::Result<RouterSummary> {
        let started = Instant::now();
        let shared = Shared::default();
        let pools: Vec<Pool> = self
            .config
            .shard_addrs
            .iter()
            .enumerate()
            .map(|(s, a)| Pool::new(s as u32, a.clone()))
            .collect();
        let stop = &self.stop;
        let config = &self.config;
        self.listener.set_nonblocking(true)?;

        std::thread::scope(|scope| -> io::Result<()> {
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        let shared = &shared;
                        let pools = &pools;
                        let stop = Arc::clone(stop);
                        scope.spawn(move || {
                            connection_loop(stream, config, pools, shared, &stop, started);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            stop.store(true, Ordering::SeqCst);
            Ok(())
        })?;

        let mut metrics = shared.metrics.lock().unwrap().clone();
        metrics.shards_pruned = shared.shards_pruned.load(Ordering::Relaxed);
        metrics.shards_contacted = shared.shards_contacted.load(Ordering::Relaxed);
        metrics.upstream_errors = shared.upstream_errors.load(Ordering::Relaxed);
        Ok(RouterSummary {
            uptime: started.elapsed(),
            connections: shared.connections.load(Ordering::Relaxed),
            metrics,
        })
    }
}

/// Per-connection loop: requests are handled inline (routing work is
/// network-bound fan-out, not CPU), one response line per request line.
fn connection_loop(
    stream: TcpStream,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
    stop: &AtomicBool,
    started: Instant,
) {
    stream.set_nodelay(true).ok();
    if stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut streams = StreamState::new(pools.len());
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let resp =
                        handle_line(trimmed, config, pools, shared, stop, started, &mut streams);
                    let mut out = resp.to_json();
                    out.push('\n');
                    if writer.write_all(out.as_bytes()).is_err() {
                        break;
                    }
                    let _ = writer.flush();
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_line(
    trimmed: &str,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
    stop: &AtomicBool,
    started: Instant,
    streams: &mut StreamState,
) -> Response {
    let req = match Request::parse(trimmed) {
        Ok(r) => r,
        Err(error) => {
            shared.metrics.lock().unwrap().errors += 1;
            return Response {
                id: None,
                body: Body::Error { error },
            };
        }
    };
    match req.op {
        Op::Query(spec) => {
            shared.inflight.fetch_add(1, Ordering::Relaxed);
            let resp = handle_query(req.id, spec, config, pools, shared);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            resp
        }
        Op::Update(updates) => handle_update(req.id, updates, config, pools, shared),
        Op::UpdateStream { seq, updates } => {
            handle_update_stream(req.id, seq, updates, config, pools, shared, streams)
        }
        Op::Health => handle_health(req.id, config, pools, shared, stop, started),
        Op::Metrics => handle_metrics(req.id, config, pools, shared),
        Op::Shutdown => {
            if config.propagate_shutdown {
                for pool in pools {
                    let _ = pool.call(
                        &Request {
                            id: None,
                            op: Op::Shutdown,
                        },
                        config.upstream_timeout,
                    );
                }
            }
            stop.store(true, Ordering::SeqCst);
            Response {
                id: req.id,
                body: Body::Bye,
            }
        }
    }
}

/// The per-shard query plan: candidate slice + pruning bound.
struct ShardPlan {
    shard: u32,
    p: Vec<NodeId>,
    bound: Dist,
}

fn handle_query(
    id: Option<String>,
    spec: QuerySpec,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
) -> Response {
    let admitted = Instant::now();
    shared.metrics.lock().unwrap().requests += 1;
    // Validate exactly like a single-process engine would, so invalid
    // queries get the same typed error without touching any shard.
    if let Err(e) = FannQuery::checked(&spec.p, &spec.q, spec.phi, spec.agg, &config.graph) {
        shared.metrics.lock().unwrap().errors += 1;
        return Response {
            id,
            body: Body::Error {
                error: e.to_string(),
            },
        };
    }
    let deadline = spec
        .deadline_ms
        .map(Duration::from_millis)
        .or(config.default_deadline);
    let expired = |now: Instant| deadline.is_some_and(|d| now.duration_since(admitted) >= d);
    if deadline.is_some_and(|d| d.is_zero()) {
        shared.metrics.lock().unwrap().cancelled += 1;
        return Response {
            id,
            body: Body::Cancelled,
        };
    }

    // b_Q and the per-shard φM·mdist bound. |Q| for flex_k is the deduped
    // count — the same canonicalization the engine applies.
    let map = &config.map;
    let mut rect = [
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    ];
    for &q in &spec.q {
        let c = config.graph.coord(q);
        rect[0] = rect[0].min(c.x);
        rect[1] = rect[1].min(c.y);
        rect[2] = rect[2].max(c.x);
        rect[3] = rect[3].max(c.y);
    }
    let mut q_dedup = spec.q.clone();
    q_dedup.sort_unstable();
    q_dedup.dedup();
    let k = flex_k(spec.phi, q_dedup.len()) as u64;

    let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); map.num_shards() as usize];
    for &p in &spec.p {
        parts[map.owner(p) as usize].push(p);
    }
    let mut plans: Vec<ShardPlan> = parts
        .into_iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(s, p)| {
            let per_term = map.mindist_lower_bound(s as u32, rect);
            let bound = match spec.agg {
                fann_core::Aggregate::Max => per_term,
                fann_core::Aggregate::Sum => per_term.saturating_mul(k),
            };
            ShardPlan {
                shard: s as u32,
                p,
                bound,
            }
        })
        .collect();
    plans.sort_by_key(|pl| (pl.bound, pl.shard));

    let call_shard = |plan: &ShardPlan| -> ShardOutcome {
        let now = Instant::now();
        if expired(now) {
            return ShardOutcome::Cancelled;
        }
        let remaining = deadline.map(|d| d.saturating_sub(now.duration_since(admitted)));
        let timeout = remaining
            .map(|r| r + config.upstream_timeout)
            .unwrap_or(config.upstream_timeout);
        let req = Request {
            id: None,
            op: Op::Query(QuerySpec {
                p: plan.p.clone(),
                q: spec.q.clone(),
                phi: spec.phi,
                agg: spec.agg,
                deadline_ms: remaining.map(|r| r.as_millis() as u64),
            }),
        };
        shared.shards_contacted.fetch_add(1, Ordering::Relaxed);
        match pools[plan.shard as usize].call(&req, timeout) {
            Ok(resp) => match resp.body {
                Body::Ok {
                    p_star,
                    dist,
                    subset,
                    strategy,
                    ..
                } => ShardOutcome::Answer {
                    p_star,
                    dist,
                    subset,
                    strategy,
                },
                Body::Empty => ShardOutcome::Empty,
                Body::Cancelled => ShardOutcome::Cancelled,
                Body::Shed => ShardOutcome::Shed,
                Body::Error { error } => ShardOutcome::Error(error),
                Body::Upstream { error, .. } => ShardOutcome::Transport(error),
                other => ShardOutcome::Transport(format!(
                    "unexpected '{}' response to a query",
                    Response {
                        id: None,
                        body: other
                    }
                    .status()
                )),
            },
            Err(e) => ShardOutcome::Transport(e.to_string()),
        }
    };

    // Phase 1: the lowest-bound shard (b_Q usually overlaps its region,
    // bound 0) answers first and seeds the merge front.
    let mut outcomes: Vec<(u32, Dist, ShardOutcome)> = Vec::with_capacity(plans.len());
    let mut best: Option<(Dist, NodeId)> = None;
    if let Some(first) = plans.first() {
        let out = call_shard(first);
        if let ShardOutcome::Answer { p_star, dist, .. } = &out {
            best = Some((*dist, *p_star));
        }
        outcomes.push((first.shard, first.bound, out));
    }

    // Phase 2: prune what the first answer already dominates, fan out to
    // the rest concurrently, each with the remaining deadline.
    let rest = if plans.is_empty() {
        &[][..]
    } else {
        &plans[1..]
    };
    let mut live: Vec<&ShardPlan> = Vec::with_capacity(rest.len());
    for plan in rest {
        // A shard is prunable when its bound says it cannot *beat* the
        // best answer: ties keep the smaller (dist, p_star), and the bound
        // is a floor on dist alone, so only a strictly greater bound is
        // safe to skip.
        if best.is_some_and(|(d, _)| plan.bound > d) {
            shared.shards_pruned.fetch_add(1, Ordering::Relaxed);
        } else {
            live.push(plan);
        }
    }
    let wave: Vec<(u32, Dist, ShardOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = live
            .iter()
            .map(|plan| {
                let call_shard = &call_shard;
                scope.spawn(move || (plan.shard, plan.bound, call_shard(plan)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    outcomes.extend(wave);

    // Merge by minimum (dist, p_star) — the strategies' own tie contract.
    let mut winner: Option<(Dist, NodeId, Vec<NodeId>, String)> = None;
    for (_, _, out) in &outcomes {
        if let ShardOutcome::Answer {
            p_star,
            dist,
            subset,
            strategy,
        } = out
        {
            let better = match &winner {
                None => true,
                Some((bd, bp, _, _)) => (*dist, *p_star) < (*bd, *bp),
            };
            if better {
                winner = Some((*dist, *p_star, subset.clone(), strategy.clone()));
            }
        }
    }
    let best_dist = winner.as_ref().map(|(d, _, _, _)| *d);

    // Degradation: a failed shard only matters when its bound left it able
    // to improve (or tie) the merged answer.
    let material = |bound: Dist| best_dist.is_none_or(|d| bound <= d);
    let mut failure: Option<Body> = None;
    let rank = |b: &Body| match b {
        Body::Upstream { .. } => 0u8,
        Body::Cancelled => 1,
        Body::Shed => 2,
        Body::Error { .. } => 3,
        _ => 4,
    };
    for (shard, bound, out) in &outcomes {
        let body = match out {
            ShardOutcome::Transport(error) => Body::Upstream {
                shard: *shard,
                error: error.clone(),
            },
            ShardOutcome::Cancelled => Body::Cancelled,
            ShardOutcome::Shed => Body::Shed,
            ShardOutcome::Error(error) => Body::Error {
                error: error.clone(),
            },
            ShardOutcome::Answer { .. } | ShardOutcome::Empty => continue,
        };
        if material(*bound) {
            match &failure {
                Some(f) if rank(f) <= rank(&body) => {}
                _ => failure = Some(body),
            }
        }
    }

    let elapsed = admitted.elapsed();
    let mut m = shared.metrics.lock().unwrap();
    if let Some(body) = failure {
        match &body {
            Body::Upstream { .. } => {
                shared.upstream_errors.fetch_add(1, Ordering::Relaxed);
                m.errors += 1;
            }
            Body::Cancelled => m.cancelled += 1,
            Body::Shed => m.shed += 1,
            _ => m.errors += 1,
        }
        return Response { id, body };
    }
    if expired(Instant::now()) {
        m.cancelled += 1;
        return Response {
            id,
            body: Body::Cancelled,
        };
    }
    m.latency.record(elapsed);
    match winner {
        Some((dist, p_star, subset, strategy)) => {
            m.ok += 1;
            Response {
                id,
                body: Body::Ok {
                    p_star,
                    dist,
                    subset,
                    strategy,
                    micros: elapsed.as_micros() as u64,
                },
            }
        }
        None => {
            m.empty += 1;
            Response {
                id,
                body: Body::Empty,
            }
        }
    }
}

fn handle_update(
    id: Option<String>,
    updates: Vec<roadnet::WeightUpdate>,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
) -> Response {
    let map = &config.map;
    let n = map.num_nodes();
    let mut batches: Vec<Vec<roadnet::WeightUpdate>> = vec![Vec::new(); map.num_shards() as usize];
    for e in updates {
        // Edges naming unknown nodes go to shard 0, whose engine rejects
        // them with the same typed error a single server would produce.
        let s = if e.u < n && e.v < n {
            map.edge_owner(e.u, e.v)
        } else {
            0
        };
        batches[s as usize].push(e);
    }
    let mut epoch = 0u64;
    let mut applied = 0u64;
    for (s, batch) in batches.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let req = Request {
            id: None,
            op: Op::Update(batch),
        };
        match pools[s].call(&req, config.upstream_timeout) {
            Ok(resp) => match resp.body {
                Body::Updated {
                    epoch: e,
                    applied: a,
                } => {
                    epoch = epoch.max(e);
                    applied += a;
                }
                Body::Error { error } => {
                    shared.metrics.lock().unwrap().errors += 1;
                    return Response {
                        id,
                        body: Body::Error { error },
                    };
                }
                other => {
                    return upstream_failure(
                        id,
                        s as u32,
                        format!(
                            "unexpected '{}' response to an update",
                            Response {
                                id: None,
                                body: other
                            }
                            .status()
                        ),
                        shared,
                    );
                }
            },
            Err(e) => return upstream_failure(id, s as u32, e.to_string(), shared),
        }
    }
    shared.metrics.lock().unwrap().updates += 1;
    Response {
        id,
        body: Body::Updated { epoch, applied },
    }
}

/// Per-client update-stream state: the client-facing cumulative sequence,
/// one dedicated upstream connection per shard (shard stream state lives
/// on the connection, so these are never pooled), and the next sequence
/// number each of those connections expects.
struct StreamState {
    /// Next client-facing sequence number this connection will accept.
    next: u64,
    /// Epoch of the last merged ack, replayed on duplicate re-acks.
    epoch: u64,
    conns: Vec<Option<Client>>,
    shard_next: Vec<u64>,
}

impl StreamState {
    fn new(shards: usize) -> StreamState {
        StreamState {
            next: 1,
            epoch: 0,
            conns: (0..shards).map(|_| None).collect(),
            shard_next: vec![1; shards],
        }
    }
}

/// One upstream stream call on shard `s`'s dedicated connection, dialing
/// (or re-dialing, with the sequence rewound to 1) as needed. A re-send
/// after a lost ack re-applies absolute weights, which is idempotent on
/// graph state.
fn stream_shard_call(
    s: usize,
    updates: &[roadnet::WeightUpdate],
    config: &RouterConfig,
    pools: &[Pool],
    streams: &mut StreamState,
) -> Result<Response, io::Error> {
    let mut last: Option<io::Error> = None;
    for attempt in 0..2 {
        if streams.conns[s].is_none() {
            match Client::connect(&pools[s].addr) {
                Ok(c) => {
                    streams.conns[s] = Some(c);
                    streams.shard_next[s] = 1;
                }
                Err(e) => {
                    let retry = attempt == 0 && is_connection_error(&e);
                    last = Some(e);
                    if retry {
                        continue;
                    }
                    break;
                }
            }
        }
        let conn = streams.conns[s].as_mut().expect("dialed above");
        let _ = conn.set_read_timeout(Some(config.upstream_timeout));
        let req = Request {
            id: None,
            op: Op::UpdateStream {
                seq: streams.shard_next[s],
                updates: updates.to_vec(),
            },
        };
        match conn.call(&req) {
            Ok(resp) => return Ok(resp),
            Err(e) => {
                streams.conns[s] = None;
                let retry = attempt == 0 && is_connection_error(&e);
                last = Some(e);
                if !retry {
                    break;
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("upstream stream call failed")))
}

#[allow(clippy::too_many_arguments)]
fn handle_update_stream(
    id: Option<String>,
    seq: u64,
    updates: Vec<roadnet::WeightUpdate>,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
    streams: &mut StreamState,
) -> Response {
    if updates.len() > MAX_STREAM_SEGMENT {
        shared.metrics.lock().unwrap().errors += 1;
        return Response {
            id,
            body: Body::StreamError {
                kind: StreamErrorKind::Overflow,
                expected: MAX_STREAM_SEGMENT as u64,
                got: updates.len() as u64,
            },
        };
    }
    if seq < streams.next {
        // Already applied deployment-wide: cumulative re-ack.
        return Response {
            id,
            body: Body::StreamAck {
                seq: streams.next - 1,
                epoch: streams.epoch,
                applied: 0,
            },
        };
    }
    if seq > streams.next {
        shared.metrics.lock().unwrap().errors += 1;
        return Response {
            id,
            body: Body::StreamError {
                kind: StreamErrorKind::Gap,
                expected: streams.next,
                got: seq,
            },
        };
    }
    // Broadcast to every shard: each applies the edges it owns and
    // advances its own per-connection sequence, so acks stay cumulative
    // across the deployment. The client sequence advances only when every
    // shard has acked this segment.
    let mut epoch = 0u64;
    let mut applied = 0u64;
    for s in 0..pools.len() {
        match stream_shard_call(s, &updates, config, pools, streams) {
            Ok(resp) => match resp.body {
                Body::StreamAck {
                    epoch: e,
                    applied: a,
                    ..
                } => {
                    streams.shard_next[s] += 1;
                    epoch = epoch.max(e);
                    applied += a;
                }
                Body::Error { error } => {
                    // The shard rejected the batch without advancing its
                    // sequence; neither do we, so the client may fix and
                    // resend the same seq.
                    shared.metrics.lock().unwrap().errors += 1;
                    return Response {
                        id,
                        body: Body::Error { error },
                    };
                }
                other => {
                    streams.conns[s] = None;
                    return upstream_failure(
                        id,
                        s as u32,
                        format!(
                            "unexpected '{}' response to an update_stream segment",
                            Response {
                                id: None,
                                body: other
                            }
                            .status()
                        ),
                        shared,
                    );
                }
            },
            Err(e) => return upstream_failure(id, s as u32, e.to_string(), shared),
        }
    }
    streams.next = seq + 1;
    streams.epoch = epoch;
    let mut m = shared.metrics.lock().unwrap();
    m.updates += 1;
    m.stream_segments += 1;
    m.stream_updates += applied;
    drop(m);
    Response {
        id,
        body: Body::StreamAck {
            seq,
            epoch,
            applied,
        },
    }
}

fn upstream_failure(id: Option<String>, shard: u32, error: String, shared: &Shared) -> Response {
    shared.upstream_errors.fetch_add(1, Ordering::Relaxed);
    shared.metrics.lock().unwrap().errors += 1;
    Response {
        id,
        body: Body::Upstream { shard, error },
    }
}

/// Router health: its own gauges plus the deployment view — the maximum
/// shard epoch and whether any shard is label-stale. A dead shard fails
/// health with a typed `upstream` error (health is how you notice).
fn handle_health(
    id: Option<String>,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
    stop: &AtomicBool,
    started: Instant,
) -> Response {
    let mut epoch = 0u64;
    let mut stale = false;
    let mut labels_repaired = 0u64;
    let mut labels_total = 0u64;
    let mut repair_scoped_leaves = 0u64;
    let mut gtree_entries_repaired = 0u64;
    let mut gtree_entries_total = 0u64;
    let mut last_repair_ms = 0u64;
    for pool in pools {
        let req = Request {
            id: None,
            op: Op::Health,
        };
        match pool.call(&req, config.upstream_timeout) {
            Ok(Response {
                body: Body::Health(h),
                ..
            }) => {
                epoch = epoch.max(h.epoch);
                stale |= h.stale;
                labels_repaired += h.labels_repaired;
                labels_total += h.labels_total;
                repair_scoped_leaves += h.repair_scoped_leaves;
                gtree_entries_repaired += h.gtree_entries_repaired;
                gtree_entries_total += h.gtree_entries_total;
                last_repair_ms = last_repair_ms.max(h.last_repair_ms);
            }
            Ok(_) => {
                return upstream_failure(
                    id,
                    pool.shard,
                    "unexpected response to a health probe".to_string(),
                    shared,
                )
            }
            Err(e) => return upstream_failure(id, pool.shard, e.to_string(), shared),
        }
    }
    Response {
        id,
        body: Body::Health(HealthInfo {
            uptime_ms: started.elapsed().as_millis() as u64,
            inflight: shared.inflight.load(Ordering::Relaxed),
            queued: 0,
            workers: pools.len() as u64,
            draining: stop.load(Ordering::SeqCst),
            epoch,
            stale,
            shard: None,
            owned_nodes: 0,
            region: None,
            labels_repaired,
            labels_total,
            repair_scoped_leaves,
            gtree_entries_repaired,
            gtree_entries_total,
            last_repair_ms,
        }),
    }
}

/// Router metrics: client-visible outcome counters and latency are the
/// router's own; search/cache work aggregates across shards (that is
/// where the compute happened); `shards_pruned`/`shards_contacted` count
/// routing decisions.
fn handle_metrics(
    id: Option<String>,
    config: &RouterConfig,
    pools: &[Pool],
    shared: &Shared,
) -> Response {
    let mut m = shared.metrics.lock().unwrap().clone();
    m.shards_pruned = shared.shards_pruned.load(Ordering::Relaxed);
    m.shards_contacted = shared.shards_contacted.load(Ordering::Relaxed);
    m.upstream_errors = shared.upstream_errors.load(Ordering::Relaxed);
    for pool in pools {
        let req = Request {
            id: None,
            op: Op::Metrics,
        };
        match pool.call(&req, config.upstream_timeout) {
            Ok(Response {
                body: Body::Metrics(sm),
                ..
            }) => {
                m.epoch = m.epoch.max(sm.epoch);
                m.cache_hits += sm.cache_hits;
                m.cache_misses += sm.cache_misses;
                m.cache_insertions += sm.cache_insertions;
                m.cache_invalidated += sm.cache_invalidated;
                m.cache_retained += sm.cache_retained;
                m.cache_evicted += sm.cache_evicted;
                m.cache_rebuilds += sm.cache_rebuilds;
                m.batches += sm.batches;
                m.batch_queries += sm.batch_queries;
                // Repair footprint sums across shards (each repairs its own
                // indexes); wall time takes the slowest shard. Stream
                // counters stay the router's own — each client segment fans
                // out to every shard, so summing would multiply-count.
                m.labels_repaired += sm.labels_repaired;
                m.labels_total += sm.labels_total;
                m.repair_scoped_leaves += sm.repair_scoped_leaves;
                m.last_repair_ms = m.last_repair_ms.max(sm.last_repair_ms);
                m.search.add(&sm.search);
            }
            Ok(_) => {
                return upstream_failure(
                    id,
                    pool.shard,
                    "unexpected response to a metrics probe".to_string(),
                    shared,
                )
            }
            Err(e) => return upstream_failure(id, pool.shard, e.to_string(), shared),
        }
    }
    Response {
        id,
        body: Body::Metrics(Box::new(m)),
    }
}
