//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the `proptest` API subset its test suites use: the [`Strategy`] trait
//! with [`Strategy::prop_map`], range and tuple strategies, [`any`],
//! [`collection::vec`], the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert*` / [`prop_assume!`].
//!
//! Differences from upstream: cases are generated from a per-test
//! deterministic seed (derived from the test name) and there is **no
//! shrinking** — a failing case panics with the standard assertion message.
//! That trades minimal counterexamples for zero dependencies; the arbitrary
//! generators in this repo draw small instances anyway, so raw failures
//! stay readable.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 stream used to drive generation.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Seed derived from a test name (FNV-1a), so each test gets an
    /// independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng64::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut Rng64) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut Rng64) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng64) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng64) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng64) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng64) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Rng64, Strategy};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng64) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Upstream `proptest::prelude` exposes the crate root as `prop`
    /// (`prop::collection::vec`, ...); mirror that.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// The property-test macro. Supports the shapes used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy(), (a, b) in other()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::Rng64::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..__cfg.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    // The body runs inside a closure so `prop_assume!` can
                    // abandon the case with a plain `return`.
                    let __case_fn = move || { $body };
                    __case_fn();
                }
            }
        )*
    };
}

/// Assert inside a property test (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Abandon the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let s = (0usize..10, crate::any::<u64>()).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::Rng64::new(5);
        let mut r2 = crate::Rng64::new(5);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let s = prop::collection::vec(0u32..5, 2..7);
        let mut rng = crate::Rng64::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_binds(x in 1usize..50, (a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x, 13);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(y in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&y));
        }
    }
}
