//! Generators for data points `P` and query points `Q` (§VI-A).
//!
//! * **Uniform data points** — `P` is a uniform sample of `d |V|` nodes
//!   (`d` = density).
//! * **Uniform query points** — pick a random *seed* node, compute the
//!   network *radius* (the seed's eccentricity), and sample `M` nodes whose
//!   network distance to the seed is at most `A x radius`; if the region is
//!   too small, expand outward (take the nearest `M` nodes), exactly as the
//!   paper prescribes.
//! * **Clustered query points** — select `C` central nodes inside the
//!   region and grow `M / C` nodes around each by network expansion.

use rand::seq::SliceRandom;
use rand::Rng;
use roadnet::dijkstra::{dijkstra_all, eccentricity};
use roadnet::{DijkstraIter, Dist, Graph, NodeId, INF};
use std::collections::HashSet;

/// Uniform `P` with density `d`: `max(1, round(d |V|))` distinct nodes.
pub fn uniform_data_points<R: Rng>(g: &Graph, d: f64, rng: &mut R) -> Vec<NodeId> {
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0, 1], got {d}");
    let n = g.num_nodes();
    let count = ((d * n as f64).round() as usize).clamp(1, n);
    sample_nodes(n, count, rng)
}

/// `count` distinct node ids sampled uniformly.
fn sample_nodes<R: Rng>(n: usize, count: usize, rng: &mut R) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(rng);
    all.truncate(count);
    all.sort_unstable();
    all
}

/// The query region: a seed node, the graph radius from it, and the nodes
/// within `A x radius`, sorted by distance (nearest first).
pub struct QueryRegion {
    pub seed: NodeId,
    pub radius: Dist,
    /// Nodes of the whole component sorted by distance from the seed.
    sorted: Vec<(NodeId, Dist)>,
    /// How many of `sorted` fall inside `A x radius`.
    within: usize,
}

impl QueryRegion {
    /// Build a region with coverage ratio `a` around a random seed.
    pub fn new<R: Rng>(g: &Graph, a: f64, rng: &mut R) -> Self {
        assert!(a > 0.0 && a <= 1.0, "coverage ratio must lie in (0, 1]");
        let seed = rng.gen_range(0..g.num_nodes()) as NodeId;
        let radius = eccentricity(g, seed);
        let dist = dijkstra_all(g, seed);
        let mut sorted: Vec<(NodeId, Dist)> = dist
            .into_iter()
            .enumerate()
            .filter(|&(_, d)| d != INF)
            .map(|(v, d)| (v as NodeId, d))
            .collect();
        sorted.sort_by_key(|&(v, d)| (d, v));
        let bound = (a * radius as f64) as Dist;
        let within = sorted.partition_point(|&(_, d)| d <= bound);
        QueryRegion {
            seed,
            radius,
            sorted,
            within,
        }
    }

    /// Candidate nodes: everything within the region, expanded outward to
    /// at least `m` nodes when the region is too small (§VI-A).
    pub fn candidates(&self, m: usize) -> &[(NodeId, Dist)] {
        let take = self.within.max(m).min(self.sorted.len());
        &self.sorted[..take]
    }
}

/// Uniform `Q`: `m` nodes sampled from the coverage region (§VI-A,
/// "uniform query points").
pub fn uniform_query_points<R: Rng>(g: &Graph, m: usize, a: f64, rng: &mut R) -> Vec<NodeId> {
    assert!(m >= 1, "need at least one query point");
    let region = QueryRegion::new(g, a, rng);
    let cand = region.candidates(m);
    let mut picks: Vec<NodeId> = cand.iter().map(|&(v, _)| v).collect();
    picks.shuffle(rng);
    picks.truncate(m);
    picks.sort_unstable();
    picks
}

/// Clustered `Q`: `c` centers inside the region, `m / c` nodes grown
/// around each center by network expansion (§VI-A, "clustered query
/// points"). Clusters never overlap (a node joins one cluster only).
pub fn clustered_query_points<R: Rng>(
    g: &Graph,
    m: usize,
    a: f64,
    c: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    assert!(m >= 1 && c >= 1, "need m >= 1 and c >= 1");
    let c = c.min(m);
    let region = QueryRegion::new(g, a, rng);
    let cand = region.candidates(m);
    let centers: Vec<NodeId> = {
        let mut pool: Vec<NodeId> = cand.iter().map(|&(v, _)| v).collect();
        pool.shuffle(rng);
        pool.truncate(c);
        pool
    };
    let mut picked: HashSet<NodeId> = HashSet::with_capacity(m);
    let per_cluster = m / c;
    for (i, &center) in centers.iter().enumerate() {
        // The last cluster absorbs the remainder.
        let want = if i + 1 == centers.len() {
            m - picked.len()
        } else {
            per_cluster
        };
        let mut grown = 0usize;
        for (v, _) in DijkstraIter::new(g, center) {
            if grown >= want || picked.len() >= m {
                break;
            }
            if picked.insert(v) {
                grown += 1;
            }
        }
    }
    // Top up from the candidate pool if clusters were too small (tiny
    // components around centers).
    if picked.len() < m {
        for &(v, _) in cand {
            if picked.len() >= m {
                break;
            }
            picked.insert(v);
        }
    }
    let mut out: Vec<NodeId> = picked.into_iter().collect();
    out.sort_unstable();
    out.truncate(m);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::grid_network;

    fn graph() -> Graph {
        grid_network(15, 15, 0.05, &mut crate::rng(9))
    }

    #[test]
    fn data_points_match_density() {
        let g = graph();
        let mut rng = crate::rng(1);
        let p = uniform_data_points(&g, 0.1, &mut rng);
        let want = (0.1 * g.num_nodes() as f64).round() as usize;
        assert_eq!(p.len(), want);
        // Distinct and in range.
        let set: HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), p.len());
        assert!(p.iter().all(|&v| (v as usize) < g.num_nodes()));
    }

    #[test]
    fn density_one_is_all_nodes() {
        let g = graph();
        let p = uniform_data_points(&g, 1.0, &mut crate::rng(2));
        assert_eq!(p.len(), g.num_nodes());
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_zero_density() {
        let g = graph();
        let _ = uniform_data_points(&g, 0.0, &mut crate::rng(3));
    }

    #[test]
    fn query_points_within_region() {
        let g = graph();
        let mut rng = crate::rng(4);
        let a = 0.3;
        let region = QueryRegion::new(&g, a, &mut rng);
        let bound = (a * region.radius as f64) as Dist;
        let cand = region.candidates(10);
        assert!(cand.len() >= 10);
        // All but the forced expansion lie within the bound.
        for &(_, d) in &cand[..region.within.min(cand.len())] {
            assert!(d <= bound);
        }
    }

    #[test]
    fn query_points_count_and_distinct() {
        let g = graph();
        for a in [0.01, 0.1, 0.5, 1.0] {
            let q = uniform_query_points(&g, 32, a, &mut crate::rng(5));
            assert_eq!(q.len(), 32, "a={a}");
            let set: HashSet<_> = q.iter().collect();
            assert_eq!(set.len(), 32);
        }
    }

    #[test]
    fn tiny_region_expands_outward() {
        let g = graph();
        // a so small the region is just the seed: generator must still
        // deliver m points by expanding.
        let q = uniform_query_points(&g, 16, 1e-9_f64.max(0.0001), &mut crate::rng(6));
        assert_eq!(q.len(), 16);
    }

    #[test]
    fn clustered_points_count_and_distinct() {
        let g = graph();
        for c in [1usize, 2, 4, 8] {
            let q = clustered_query_points(&g, 24, 0.4, c, &mut crate::rng(7));
            assert_eq!(q.len(), 24, "c={c}");
            let set: HashSet<_> = q.iter().collect();
            assert_eq!(set.len(), 24);
        }
    }

    #[test]
    fn clustered_is_spatially_tighter_than_uniform() {
        let g = grid_network(30, 30, 0.05, &mut crate::rng(8));
        // Mean distance to the nearest other member: small for clustered
        // sets even when the clusters themselves are far apart.
        let spread = |q: &[NodeId]| -> f64 {
            q.iter()
                .map(|&v| {
                    q.iter()
                        .filter(|&&u| u != v)
                        .map(|&u| g.euclid(u, v))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / q.len() as f64
        };
        // Average over several seeds to dodge unlucky draws.
        let mut su = 0.0;
        let mut sc = 0.0;
        for seed in 0..5 {
            let u = uniform_query_points(&g, 40, 0.8, &mut crate::rng(100 + seed));
            let c = clustered_query_points(&g, 40, 0.8, 2, &mut crate::rng(200 + seed));
            su += spread(&u);
            sc += spread(&c);
        }
        assert!(
            sc < su,
            "clusters not tighter: clustered {sc} vs uniform {su}"
        );
    }

    #[test]
    fn more_clusters_than_points_is_clamped() {
        let g = graph();
        let q = clustered_query_points(&g, 3, 0.5, 10, &mut crate::rng(10));
        assert_eq!(q.len(), 3);
    }
}
