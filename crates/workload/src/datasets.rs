//! The Table III dataset registry, at laptop scale.
//!
//! The paper's seven DIMACS USA graphs span 48k–24M nodes. This registry
//! keeps the same names and the same relative size progression at 1/24
//! scale (DESIGN.md §5), plus the per-dataset G-tree leaf capacities
//! (`tau`) of §VI-A scaled accordingly. Real DIMACS files are used instead
//! when `ROADNET_DATA_DIR` points at a directory containing
//! `<name>.gr` / `<name>.co` pairs.

use crate::synth::road_network;
use roadnet::components::largest_connected_component;
use roadnet::Graph;

/// One Table III dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Table III short name (DE, ME, COL, NW, E, CTR, USA).
    pub name: &'static str,
    pub description: &'static str,
    /// Paper node count (for reporting).
    pub paper_nodes: usize,
    /// Scaled synthetic node target.
    pub target_nodes: usize,
    /// G-tree `tau` (max leaf size), scaled from §VI-A.
    pub gtree_leaf_cap: usize,
}

/// All seven datasets of Table III (scaled ~1/24).
pub const DATASETS: [DatasetSpec; 7] = [
    DatasetSpec {
        name: "DE",
        description: "Delaware",
        paper_nodes: 48_812,
        target_nodes: 2_000,
        gtree_leaf_cap: 32,
    },
    DatasetSpec {
        name: "ME",
        description: "Maine",
        paper_nodes: 187_315,
        target_nodes: 7_800,
        gtree_leaf_cap: 64,
    },
    DatasetSpec {
        name: "COL",
        description: "Colorado",
        paper_nodes: 435_666,
        target_nodes: 18_000,
        gtree_leaf_cap: 64,
    },
    DatasetSpec {
        name: "NW",
        description: "Northwest USA",
        paper_nodes: 1_089_933,
        target_nodes: 45_000,
        gtree_leaf_cap: 128,
    },
    DatasetSpec {
        name: "E",
        description: "Eastern USA",
        paper_nodes: 3_598_623,
        target_nodes: 150_000,
        gtree_leaf_cap: 128,
    },
    DatasetSpec {
        name: "CTR",
        description: "Central USA",
        paper_nodes: 14_081_816,
        target_nodes: 400_000,
        gtree_leaf_cap: 256,
    },
    DatasetSpec {
        name: "USA",
        description: "Full USA",
        paper_nodes: 23_947_347,
        target_nodes: 700_000,
        gtree_leaf_cap: 256,
    },
];

/// The paper's default network (`NW`, §VI-A).
pub const DEFAULT: &DatasetSpec = &DATASETS[3];

/// Find a dataset by Table III name (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

impl DatasetSpec {
    /// Load the dataset: from `ROADNET_DATA_DIR/<name>.gr|.co` if present
    /// (cleaned to its largest component, as the paper does), otherwise a
    /// deterministic synthetic substitute of `target_nodes` size.
    pub fn load(&self) -> Graph {
        if let Ok(dir) = std::env::var("ROADNET_DATA_DIR") {
            let stem = std::path::Path::new(&dir).join(self.name);
            if stem.with_extension("gr").exists() {
                match roadnet::io::load_dimacs(&stem) {
                    Ok(g) => return largest_connected_component(&g).graph,
                    Err(e) => eprintln!(
                        "warning: failed to load DIMACS {}: {e}; falling back to synthetic",
                        stem.display()
                    ),
                }
            }
        }
        self.synthesize()
    }

    /// The synthetic substitute (deterministic per dataset name).
    pub fn synthesize(&self) -> Graph {
        let seed = self.name.bytes().fold(0xF4_A2_77_01u64, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        road_network(self.target_nodes, &mut crate::rng(seed))
    }

    /// A smaller variant for fast tests/benches: same topology style,
    /// `target_nodes` scaled by `factor <= 1`.
    pub fn synthesize_scaled(&self, factor: f64) -> Graph {
        assert!(factor > 0.0 && factor <= 1.0);
        let n = ((self.target_nodes as f64 * factor) as usize).max(16);
        let seed = self.name.bytes().fold(0x9E_37_79_B9u64, |h, b| {
            h.wrapping_mul(33).wrapping_add(b as u64)
        });
        road_network(n, &mut crate::rng(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_mirrors_table3_order() {
        let names: Vec<&str> = DATASETS.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["DE", "ME", "COL", "NW", "E", "CTR", "USA"]);
        // Strictly increasing sizes, like the paper.
        assert!(DATASETS
            .windows(2)
            .all(|w| w[0].paper_nodes < w[1].paper_nodes));
        assert!(DATASETS
            .windows(2)
            .all(|w| w[0].target_nodes < w[1].target_nodes));
    }

    #[test]
    fn default_is_nw() {
        assert_eq!(DEFAULT.name, "NW");
    }

    #[test]
    fn lookup_case_insensitive() {
        assert_eq!(by_name("col").unwrap().name, "COL");
        assert!(by_name("XX").is_none());
    }

    #[test]
    fn smallest_dataset_synthesizes_to_target() {
        let g = DATASETS[0].synthesize();
        let n = g.num_nodes();
        assert!(
            (1_600..=2_400).contains(&n),
            "DE synthetic size {n} off target"
        );
    }

    #[test]
    fn scaled_synthesis_shrinks() {
        let g = DATASETS[0].synthesize_scaled(0.25);
        assert!(g.num_nodes() < 800);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = DATASETS[0].synthesize();
        let b = DATASETS[0].synthesize();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
