//! Experiment substrate for the paper's evaluation (§VI-A).
//!
//! * [`synth`] — synthetic road-network generator (perturbed grid + highway
//!   shortcuts) substituting for the DIMACS USA graphs when the real files
//!   are absent (DESIGN.md §5); weights are guaranteed `>= Euclidean`
//!   length so A\*/IER bounds stay admissible.
//! * [`points`] — generators for `P` (uniform by density `d`) and `Q`
//!   (uniform by coverage ratio `A`, clustered by cluster count `C`).
//! * [`poi`] — synthetic POI sets matching the densities of Table IV.
//! * [`datasets`] — the Table III registry at laptop scale, with the
//!   per-dataset G-tree leaf capacities of §VI-A.

pub mod datasets;
pub mod poi;
pub mod points;
pub mod synth;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for reproducible experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
