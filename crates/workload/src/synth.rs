//! Synthetic road-network generation.
//!
//! The paper evaluates on the DIMACS challenge-9 USA road graphs
//! (Table III). Those files are not bundled; this generator produces
//! networks with the same structural signature: near-planar, average
//! degree ~2.4 (edges/nodes ~2.4 in Table III), positive integer weights,
//! mild geometric distortion, and a sparse set of faster "highway" links.
//!
//! Invariant: every edge weight is at least the Euclidean distance between
//! its endpoints, so `LowerBound::for_graph` yields a scale close to 1 and
//! A\*/IER stay admissible and effective — the same property real road
//! networks have when weights are physical lengths.

use rand::Rng;
use roadnet::components::largest_connected_component;
use roadnet::{Graph, GraphBuilder, NodeId, Weight};

/// Grid spacing in weight units.
const SPACING: f64 = 100.0;

/// Weight of an edge: Euclidean length times a random detour factor in
/// `[1, 1 + detour]`, rounded up (never below the Euclidean length).
fn road_weight<R: Rng>(euclid: f64, detour: f64, rng: &mut R) -> Weight {
    let factor = 1.0 + rng.gen_range(0.0..=detour);
    (euclid * factor).ceil().max(1.0) as Weight
}

/// A `w x h` road grid with jittered coordinates, ~`drop_prob` of the grid
/// edges removed, and a handful of long highway shortcuts. The largest
/// connected component is returned, so the node count is close to (but can
/// be slightly below) `w * h`.
pub fn grid_network<R: Rng>(w: usize, h: usize, drop_prob: f64, rng: &mut R) -> Graph {
    assert!(w >= 2 && h >= 2, "grid must be at least 2x2");
    assert!((0.0..0.9).contains(&drop_prob), "drop_prob out of range");
    let mut b = GraphBuilder::with_capacity(w * h, 2 * w * h);
    let jitter = SPACING * 0.3;
    for y in 0..h {
        for x in 0..w {
            let px = x as f64 * SPACING + rng.gen_range(-jitter..jitter);
            let py = y as f64 * SPACING + rng.gen_range(-jitter..jitter);
            b.add_node(px, py);
        }
    }
    let node = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut pending: Vec<(NodeId, NodeId)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                pending.push((node(x, y), node(x + 1, y)));
            }
            if y + 1 < h {
                pending.push((node(x, y), node(x, y + 1)));
            }
            // Occasional diagonal to break the pure grid topology.
            if x + 1 < w && y + 1 < h && rng.gen_bool(0.05) {
                pending.push((node(x, y), node(x + 1, y + 1)));
            }
        }
    }
    for (u, v) in pending {
        if rng.gen_bool(drop_prob) {
            continue;
        }
        let e = euclid_of(&b, u, v);
        b.add_edge(u, v, road_weight(e, 0.3, rng));
    }
    // Highways: ~0.2% of nodes get a long, nearly-straight link.
    let n = w * h;
    let highways = (n / 500).max(1);
    for _ in 0..highways {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            let e = euclid_of(&b, u, v);
            b.add_edge(u, v, road_weight(e, 0.05, rng));
        }
    }
    largest_connected_component(&b.build()).graph
}

// GraphBuilder does not expose coordinates; rebuild Euclidean length from
// the ids we just assigned. Kept in a helper so weight logic stays in one
// place.
fn euclid_of(b: &GraphBuilder, u: NodeId, v: NodeId) -> f64 {
    let pu = b.coord_of(u);
    let pv = b.coord_of(v);
    let dx = pu.0 - pv.0;
    let dy = pu.1 - pv.1;
    (dx * dx + dy * dy).sqrt()
}

/// A road network with approximately `target_nodes` nodes (aspect ~4:3).
pub fn road_network<R: Rng>(target_nodes: usize, rng: &mut R) -> Graph {
    assert!(target_nodes >= 4, "need at least 4 nodes");
    let w = ((target_nodes as f64 * 4.0 / 3.0).sqrt().ceil() as usize).max(2);
    let h = target_nodes.div_ceil(w).max(2);
    grid_network(w, h, 0.08, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::LowerBound;

    #[test]
    fn generates_connected_network() {
        let mut rng = crate::rng(7);
        let g = grid_network(20, 15, 0.1, &mut rng);
        assert!(
            g.num_nodes() > 250,
            "lost too many nodes: {}",
            g.num_nodes()
        );
        let ex = largest_connected_component(&g);
        assert_eq!(ex.graph.num_nodes(), g.num_nodes(), "not connected");
    }

    #[test]
    fn weights_dominate_euclid() {
        let mut rng = crate::rng(11);
        let g = grid_network(12, 12, 0.05, &mut rng);
        for (u, v, w) in g.edges() {
            assert!(
                w as f64 >= g.euclid(u, v) - 1e-9,
                "edge ({u},{v}) weight {w} below euclid {}",
                g.euclid(u, v)
            );
        }
        // Hence the admissible scale is ~1.
        let lb = LowerBound::for_graph(&g);
        assert!(lb.scale() > 0.9, "scale unexpectedly small: {}", lb.scale());
    }

    #[test]
    fn average_degree_is_roadlike() {
        let mut rng = crate::rng(3);
        let g = grid_network(30, 30, 0.08, &mut rng);
        let avg = g.num_arcs() as f64 / g.num_nodes() as f64;
        // Table III graphs have ~2.2-2.4 arcs per node... times 2 for both
        // directions is ~4.4-4.8; ours should land in a road-like band.
        assert!((3.0..5.2).contains(&avg), "avg degree {avg} not road-like");
    }

    #[test]
    fn road_network_hits_target_size() {
        let mut rng = crate::rng(42);
        let g = road_network(2000, &mut rng);
        let n = g.num_nodes();
        assert!(
            (1700..=2300).contains(&n),
            "node count {n} too far from target"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = grid_network(10, 10, 0.1, &mut crate::rng(5));
        let g2 = grid_network(10, 10, 0.1, &mut crate::rng(5));
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_grid() {
        let _ = grid_network(1, 5, 0.0, &mut crate::rng(0));
    }
}
