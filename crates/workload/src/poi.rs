//! Synthetic POI sets matching Table IV (real-world POIs in NW).
//!
//! The paper extracts OSM points of interest for the NW road network. The
//! OSM extracts are not bundled, so each POI class is synthesized with its
//! Table IV *density* and a clustering flavor that matches its real-world
//! distribution (schools and parks cluster around populated areas;
//! courthouses are scattered). DESIGN.md §5 records the substitution —
//! what Fig. 12 exercises is only the density (`|P|/|V| ~ d_default`) and
//! size (`|Q| ~ M_default`) relationships, which are preserved exactly.

use crate::points::{clustered_query_points, uniform_data_points};
use rand::Rng;
use roadnet::{Graph, NodeId};

/// The POI classes of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoiKind {
    /// Parks (density 0.005).
    Parks,
    /// Schools (density 0.004).
    Schools,
    /// Fast food (density 0.001) — a Fig. 12 `P` set.
    FastFood,
    /// Post offices (density 0.001) — a Fig. 12 `P` set.
    PostOffices,
    /// Hotels (density 0.0004).
    Hotels,
    /// Hospitals (density 0.0002) — a Fig. 12 `Q` set.
    Hospitals,
    /// Universities (density 0.00009) — a Fig. 12 `Q` set.
    Universities,
    /// Courthouses (density 0.00005).
    Courthouses,
}

impl PoiKind {
    pub const ALL: [PoiKind; 8] = [
        PoiKind::Parks,
        PoiKind::Schools,
        PoiKind::FastFood,
        PoiKind::PostOffices,
        PoiKind::Hotels,
        PoiKind::Hospitals,
        PoiKind::Universities,
        PoiKind::Courthouses,
    ];

    /// Table IV short name.
    pub fn code(&self) -> &'static str {
        match self {
            PoiKind::Parks => "PA",
            PoiKind::Schools => "SC",
            PoiKind::FastFood => "FF",
            PoiKind::PostOffices => "PO",
            PoiKind::Hotels => "HOT",
            PoiKind::Hospitals => "HOS",
            PoiKind::Universities => "UNI",
            PoiKind::Courthouses => "CH",
        }
    }

    /// Table IV density (`#POIs / |V|` on NW).
    pub fn density(&self) -> f64 {
        match self {
            PoiKind::Parks => 0.005,
            PoiKind::Schools => 0.004,
            PoiKind::FastFood => 0.001,
            PoiKind::PostOffices => 0.001,
            PoiKind::Hotels => 0.0004,
            PoiKind::Hospitals => 0.0002,
            PoiKind::Universities => 0.00009,
            PoiKind::Courthouses => 0.00005,
        }
    }

    /// Real-world clustering flavor: how many clusters the class forms
    /// (0 = uniform scatter).
    fn clusters(&self) -> usize {
        match self {
            PoiKind::Parks | PoiKind::Schools => 12,
            PoiKind::FastFood | PoiKind::Hotels => 8,
            PoiKind::PostOffices => 0,
            PoiKind::Hospitals => 4,
            PoiKind::Universities => 3,
            PoiKind::Courthouses => 0,
        }
    }
}

/// Generate one POI set over `g` with the Table IV density of `kind`.
pub fn generate_poi<R: Rng>(g: &Graph, kind: PoiKind, rng: &mut R) -> Vec<NodeId> {
    let count = ((kind.density() * g.num_nodes() as f64).round() as usize).max(2);
    let c = kind.clusters();
    if c == 0 || count < 2 * c {
        uniform_data_points(g, count as f64 / g.num_nodes() as f64, rng)
    } else {
        clustered_query_points(g, count, 1.0, c, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::grid_network;

    #[test]
    fn sizes_track_density() {
        let g = grid_network(60, 60, 0.05, &mut crate::rng(1));
        let mut rng = crate::rng(2);
        for kind in PoiKind::ALL {
            let poi = generate_poi(&g, kind, &mut rng);
            let want = ((kind.density() * g.num_nodes() as f64).round() as usize).max(2);
            assert_eq!(poi.len(), want, "{}", kind.code());
        }
    }

    #[test]
    fn codes_unique() {
        let set: std::collections::HashSet<_> = PoiKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(set.len(), PoiKind::ALL.len());
    }

    #[test]
    fn fig12_pairings_have_sane_relative_sizes() {
        // P (FF, PO) must be much larger than Q (HOS, UNI), as in Table IV.
        let g = grid_network(80, 80, 0.05, &mut crate::rng(3));
        let mut rng = crate::rng(4);
        let ff = generate_poi(&g, PoiKind::FastFood, &mut rng);
        let hos = generate_poi(&g, PoiKind::Hospitals, &mut rng);
        let uni = generate_poi(&g, PoiKind::Universities, &mut rng);
        assert!(ff.len() > 2 * hos.len());
        assert!(hos.len() >= uni.len());
    }

    #[test]
    fn all_nodes_in_range() {
        let g = grid_network(40, 40, 0.05, &mut crate::rng(5));
        let mut rng = crate::rng(6);
        for kind in PoiKind::ALL {
            for v in generate_poi(&g, kind, &mut rng) {
                assert!((v as usize) < g.num_nodes());
            }
        }
    }
}
