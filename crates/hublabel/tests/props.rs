//! Property tests: hub labels are exact and survive persistence.

use hublabel::HubLabels;
use proptest::prelude::*;
use roadnet::dijkstra::dijkstra_all;
use roadnet::{Graph, GraphBuilder, INF};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..26, 0usize..26, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(i as f64, (i % 4) as f64);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, 1 + (next() % 30) as u32);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1 + (next() % 30) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn labels_exact(g in arb_graph()) {
        let hl = HubLabels::build(&g);
        for s in 0..g.num_nodes() as u32 {
            let truth = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                let want = (truth[t as usize] != INF).then_some(truth[t as usize]);
                prop_assert_eq!(hl.distance(s, t), want);
            }
        }
    }

    #[test]
    fn persistence_roundtrip(g in arb_graph()) {
        let hl = HubLabels::build(&g);
        let hl2 = HubLabels::from_bytes(&hl.to_bytes()).unwrap();
        for s in 0..g.num_nodes() as u32 {
            for t in 0..g.num_nodes() as u32 {
                prop_assert_eq!(hl2.distance(s, t), hl.distance(s, t));
            }
        }
    }

    #[test]
    fn limit_zero_never_builds_nonempty(g in arb_graph()) {
        // Any graph with at least one node labels itself at least once.
        prop_assert!(HubLabels::build_with_limit(&g, 0).is_none());
    }
}
