//! Binary persistence for hub labels.
//!
//! Label construction is the expensive phase (minutes on large networks,
//! Fig. 9b); production deployments build once and ship the index. The
//! format is a versioned little-endian stream:
//!
//! ```text
//! magic "HLBL" | version u32 | node count u64
//! per node: entry count u32 | (hub_rank u32, dist u64)*
//! ```

use crate::HubLabels;
use roadnet::Dist;
use std::fmt;

const MAGIC: &[u8; 4] = b"HLBL";
const VERSION: u32 = 1;

/// Errors raised while decoding a label file.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    /// Labels must be sorted by hub rank; a corrupt stream is rejected.
    UnsortedLabel(usize),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a hub-label file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "unexpected end of data"),
            PersistError::UnsortedLabel(v) => write!(f, "label of node {v} is not sorted"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl HubLabels {
    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.total_label_entries() * 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.num_nodes() as u64).to_le_bytes());
        for label in self.labels() {
            out.extend_from_slice(&(label.len() as u32).to_le_bytes());
            for &(rank, dist) in label {
                out.extend_from_slice(&rank.to_le_bytes());
                out.extend_from_slice(&dist.to_le_bytes());
            }
        }
        out
    }

    /// Decode a stream produced by [`HubLabels::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader { buf: data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n = r.u64()? as usize;
        let mut labels = Vec::with_capacity(n);
        for v in 0..n {
            let len = r.u32()? as usize;
            let mut label: Vec<(u32, Dist)> = Vec::with_capacity(len);
            for _ in 0..len {
                let rank = r.u32()?;
                let dist = r.u64()?;
                label.push((rank, dist));
            }
            if !label.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(PersistError::UnsortedLabel(v));
            }
            labels.push(label);
        }
        Ok(HubLabels::from_labels(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn sample() -> HubLabels {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_node(i as f64, (i % 3) as f64);
        }
        for i in 0..9 {
            b.add_edge(i, i + 1, 1 + i % 4);
        }
        b.add_edge(0, 9, 7);
        HubLabels::build(&b.build())
    }

    #[test]
    fn roundtrip_preserves_distances() {
        let hl = sample();
        let bytes = hl.to_bytes();
        let hl2 = HubLabels::from_bytes(&bytes).unwrap();
        assert_eq!(hl2.num_nodes(), hl.num_nodes());
        assert_eq!(hl2.total_label_entries(), hl.total_label_entries());
        for s in 0..10 {
            for t in 0..10 {
                assert_eq!(hl2.distance(s, t), hl.distance(s, t));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            HubLabels::from_bytes(b"NOPE"),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(HubLabels::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_unsorted_label() {
        let hl = sample();
        let mut bytes = hl.to_bytes();
        // Find a node with >= 2 entries and swap its first two ranks.
        let mut pos = 16;
        loop {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if len >= 2 {
                let a = pos + 4;
                let b = pos + 4 + 12;
                let mut r1 = [0u8; 4];
                r1.copy_from_slice(&bytes[a..a + 4]);
                let mut r2 = [0u8; 4];
                r2.copy_from_slice(&bytes[b..b + 4]);
                bytes[a..a + 4].copy_from_slice(&r2);
                bytes[b..b + 4].copy_from_slice(&r1);
                break;
            }
            pos += 4 + len * 12;
        }
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::UnsortedLabel(_))
        ));
    }
}
