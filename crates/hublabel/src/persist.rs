//! Binary persistence for hub labels.
//!
//! Label construction is the expensive phase (minutes on large networks,
//! Fig. 9b); production deployments build once and ship the index. The
//! format is a versioned little-endian stream:
//!
//! ```text
//! magic "HLBL" | version u32 | node count u64
//! per node: entry count u32 | (hub_rank u32, dist u64)*
//! ```

use crate::HubLabels;
use roadnet::flat::{ensure, FlatError, FlatFile, FlatStreamWriter, FlatVec, FlatWriter, LoadMode};
use roadnet::Dist;
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"HLBL";
const VERSION: u32 = 1;

/// Magic for the flat v2 hub-label container.
pub const FLAT_MAGIC: [u8; 8] = *b"FANNHL2\0";
const FLAT_VERSION: u32 = 2;

/// Errors raised while decoding a label file.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    /// A declared count would overflow or exceed the remaining bytes.
    Oversized,
    /// Labels must be sorted by hub rank; a corrupt stream is rejected.
    UnsortedLabel(usize),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a hub-label file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "unexpected end of data"),
            PersistError::Oversized => write!(f, "declared length exceeds input"),
            PersistError::UnsortedLabel(v) => write!(f, "label of node {v} is not sorted"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Guard a declared element count against the bytes actually left, so a
    /// corrupt header can never drive an overflowing or huge allocation.
    fn check_count(&self, count: usize, elem_bytes: usize) -> Result<(), PersistError> {
        match count.checked_mul(elem_bytes) {
            Some(need) if need <= self.remaining() => Ok(()),
            _ => Err(PersistError::Oversized),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl HubLabels {
    /// Serialize to the versioned v1 binary stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.total_label_entries() * 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.num_nodes() as u64).to_le_bytes());
        for v in 0..self.num_nodes() {
            let (ranks, dists) = self.label(v as u32);
            out.extend_from_slice(&(ranks.len() as u32).to_le_bytes());
            for (&rank, &dist) in ranks.iter().zip(dists) {
                out.extend_from_slice(&rank.to_le_bytes());
                out.extend_from_slice(&dist.to_le_bytes());
            }
        }
        out
    }

    /// Decode a stream produced by [`HubLabels::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader { buf: data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n = r.u64()?;
        let n = usize::try_from(n).map_err(|_| PersistError::Oversized)?;
        // Each node costs at least its 4-byte entry count.
        r.check_count(n, 4)?;
        let mut labels = Vec::with_capacity(n);
        for v in 0..n {
            let len = r.u32()? as usize;
            r.check_count(len, 12)?;
            let mut label: Vec<(u32, Dist)> = Vec::with_capacity(len);
            for _ in 0..len {
                let rank = r.u32()?;
                let dist = r.u64()?;
                label.push((rank, dist));
            }
            if !label.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(PersistError::UnsortedLabel(v));
            }
            labels.push(label);
        }
        Ok(HubLabels::from_labels(labels))
    }

    /// Serialize into the flat v2 container (DESIGN.md §11). Sections:
    /// `0` entry offsets (`n + 1` × u64), `1` hub ranks, `2` distances.
    pub fn to_flat_bytes(&self) -> Vec<u8> {
        self.flat_writer().finish()
    }

    /// Write the flat v2 container to `path`, streaming each CSR array
    /// straight to the file — no assembled in-memory copy.
    pub fn write_flat(&self, path: &Path) -> std::io::Result<()> {
        let (offsets, ranks, dists) = self.flat_parts();
        let mut w = FlatStreamWriter::create(path, FLAT_MAGIC, FLAT_VERSION, 3)?;
        w.section(offsets)?;
        w.section(ranks)?;
        w.section(dists)?;
        w.finish()
    }

    fn flat_writer(&self) -> FlatWriter {
        let (offsets, ranks, dists) = self.flat_parts();
        let mut w = FlatWriter::new(FLAT_MAGIC, FLAT_VERSION);
        w.section(offsets);
        w.section(ranks);
        w.section(dists);
        w
    }

    /// Zero-copy load of a flat v2 label index: the file is brought behind
    /// one aligned buffer (mapped when possible, see [`LoadMode::Auto`])
    /// and all three CSR arrays are served directly from it. Validation
    /// only scans — no per-node allocation or decode pass.
    pub fn read_flat(path: &Path) -> Result<Self, FlatError> {
        Self::read_flat_with(path, LoadMode::Auto)
    }

    /// [`HubLabels::read_flat`] with an explicit backing [`LoadMode`].
    pub fn read_flat_with(path: &Path, mode: LoadMode) -> Result<Self, FlatError> {
        Self::from_flat(FlatFile::open(path, FLAT_MAGIC, FLAT_VERSION, mode)?)
    }

    /// Parse a flat v2 label index from in-memory bytes (copies once into
    /// an aligned buffer; [`HubLabels::read_flat`] is the zero-copy path).
    pub fn from_flat_bytes(bytes: &[u8]) -> Result<Self, FlatError> {
        Self::from_flat(FlatFile::parse(bytes, FLAT_MAGIC, FLAT_VERSION)?)
    }

    fn from_flat(f: FlatFile) -> Result<Self, FlatError> {
        ensure(f.section_count() == 3, "label section count")?;
        let offsets: FlatVec<u64> = f.section(0)?;
        let ranks: FlatVec<u32> = f.section(1)?;
        let dists: FlatVec<u64> = f.section(2)?;
        // Hoist the typed views onto plain slices once: the scans below
        // touch every label entry, and indexing through the `FlatVec`
        // handle would re-resolve the backing on each access.
        let off: &[u64] = &offsets;
        let rk: &[u32] = &ranks;
        ensure(!off.is_empty(), "label offsets empty")?;
        ensure(off[0] == 0, "label offsets origin")?;
        ensure(
            off.windows(2).all(|w| w[0] <= w[1]),
            "label offsets monotone",
        )?;
        ensure(
            off[off.len() - 1] as usize == rk.len(),
            "label offsets terminal",
        )?;
        ensure(rk.len() == dists.len(), "label array lengths")?;
        ensure(
            off.windows(2).all(|w| {
                rk[w[0] as usize..w[1] as usize]
                    .windows(2)
                    .all(|r| r[0] < r[1])
            }),
            "label ranks sorted",
        )?;
        Ok(HubLabels::from_flat_parts(offsets, ranks, dists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn sample() -> HubLabels {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_node(i as f64, (i % 3) as f64);
        }
        for i in 0..9 {
            b.add_edge(i, i + 1, 1 + i % 4);
        }
        b.add_edge(0, 9, 7);
        HubLabels::build(&b.build())
    }

    #[test]
    fn roundtrip_preserves_distances() {
        let hl = sample();
        let bytes = hl.to_bytes();
        let hl2 = HubLabels::from_bytes(&bytes).unwrap();
        assert_eq!(hl2.num_nodes(), hl.num_nodes());
        assert_eq!(hl2.total_label_entries(), hl.total_label_entries());
        for s in 0..10 {
            for t in 0..10 {
                assert_eq!(hl2.distance(s, t), hl.distance(s, t));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            HubLabels::from_bytes(b"NOPE"),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(HubLabels::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_unsorted_label() {
        let hl = sample();
        let mut bytes = hl.to_bytes();
        // Find a node with >= 2 entries and swap its first two ranks.
        let mut pos = 16;
        loop {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if len >= 2 {
                let a = pos + 4;
                let b = pos + 4 + 12;
                let mut r1 = [0u8; 4];
                r1.copy_from_slice(&bytes[a..a + 4]);
                let mut r2 = [0u8; 4];
                r2.copy_from_slice(&bytes[b..b + 4]);
                bytes[a..a + 4].copy_from_slice(&r2);
                bytes[b..b + 4].copy_from_slice(&r1);
                break;
            }
            pos += 4 + len * 12;
        }
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::UnsortedLabel(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_counts() {
        // A header declaring u64::MAX nodes must fail fast, not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"HLBL");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::Oversized)
        ));
        // Same for a per-node entry count far beyond the remaining bytes.
        let mut bytes = sample().to_bytes();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            HubLabels::from_bytes(&bytes),
            Err(PersistError::Oversized)
        ));
    }

    #[test]
    fn fuzzed_corruption_never_panics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let base = sample().to_bytes();
        let mut rng = StdRng::seed_from_u64(0x4858_4c42);
        for _ in 0..500 {
            let mut bytes = base.clone();
            // Mutate a few random bytes, sometimes truncate or extend.
            for _ in 0..rng.gen_range(1usize..8) {
                let at = rng.gen_range(0usize..bytes.len());
                bytes[at] = rng.gen_range(0u32..256) as u8;
            }
            if rng.gen_bool(0.3) {
                bytes.truncate(rng.gen_range(0usize..bytes.len()));
            } else if rng.gen_bool(0.1) {
                bytes.extend_from_slice(&base[..rng.gen_range(0usize..base.len())]);
            }
            // Must return Ok or a typed error — never panic or abort.
            let _ = HubLabels::from_bytes(&bytes);
        }
    }

    #[test]
    fn flat_round_trip_is_identical() {
        let hl = sample();
        let bytes = hl.to_flat_bytes();
        let hl2 = HubLabels::from_flat_bytes(&bytes).unwrap();
        assert!(hl2 == hl);
        for s in 0..10 {
            for t in 0..10 {
                assert_eq!(hl2.distance(s, t), hl.distance(s, t));
            }
        }
    }

    #[test]
    fn flat_rejects_malformed_containers() {
        use roadnet::flat::FlatError;
        let bytes = sample().to_flat_bytes();
        for cut in (0..bytes.len()).step_by(8) {
            assert!(
                HubLabels::from_flat_bytes(&bytes[..cut]).is_err(),
                "cut={cut}"
            );
        }
        assert!(matches!(
            HubLabels::from_flat_bytes(&bytes[..bytes.len() - 5]),
            Err(FlatError::Misaligned(_))
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            HubLabels::from_flat_bytes(&bad),
            Err(FlatError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[12] = 9;
        assert!(matches!(
            HubLabels::from_flat_bytes(&bad),
            Err(FlatError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn flat_rejects_unsorted_ranks() {
        let hl = sample();
        let mut bytes = hl.to_flat_bytes();
        // Ranks are section 1; find a node with >= 2 entries via offsets
        // (section 0, after header + 3 table entries) and swap its ranks.
        let table = 24usize;
        let off0 = u64::from_ne_bytes(bytes[table..table + 8].try_into().unwrap()) as usize;
        let off1 = u64::from_ne_bytes(bytes[table + 16..table + 24].try_into().unwrap()) as usize;
        let n = hl.num_nodes();
        let offsets: Vec<u64> = (0..=n)
            .map(|i| u64::from_ne_bytes(bytes[off0 + i * 8..off0 + i * 8 + 8].try_into().unwrap()))
            .collect();
        let v = (0..n)
            .find(|&v| offsets[v + 1] - offsets[v] >= 2)
            .expect("some label has two entries");
        let a = off1 + offsets[v] as usize * 4;
        let (r1, r2) = (
            <[u8; 4]>::try_from(&bytes[a..a + 4]).unwrap(),
            <[u8; 4]>::try_from(&bytes[a + 4..a + 8]).unwrap(),
        );
        bytes[a..a + 4].copy_from_slice(&r2);
        bytes[a + 4..a + 8].copy_from_slice(&r1);
        assert!(matches!(
            HubLabels::from_flat_bytes(&bytes),
            Err(roadnet::flat::FlatError::Corrupt("label ranks sorted"))
        ));
    }
}
