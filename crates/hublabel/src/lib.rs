//! Pruned 2-hop hub labeling — an exact, labeling-based distance oracle.
//!
//! The paper's fastest `g_phi` backend is **PHL** (pruned highway labeling,
//! Akiba et al. \[16\]): after heavy preprocessing, every vertex stores a
//! label (a set of `(hub, distance)` pairs) such that the shortest-path
//! distance of any pair is the minimum over common hubs. This crate
//! implements the same contract via *pruned landmark labeling* (the
//! vertex-hub sibling of PHL): identical query algorithm, identical role in
//! every FANN_R algorithm, and the same memory behaviour the paper reports
//! in Fig. 9 (largest index of all, growing super-linearly with the graph).
//! See DESIGN.md §5 for the substitution rationale.
//!
//! # Algorithm
//!
//! Vertices are ranked by a heuristic importance order (degree by default).
//! For each vertex `v` in rank order, a *pruned Dijkstra* from `v` visits
//! node `u` at distance `d`; if the labels built so far already certify
//! `dist(v, u) <= d`, the search is pruned at `u`; otherwise `(v, d)` is
//! appended to `u`'s label. The result is a *2-hop cover*: for every pair
//! `(s, t)` some vertex on a shortest `s`-`t` path is in both labels.
//!
//! Queries are a sorted-list merge: `min over common hubs h of
//! L_s(h) + L_t(h)` — microseconds in practice.

pub mod persist;

use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hub ordering strategies. Higher-ranked vertices become hubs first and
/// appear in more labels; a good order keeps labels small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Descending degree (ties by id). Good default for road networks.
    Degree,
    /// Input order (0, 1, 2, ...) — only useful as an ablation baseline.
    Input,
}

/// Turn an importance score per vertex into an explicit hub order
/// (most important first). Convenience for [`HubLabels::build_with_order`];
/// e.g. pass contraction-hierarchy ranks for much smaller labels than the
/// degree heuristic (see `crates/bench/src/bin/ablation_label_order.rs`).
pub fn order_by_importance(scores: &[u64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    order.sort_by_key(|&v| (Reverse(scores[v as usize]), v));
    order
}

/// A built hub-label index.
pub struct HubLabels {
    /// Per node: `(hub_rank, dist)` pairs sorted by `hub_rank` ascending.
    labels: Vec<Vec<(u32, Dist)>>,
}

impl HubLabels {
    /// Build labels with the default ([`Ordering::Degree`]) order.
    pub fn build(g: &Graph) -> Self {
        Self::build_with_ordering(g, Ordering::Degree)
    }

    /// Build labels, giving up when the total label count exceeds
    /// `max_entries` — the moral equivalent of the paper's PHL running out
    /// of memory on the largest datasets (Fig. 9): label size is the
    /// dominant cost and grows super-linearly with the graph.
    pub fn build_with_limit(g: &Graph, max_entries: usize) -> Option<Self> {
        Self::build_inner(g, Ordering::Degree, Some(max_entries))
    }

    /// Build labels with an explicit hub order.
    pub fn build_with_ordering(g: &Graph, ordering: Ordering) -> Self {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        if ordering == Ordering::Degree {
            order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        }
        Self::build_with_order_inner(g, &order, None).expect("no limit given")
    }

    /// Build labels with a fully custom hub order (most important first).
    /// Must be a permutation of `0..g.num_nodes()`.
    pub fn build_with_order(g: &Graph, order: &[NodeId]) -> Self {
        assert_eq!(order.len(), g.num_nodes(), "order must cover every node");
        Self::build_with_order_inner(g, order, None).expect("no limit given")
    }

    fn build_inner(g: &Graph, ordering: Ordering, max_entries: Option<usize>) -> Option<Self> {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        if ordering == Ordering::Degree {
            order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        }
        Self::build_with_order_inner(g, &order, max_entries)
    }

    fn build_with_order_inner(
        g: &Graph,
        order: &[NodeId],
        max_entries: Option<usize>,
    ) -> Option<Self> {
        let n = g.num_nodes();
        let mut total_entries = 0usize;

        let mut labels: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        // Scratch: distance from the current hub to each earlier hub rank,
        // letting the pruning query run in O(|label(u)|).
        let mut hub_dist_by_rank = vec![INF; n];
        let mut dist = vec![INF; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            for &(r, d) in &labels[hub as usize] {
                hub_dist_by_rank[r as usize] = d;
            }

            dist[hub as usize] = 0;
            touched.push(hub);
            heap.push((Reverse(0), hub));
            while let Some((Reverse(d), u)) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                // Pruning test: is (hub -> u) already certified by earlier hubs?
                let mut certified = INF;
                for &(r, du) in &labels[u as usize] {
                    let dh = hub_dist_by_rank[r as usize];
                    if dh != INF {
                        certified = certified.min(dh + du);
                    }
                }
                if certified <= d {
                    continue;
                }
                labels[u as usize].push((rank, d));
                total_entries += 1;
                if max_entries.is_some_and(|cap| total_entries > cap) {
                    return None; // label budget blown (Fig. 9 "PHL fails")
                }
                for (t, w) in g.neighbors(u) {
                    let nd = d + w as Dist;
                    if nd < dist[t as usize] {
                        dist[t as usize] = nd;
                        touched.push(t);
                        heap.push((Reverse(nd), t));
                    }
                }
            }
            // Reset scratch state touched by this hub.
            for &(r, _) in &labels[hub as usize] {
                hub_dist_by_rank[r as usize] = INF;
            }
            for &v in &touched {
                dist[v as usize] = INF;
            }
            touched.clear();
            heap.clear();
        }
        Some(HubLabels { labels })
    }

    /// Internal accessor for persistence.
    pub(crate) fn labels(&self) -> &[Vec<(u32, Dist)>] {
        &self.labels
    }

    /// Reassemble from decoded labels (persistence path). Callers must
    /// guarantee each label is sorted by hub rank.
    pub(crate) fn from_labels(labels: Vec<Vec<(u32, Dist)>>) -> Self {
        HubLabels { labels }
    }

    /// Exact shortest-path distance; `None` when `s` and `t` are in
    /// different components (no common hub).
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        if s == t {
            return Some(0);
        }
        let (mut i, mut j) = (0, 0);
        let (ls, lt) = (&self.labels[s as usize], &self.labels[t as usize]);
        let mut best = INF;
        while i < ls.len() && j < lt.len() {
            match ls[i].0.cmp(&lt[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(ls[i].1 + lt[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != INF).then_some(best)
    }

    /// Number of labeled vertices.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Total number of `(hub, dist)` entries across all labels.
    pub fn total_label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Mean label size — the labeling-oracle quality metric.
    pub fn avg_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_label_entries() as f64 / self.labels.len() as f64
        }
    }

    /// Approximate in-memory size (Fig. 9a analogue).
    pub fn memory_bytes(&self) -> usize {
        self.total_label_entries() * std::mem::size_of::<(u32, Dist)>()
            + self.labels.len() * std::mem::size_of::<Vec<(u32, Dist)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x * y) % 2);
                }
            }
        }
        b.build()
    }

    fn assert_exact(g: &Graph, hl: &HubLabels) {
        for s in 0..g.num_nodes() as NodeId {
            let truth = dijkstra_all(g, s);
            for t in 0..g.num_nodes() as NodeId {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(hl.distance(s, t), expect, "pair {s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_grid() {
        let g = grid(5, 4);
        let hl = HubLabels::build(&g);
        assert_exact(&g, &hl);
    }

    #[test]
    fn exact_with_input_ordering() {
        let g = grid(4, 4);
        let hl = HubLabels::build_with_ordering(&g, Ordering::Input);
        assert_exact(&g, &hl);
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 5);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 1), Some(2));
        assert_eq!(hl.distance(2, 3), Some(5));
        assert_eq!(hl.distance(0, 2), None);
        assert_eq!(hl.distance(1, 3), None);
    }

    #[test]
    fn self_distance_zero() {
        let g = grid(3, 3);
        let hl = HubLabels::build(&g);
        for v in 0..9 {
            assert_eq!(hl.distance(v, v), Some(0));
        }
    }

    #[test]
    fn labels_sorted_by_rank() {
        let g = grid(5, 5);
        let hl = HubLabels::build(&g);
        for l in &hl.labels {
            assert!(l.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = grid(4, 3);
        let hl = HubLabels::build(&g);
        assert_eq!(hl.num_nodes(), 12);
        assert!(hl.total_label_entries() >= 12); // every node labels itself
        assert!(hl.avg_label_size() >= 1.0);
        assert!(hl.memory_bytes() > 0);
    }

    #[test]
    fn limit_aborts_large_builds_but_allows_small() {
        let g = grid(6, 6);
        assert!(HubLabels::build_with_limit(&g, 5).is_none());
        let hl = HubLabels::build_with_limit(&g, 1_000_000).unwrap();
        assert_exact(&g, &hl);
    }

    #[test]
    fn custom_order_stays_exact() {
        let g = grid(5, 5);
        // Reverse-id order: terrible, but must remain exact.
        let order: Vec<NodeId> = (0..25).rev().collect();
        let hl = HubLabels::build_with_order(&g, &order);
        assert_exact(&g, &hl);
        // order_by_importance sorts descending by score.
        let scores: Vec<u64> = (0..25).map(|v| v as u64 * 7 % 13).collect();
        let order = order_by_importance(&scores);
        let hl = HubLabels::build_with_order(&g, &order);
        assert_exact(&g, &hl);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn custom_order_must_cover() {
        let g = grid(3, 3);
        let _ = HubLabels::build_with_order(&g, &[0, 1]);
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 0), Some(0));
    }
}
