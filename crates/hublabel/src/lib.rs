//! Pruned 2-hop hub labeling — an exact, labeling-based distance oracle.
//!
//! The paper's fastest `g_phi` backend is **PHL** (pruned highway labeling,
//! Akiba et al. \[16\]): after heavy preprocessing, every vertex stores a
//! label (a set of `(hub, distance)` pairs) such that the shortest-path
//! distance of any pair is the minimum over common hubs. This crate
//! implements the same contract via *pruned landmark labeling* (the
//! vertex-hub sibling of PHL): identical query algorithm, identical role in
//! every FANN_R algorithm, and the same memory behaviour the paper reports
//! in Fig. 9 (largest index of all, growing super-linearly with the graph).
//! See DESIGN.md §5 for the substitution rationale.
//!
//! # Algorithm
//!
//! Vertices are ranked by a heuristic importance order (degree by default).
//! For each vertex `v` in rank order, a *pruned Dijkstra* from `v` visits
//! node `u` at distance `d`; if the labels built so far already certify
//! `dist(v, u) <= d`, the search is pruned at `u`; otherwise `(v, d)` is
//! appended to `u`'s label. The result is a *2-hop cover*: for every pair
//! `(s, t)` some vertex on a shortest `s`-`t` path is in both labels.
//!
//! Queries are a sorted-list merge: `min over common hubs h of
//! L_s(h) + L_t(h)` — microseconds in practice.

pub mod persist;

use roadnet::flat::FlatVec;
use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

/// Hub ordering strategies. Higher-ranked vertices become hubs first and
/// appear in more labels; a good order keeps labels small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Descending degree (ties by id). Good default for road networks.
    Degree,
    /// Input order (0, 1, 2, ...) — only useful as an ablation baseline.
    Input,
}

/// Turn an importance score per vertex into an explicit hub order
/// (most important first). Convenience for [`HubLabels::build_with_order`];
/// e.g. pass contraction-hierarchy ranks for much smaller labels than the
/// degree heuristic (see `crates/bench/src/bin/ablation_label_order.rs`).
pub fn order_by_importance(scores: &[u64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    order.sort_by_key(|&v| (Reverse(scores[v as usize]), v));
    order
}

/// A built hub-label index.
///
/// Labels live in three flat CSR-style arrays (`offsets[v]..offsets[v+1]`
/// indexes node `v`'s `(hub_rank, dist)` pairs, sorted by rank) behind
/// shared [`FlatVec`] handles, so the in-memory layout coincides with the
/// flat v2 on-disk sections and a loaded index serves queries directly from
/// the file buffer (see [`persist`]).
pub struct HubLabels {
    /// `n + 1` entry offsets into `ranks`/`dists`.
    offsets: FlatVec<u64>,
    /// Hub ranks, per-node runs sorted ascending.
    ranks: FlatVec<u32>,
    /// Hub distances, parallel to `ranks`.
    dists: FlatVec<u64>,
}

impl HubLabels {
    /// Build labels with the default ([`Ordering::Degree`]) order.
    pub fn build(g: &Graph) -> Self {
        Self::build_with_ordering(g, Ordering::Degree)
    }

    /// Build labels, giving up when the total label count exceeds
    /// `max_entries` — the moral equivalent of the paper's PHL running out
    /// of memory on the largest datasets (Fig. 9): label size is the
    /// dominant cost and grows super-linearly with the graph.
    pub fn build_with_limit(g: &Graph, max_entries: usize) -> Option<Self> {
        Self::build_inner(g, Ordering::Degree, Some(max_entries))
    }

    /// Build labels with an explicit hub order.
    pub fn build_with_ordering(g: &Graph, ordering: Ordering) -> Self {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        if ordering == Ordering::Degree {
            order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        }
        Self::build_with_order_inner(g, &order, None).expect("no limit given")
    }

    /// Build labels with a fully custom hub order (most important first).
    /// Must be a permutation of `0..g.num_nodes()`.
    pub fn build_with_order(g: &Graph, order: &[NodeId]) -> Self {
        assert_eq!(order.len(), g.num_nodes(), "order must cover every node");
        Self::build_with_order_inner(g, order, None).expect("no limit given")
    }

    fn build_inner(g: &Graph, ordering: Ordering, max_entries: Option<usize>) -> Option<Self> {
        let n = g.num_nodes();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        if ordering == Ordering::Degree {
            order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        }
        Self::build_with_order_inner(g, &order, max_entries)
    }

    fn build_with_order_inner(
        g: &Graph,
        order: &[NodeId],
        max_entries: Option<usize>,
    ) -> Option<Self> {
        let n = g.num_nodes();
        let mut total_entries = 0usize;

        let mut labels: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        // Scratch: distance from the current hub to each earlier hub rank,
        // letting the pruning query run in O(|label(u)|).
        let mut hub_dist_by_rank = vec![INF; n];
        let mut dist = vec![INF; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            for &(r, d) in &labels[hub as usize] {
                hub_dist_by_rank[r as usize] = d;
            }

            dist[hub as usize] = 0;
            touched.push(hub);
            heap.push((Reverse(0), hub));
            while let Some((Reverse(d), u)) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                // Pruning test: is (hub -> u) already certified by earlier hubs?
                let mut certified = INF;
                for &(r, du) in &labels[u as usize] {
                    let dh = hub_dist_by_rank[r as usize];
                    if dh != INF {
                        certified = certified.min(dh + du);
                    }
                }
                if certified <= d {
                    continue;
                }
                labels[u as usize].push((rank, d));
                total_entries += 1;
                if max_entries.is_some_and(|cap| total_entries > cap) {
                    return None; // label budget blown (Fig. 9 "PHL fails")
                }
                for (t, w) in g.neighbors(u) {
                    let nd = d + w as Dist;
                    if nd < dist[t as usize] {
                        dist[t as usize] = nd;
                        touched.push(t);
                        heap.push((Reverse(nd), t));
                    }
                }
            }
            // Reset scratch state touched by this hub.
            for &(r, _) in &labels[hub as usize] {
                hub_dist_by_rank[r as usize] = INF;
            }
            for &v in &touched {
                dist[v as usize] = INF;
            }
            touched.clear();
            heap.clear();
        }
        Some(HubLabels::from_labels(labels))
    }

    /// Build labels in parallel with the default ([`Ordering::Degree`])
    /// order across `workers` threads (`0` = one per core).
    pub fn build_parallel(g: &Graph, workers: usize) -> Self {
        let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        Self::build_with_order_parallel(g, &order, workers)
    }

    /// Parallel pruned-labeling build with an explicit hub order.
    ///
    /// Hubs are processed in fixed-size rank batches: within a batch every
    /// hub's pruned Dijkstra runs concurrently against the labels installed
    /// by *earlier batches* (weaker pruning, so each search yields a
    /// candidate superset with valid distances), then candidates are
    /// re-pruned sequentially in rank order with the exact insert test over
    /// the up-to-date labels. The batch size is a constant — never derived
    /// from `workers` — so the resulting index is deterministic: the same
    /// graph and order produce bit-identical labels on any machine and any
    /// worker count. Like the sequential build the result is an exact 2-hop
    /// cover (re-pruning only keeps an entry when no earlier hub certifies
    /// it, the invariant the PLL correctness proof rests on).
    pub fn build_with_order_parallel(g: &Graph, order: &[NodeId], workers: usize) -> Self {
        assert_eq!(order.len(), g.num_nodes(), "order must cover every node");
        let workers = if workers == 0 {
            roadnet::par::default_workers()
        } else {
            workers
        };
        // Fixed batch width: part of the format, not a tuning knob.
        const BATCH: usize = 64;
        let n = g.num_nodes();
        let mut labels: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        let mut hub_dist_by_rank = vec![INF; n];
        let mut base = 0usize;
        while base < n {
            let batch = &order[base..(base + BATCH).min(n)];
            let candidates = Self::batch_searches(g, batch, &labels, workers);
            for (i, (&hub, cands)) in batch.iter().zip(&candidates).enumerate() {
                let rank = (base + i) as u32;
                for &(r, dh) in &labels[hub as usize] {
                    hub_dist_by_rank[r as usize] = dh;
                }
                for &(u, d) in cands {
                    let mut certified = INF;
                    for &(r, du) in &labels[u as usize] {
                        let dh = hub_dist_by_rank[r as usize];
                        if dh != INF {
                            certified = certified.min(dh + du);
                        }
                    }
                    if certified <= d {
                        continue;
                    }
                    labels[u as usize].push((rank, d));
                }
                for &(r, _) in &labels[hub as usize] {
                    hub_dist_by_rank[r as usize] = INF;
                }
            }
            base += batch.len();
        }
        Self::from_labels(labels)
    }

    /// Run one pruned Dijkstra per batch hub against the pre-batch labels,
    /// returning each hub's `(node, dist)` candidates in settle order.
    /// Workers own their scratch and pull hubs from a shared cursor; results
    /// are merged by batch index, so scheduling never affects the output.
    fn batch_searches(
        g: &Graph,
        batch: &[NodeId],
        labels: &[Vec<(u32, Dist)>],
        workers: usize,
    ) -> Vec<Vec<(NodeId, Dist)>> {
        type Shard = Vec<(usize, Vec<(NodeId, Dist)>)>;
        let n = g.num_nodes();
        let workers = workers.clamp(1, batch.len().max(1));
        let run = |scratch: &mut SearchScratch, hub: NodeId| -> Vec<(NodeId, Dist)> {
            scratch.pruned_dijkstra(g, hub, labels)
        };
        if workers <= 1 {
            let mut scratch = SearchScratch::new(n);
            return batch.iter().map(|&h| run(&mut scratch, h)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let shards: Vec<Shard> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut scratch = SearchScratch::new(n);
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                            if i >= batch.len() {
                                break;
                            }
                            local.push((i, run(&mut scratch, batch[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("label build worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<Vec<(NodeId, Dist)>>> = (0..batch.len()).map(|_| None).collect();
        for (i, c) in shards.into_iter().flatten() {
            out[i] = Some(c);
        }
        out.into_iter().map(|c| c.expect("batch covered")).collect()
    }

    /// Reassemble from per-node label lists (build and v1-decode paths).
    /// Callers must guarantee each label is sorted by hub rank.
    pub(crate) fn from_labels(labels: Vec<Vec<(u32, Dist)>>) -> Self {
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(labels.len() + 1);
        let mut ranks = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        offsets.push(0u64);
        for label in &labels {
            for &(r, d) in label {
                ranks.push(r);
                dists.push(d);
            }
            offsets.push(ranks.len() as u64);
        }
        HubLabels {
            offsets: offsets.into(),
            ranks: ranks.into(),
            dists: dists.into(),
        }
    }

    /// Reassemble directly from the flat CSR arrays (zero-copy load path).
    /// Callers must have validated the CSR invariants.
    pub(crate) fn from_flat_parts(
        offsets: FlatVec<u64>,
        ranks: FlatVec<u32>,
        dists: FlatVec<u64>,
    ) -> Self {
        HubLabels {
            offsets,
            ranks,
            dists,
        }
    }

    /// Internal CSR accessors for persistence.
    pub(crate) fn flat_parts(&self) -> (&FlatVec<u64>, &FlatVec<u32>, &FlatVec<u64>) {
        (&self.offsets, &self.ranks, &self.dists)
    }

    /// Node `v`'s label as parallel `(hub ranks, distances)` slices, sorted
    /// by rank.
    #[inline]
    pub fn label(&self, v: NodeId) -> (&[u32], &[Dist]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.ranks[lo..hi], &self.dists[lo..hi])
    }

    /// Exact shortest-path distance; `None` when `s` and `t` are in
    /// different components (no common hub).
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        if s == t {
            return Some(0);
        }
        let (sr, sd) = self.label(s);
        let (tr, td) = self.label(t);
        let (mut i, mut j) = (0, 0);
        let mut best = INF;
        while i < sr.len() && j < tr.len() {
            match sr[i].cmp(&tr[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(sd[i] + td[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != INF).then_some(best)
    }

    /// Number of labeled vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of `(hub, dist)` entries across all labels.
    pub fn total_label_entries(&self) -> usize {
        self.ranks.len()
    }

    /// Mean label size — the labeling-oracle quality metric.
    pub fn avg_label_size(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.total_label_entries() as f64 / self.num_nodes() as f64
        }
    }

    /// Approximate in-memory size (Fig. 9a analogue).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.ranks.len() * 4 + self.dists.len() * 8
    }

    /// Scoped repair after a batch of edge-weight changes, with the
    /// default ([`Ordering::Degree`]) hub order. `self` must have been
    /// built with that order (both build paths use it); the order is
    /// topology-only, so it is recomputable from the patched graph.
    pub fn repair_scoped(
        &self,
        g: &Graph,
        touched: &[(NodeId, NodeId)],
    ) -> (HubLabels, LabelRepairStats) {
        let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        order.sort_by_key(|&v| (Reverse(g.degree(v)), v));
        self.repair_scoped_with_order(g, &order, touched)
    }

    /// Scoped repair with an explicit hub order (must be the order `self`
    /// was built with). `g` is the *patched* graph; `touched` lists the
    /// edges whose weights differ from the graph the labels were built on
    /// (a superset is safe). Returns labels **bit-identical** to
    /// `build_with_order(g, order)` plus repair-cost counters.
    ///
    /// Why a per-hub certificate exists: the build's pruned Dijkstra
    /// relaxes the neighbors of a node only when the node is settled
    /// *unpruned*, i.e. exactly when it receives a label entry. So if hub
    /// `h`'s search traversed edge `(a, b)`, then `rank(h)` appears in the
    /// old label of `a` or `b` (every node also labels itself, covering
    /// `h ∈ {a, b}`). Replaying hubs in rank order, an unflagged hub's
    /// search reads only inputs — edge weights, its own label, and the
    /// labels (restricted to earlier ranks) of nodes it settles — that are
    /// unchanged, hence reproduces its old output verbatim and can be
    /// copied instead of searched. When a re-run hub's output differs at
    /// node `u`, every later hub whose old search could have read
    /// `label(u)` — `u`'s own rank, plus ranks in the old labels of `u`'s
    /// neighbors (the only way a search settles `u`) — is flagged too.
    /// This holds for weight increases and decreases alike.
    pub fn repair_scoped_with_order(
        &self,
        g: &Graph,
        order: &[NodeId],
        touched: &[(NodeId, NodeId)],
    ) -> (HubLabels, LabelRepairStats) {
        let n = g.num_nodes();
        assert_eq!(order.len(), n, "order must cover every node");
        assert_eq!(self.num_nodes(), n, "labels must match the graph");

        let mut rank_of = vec![0u32; n];
        for (rank, &hub) in order.iter().enumerate() {
            rank_of[hub as usize] = rank as u32;
        }
        // Old entries inverted by hub rank: by_rank[r] = (node, dist) in
        // ascending node order (built by scanning nodes in id order).
        let mut by_rank: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            let (ranks, dists) = self.label(v);
            for (&r, &d) in ranks.iter().zip(dists) {
                by_rank[r as usize].push((v, d));
            }
        }

        // Seed: hubs whose old search may have traversed a touched edge.
        let mut affected = vec![false; n];
        for &(a, b) in touched {
            for v in [a, b] {
                let (ranks, _) = self.label(v);
                for &r in ranks {
                    affected[r as usize] = true;
                }
            }
        }

        let mut labels: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
        let mut scratch = SearchScratch::new(n);
        let mut roots_searched = 0usize;
        for (rank, &hub) in order.iter().enumerate() {
            let old = &by_rank[rank];
            if !affected[rank] {
                for &(v, d) in old {
                    labels[v as usize].push((rank as u32, d));
                }
                continue;
            }
            roots_searched += 1;
            let mut out = scratch.pruned_dijkstra(g, hub, &labels);
            out.sort_unstable_by_key(|&(v, _)| v);
            for &(v, d) in &out {
                labels[v as usize].push((rank as u32, d));
            }
            // Diff against the old entries (both sorted by node id); any
            // node whose entry at this rank changed invalidates later
            // hubs that could have observed it.
            let (mut i, mut j) = (0, 0);
            let dirty = |u: NodeId, affected: &mut Vec<bool>| {
                let ru = rank_of[u as usize] as usize;
                if ru > rank {
                    affected[ru] = true;
                }
                for (x, _) in g.neighbors(u) {
                    let (ranks, _) = self.label(x);
                    for &r2 in ranks {
                        if (r2 as usize) > rank {
                            affected[r2 as usize] = true;
                        }
                    }
                }
            };
            while i < old.len() || j < out.len() {
                let changed = if i == old.len() {
                    Some(out[j].0)
                } else if j == out.len() {
                    Some(old[i].0)
                } else {
                    match old[i].0.cmp(&out[j].0) {
                        std::cmp::Ordering::Less => Some(old[i].0),
                        std::cmp::Ordering::Greater => Some(out[j].0),
                        std::cmp::Ordering::Equal => (old[i].1 != out[j].1).then_some(old[i].0),
                    }
                };
                if let Some(u) = changed {
                    dirty(u, &mut affected)
                }
                if i < old.len() && (j == out.len() || old[i].0 <= out[j].0) {
                    let adv_j = j < out.len() && old[i].0 == out[j].0;
                    i += 1;
                    if adv_j {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
            }
        }
        (
            HubLabels::from_labels(labels),
            LabelRepairStats {
                roots_searched,
                roots_total: n,
            },
        )
    }
}

/// Repair-cost counters from [`HubLabels::repair_scoped`]: how many hub
/// searches actually re-ran versus the full-rebuild count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelRepairStats {
    /// Hubs whose pruned search was re-run.
    pub roots_searched: usize,
    /// Hubs a from-scratch rebuild would run (one per vertex).
    pub roots_total: usize,
}

impl PartialEq for HubLabels {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.ranks == other.ranks && self.dists == other.dists
    }
}

/// Reusable per-worker state for one pruned Dijkstra.
struct SearchScratch {
    dist: Vec<Dist>,
    hub_dist_by_rank: Vec<Dist>,
    touched: Vec<NodeId>,
    heap: BinaryHeap<(Reverse<Dist>, NodeId)>,
}

impl SearchScratch {
    fn new(n: usize) -> Self {
        SearchScratch {
            dist: vec![INF; n],
            hub_dist_by_rank: vec![INF; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Pruned Dijkstra from `hub` against a fixed label snapshot. Returns
    /// `(node, dist)` for every settled, unpruned node in settle order.
    fn pruned_dijkstra(
        &mut self,
        g: &Graph,
        hub: NodeId,
        labels: &[Vec<(u32, Dist)>],
    ) -> Vec<(NodeId, Dist)> {
        let mut out = Vec::new();
        for &(r, d) in &labels[hub as usize] {
            self.hub_dist_by_rank[r as usize] = d;
        }
        self.dist[hub as usize] = 0;
        self.touched.push(hub);
        self.heap.push((Reverse(0), hub));
        while let Some((Reverse(d), u)) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let mut certified = INF;
            for &(r, du) in &labels[u as usize] {
                let dh = self.hub_dist_by_rank[r as usize];
                if dh != INF {
                    certified = certified.min(dh + du);
                }
            }
            if certified <= d {
                continue;
            }
            out.push((u, d));
            for (t, w) in g.neighbors(u) {
                let nd = d + w as Dist;
                if nd < self.dist[t as usize] {
                    self.dist[t as usize] = nd;
                    self.touched.push(t);
                    self.heap.push((Reverse(nd), t));
                }
            }
        }
        for &(r, _) in &labels[hub as usize] {
            self.hub_dist_by_rank[r as usize] = INF;
        }
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.heap.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x * y) % 2);
                }
            }
        }
        b.build()
    }

    fn assert_exact(g: &Graph, hl: &HubLabels) {
        for s in 0..g.num_nodes() as NodeId {
            let truth = dijkstra_all(g, s);
            for t in 0..g.num_nodes() as NodeId {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(hl.distance(s, t), expect, "pair {s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_grid() {
        let g = grid(5, 4);
        let hl = HubLabels::build(&g);
        assert_exact(&g, &hl);
    }

    #[test]
    fn exact_with_input_ordering() {
        let g = grid(4, 4);
        let hl = HubLabels::build_with_ordering(&g, Ordering::Input);
        assert_exact(&g, &hl);
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 5);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 1), Some(2));
        assert_eq!(hl.distance(2, 3), Some(5));
        assert_eq!(hl.distance(0, 2), None);
        assert_eq!(hl.distance(1, 3), None);
    }

    #[test]
    fn self_distance_zero() {
        let g = grid(3, 3);
        let hl = HubLabels::build(&g);
        for v in 0..9 {
            assert_eq!(hl.distance(v, v), Some(0));
        }
    }

    #[test]
    fn labels_sorted_by_rank() {
        let g = grid(5, 5);
        let hl = HubLabels::build(&g);
        for v in 0..hl.num_nodes() as NodeId {
            let (ranks, _) = hl.label(v);
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parallel_build_is_exact_and_worker_count_invariant() {
        let g = grid(6, 5);
        let canonical = HubLabels::build_parallel(&g, 1);
        assert_exact(&g, &canonical);
        for workers in [2, 3, 8] {
            let hl = HubLabels::build_parallel(&g, workers);
            assert!(
                hl == canonical,
                "labels differ with {workers} workers (batch result must not depend on scheduling)"
            );
        }
    }

    #[test]
    fn parallel_build_matches_sequential_answers() {
        let g = grid(7, 4);
        let seq = HubLabels::build(&g);
        let par = HubLabels::build_parallel(&g, 4);
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(par.distance(s, t), seq.distance(s, t), "pair {s}->{t}");
            }
        }
    }

    #[test]
    fn parallel_build_with_custom_order_is_exact() {
        let g = grid(5, 5);
        let order: Vec<NodeId> = (0..25).rev().collect();
        let hl = HubLabels::build_with_order_parallel(&g, &order, 3);
        assert_exact(&g, &hl);
    }

    #[test]
    fn stats_are_consistent() {
        let g = grid(4, 3);
        let hl = HubLabels::build(&g);
        assert_eq!(hl.num_nodes(), 12);
        assert!(hl.total_label_entries() >= 12); // every node labels itself
        assert!(hl.avg_label_size() >= 1.0);
        assert!(hl.memory_bytes() > 0);
    }

    #[test]
    fn limit_aborts_large_builds_but_allows_small() {
        let g = grid(6, 6);
        assert!(HubLabels::build_with_limit(&g, 5).is_none());
        let hl = HubLabels::build_with_limit(&g, 1_000_000).unwrap();
        assert_exact(&g, &hl);
    }

    #[test]
    fn custom_order_stays_exact() {
        let g = grid(5, 5);
        // Reverse-id order: terrible, but must remain exact.
        let order: Vec<NodeId> = (0..25).rev().collect();
        let hl = HubLabels::build_with_order(&g, &order);
        assert_exact(&g, &hl);
        // order_by_importance sorts descending by score.
        let scores: Vec<u64> = (0..25).map(|v| v as u64 * 7 % 13).collect();
        let order = order_by_importance(&scores);
        let hl = HubLabels::build_with_order(&g, &order);
        assert_exact(&g, &hl);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn custom_order_must_cover() {
        let g = grid(3, 3);
        let _ = HubLabels::build_with_order(&g, &[0, 1]);
    }

    fn patched(g: &Graph, patches: &[(NodeId, NodeId, u32)]) -> Graph {
        g.with_patched_weights(patches).unwrap()
    }

    #[test]
    fn repair_scoped_is_bit_identical_to_rebuild() {
        let g = grid(6, 5);
        let hl = HubLabels::build(&g);
        // Increase, decrease, and a mixed batch — each must reproduce the
        // from-scratch index exactly.
        for patch in [
            vec![(7u32, 8u32, 9u32)],
            vec![(12, 18, 1)],
            vec![(0, 1, 5), (14, 15, 1), (22, 28, 7)],
        ] {
            let g2 = patched(&g, &patch);
            let touched: Vec<(NodeId, NodeId)> = patch.iter().map(|&(u, v, _)| (u, v)).collect();
            let (repaired, stats) = hl.repair_scoped(&g2, &touched);
            let rebuilt = HubLabels::build(&g2);
            assert!(repaired == rebuilt, "repair diverged for patch {patch:?}");
            assert_eq!(stats.roots_total, g.num_nodes());
            assert!(stats.roots_searched <= stats.roots_total);
        }
    }

    #[test]
    fn repair_scoped_handles_repeated_batches() {
        // Chain repairs: each repair feeds the next, staying identical to
        // a rebuild at every step (including a weight round-trip).
        let g0 = grid(5, 5);
        let mut hl = HubLabels::build(&g0);
        let mut g = g0.clone();
        for patch in [(6u32, 7u32, 9u32), (6, 7, 1), (17, 22, 4), (6, 7, 2)] {
            g = patched(&g, &[patch]);
            let (next, _) = hl.repair_scoped(&g, &[(patch.0, patch.1)]);
            assert!(next == HubLabels::build(&g), "diverged at patch {patch:?}");
            hl = next;
        }
    }

    #[test]
    fn repair_scoped_empty_scope_is_a_clone() {
        let g = grid(4, 4);
        let hl = HubLabels::build(&g);
        let (same, stats) = hl.repair_scoped(&g, &[]);
        assert!(same == hl);
        assert_eq!(stats.roots_searched, 0);
    }

    #[test]
    fn repair_scoped_repairs_parallel_built_labels() {
        // The batched parallel build is bit-identical to the sequential
        // one, so its output is a valid repair starting point too.
        let g = grid(6, 4);
        let hl = HubLabels::build_parallel(&g, 4);
        let g2 = patched(&g, &[(5, 11, 8), (13, 14, 1)]);
        let (repaired, stats) = hl.repair_scoped(&g2, &[(5, 11), (13, 14)]);
        assert!(repaired == HubLabels::build(&g2));
        assert!(
            stats.roots_searched < stats.roots_total,
            "a two-edge patch should not invalidate every hub"
        );
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.distance(0, 0), Some(0));
    }
}
