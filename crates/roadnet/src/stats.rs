//! Descriptive statistics of a road network.
//!
//! Used to verify that synthetic substitutes look like the paper's DIMACS
//! graphs (Table III: ~2.2–2.4 undirected edges per node, near-planar) and
//! surfaced by the `fannr stats` CLI subcommand.

use crate::dijkstra::dijkstra_all;
use crate::graph::{Graph, NodeId};
use crate::{Dist, INF};

/// Summary statistics for a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    /// Undirected edges per node (Table III reports ~2.2–2.4).
    pub edges_per_node: f64,
    pub min_degree: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    pub min_weight: u32,
    pub max_weight: u32,
    pub avg_weight: f64,
    /// Size of the largest connected component.
    pub largest_component: usize,
    /// Lower bound on the diameter from a double-sweep (exact on trees).
    pub diameter_lb: Dist,
}

/// Compute [`GraphStats`]. Cost: a few BFS/DFS passes plus two Dijkstras.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_nodes();
    let mut min_degree = usize::MAX;
    let mut max_degree = 0usize;
    for v in 0..n {
        let d = g.degree(v as NodeId);
        min_degree = min_degree.min(d);
        max_degree = max_degree.max(d);
    }
    if n == 0 {
        min_degree = 0;
    }
    let (mut min_w, mut max_w, mut sum_w) = (u32::MAX, 0u32, 0u64);
    let mut edge_count = 0usize;
    for (_, _, w) in g.edges() {
        min_w = min_w.min(w);
        max_w = max_w.max(w);
        sum_w += w as u64;
        edge_count += 1;
    }
    if edge_count == 0 {
        min_w = 0;
    }

    // Largest component via repeated DFS.
    let mut seen = vec![false; n];
    let mut largest = 0usize;
    let mut stack = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut size = 0usize;
        seen[s] = true;
        stack.push(s as NodeId);
        while let Some(v) = stack.pop() {
            size += 1;
            for (t, _) in g.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        largest = largest.max(size);
    }

    // Double sweep: farthest node from 0, then farthest from that.
    let diameter_lb = if n == 0 {
        0
    } else {
        let far = |src: NodeId| -> (NodeId, Dist) {
            dijkstra_all(g, src)
                .into_iter()
                .enumerate()
                .filter(|&(_, d)| d != INF)
                .max_by_key(|&(v, d)| (d, v))
                .map(|(v, d)| (v as NodeId, d))
                .unwrap_or((src, 0))
        };
        let (a, _) = far(0);
        far(a).1
    };

    GraphStats {
        nodes: n,
        edges: edge_count,
        edges_per_node: if n == 0 {
            0.0
        } else {
            edge_count as f64 / n as f64
        },
        min_degree,
        max_degree,
        avg_degree: if n == 0 {
            0.0
        } else {
            g.num_arcs() as f64 / n as f64
        },
        min_weight: min_w,
        max_weight: max_w,
        avg_weight: if edge_count == 0 {
            0.0
        } else {
            sum_w as f64 / edge_count as f64
        },
        largest_component: largest,
        diameter_lb,
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes:             {}", self.nodes)?;
        writeln!(
            f,
            "edges:             {} ({:.2} per node)",
            self.edges, self.edges_per_node
        )?;
        writeln!(
            f,
            "degree:            min {} / avg {:.2} / max {}",
            self.min_degree, self.avg_degree, self.max_degree
        )?;
        writeln!(
            f,
            "edge weight:       min {} / avg {:.1} / max {}",
            self.min_weight, self.avg_weight, self.max_weight
        )?;
        writeln!(
            f,
            "largest component: {} ({:.1}%)",
            self.largest_component,
            if self.nodes == 0 {
                0.0
            } else {
                100.0 * self.largest_component as f64 / self.nodes as f64
            }
        )?;
        write!(f, "diameter >=        {}", self.diameter_lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn path_graph_stats() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 3, 4);
        let s = graph_stats(&b.build());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!((s.min_degree, s.max_degree), (1, 2));
        assert_eq!((s.min_weight, s.max_weight), (2, 4));
        assert_eq!(s.largest_component, 4);
        assert_eq!(s.diameter_lb, 9); // exact on a path
    }

    #[test]
    fn disconnected_components_counted() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 1);
        let s = graph_stats(&b.build());
        assert_eq!(s.largest_component, 3);
    }

    #[test]
    fn empty_graph_is_safe() {
        let s = graph_stats(&GraphBuilder::new().build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.diameter_lb, 0);
    }

    #[test]
    fn display_is_complete() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        b.add_edge(0, 1, 5);
        let text = graph_stats(&b.build()).to_string();
        assert!(text.contains("nodes:"));
        assert!(text.contains("diameter >="));
    }
}
