//! Shortest-path *route* reconstruction.
//!
//! The FANN_R algorithms only need distances, but the applications the
//! paper motivates (logistics, meetings) ultimately dispatch someone along
//! a route. This module adds parent-tracking Dijkstra so examples and
//! downstream users can materialize the winning paths.

use crate::graph::{Graph, NodeId};
use crate::{Dist, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shortest path from `s` to `t` as `(total_dist, nodes)`; the node list
/// starts with `s` and ends with `t`. `None` when unreachable.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
    if s == t {
        return Some((0, vec![s]));
    }
    let n = g.num_nodes();
    let mut dist = vec![INF; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push((Reverse(0), s));
    while let Some((Reverse(d), v)) = heap.pop() {
        if v == t {
            break;
        }
        if d > dist[v as usize] {
            continue;
        }
        for (nb, w) in g.neighbors(v) {
            let nd = d + w as Dist;
            if nd < dist[nb as usize] {
                dist[nb as usize] = nd;
                parent[nb as usize] = v;
                heap.push((Reverse(nd), nb));
            }
        }
    }
    if dist[t as usize] == INF {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some((dist[t as usize], path))
}

/// Total weight of a node sequence; `None` if any hop is not an edge.
/// Useful as a route validator.
pub fn path_length(g: &Graph, path: &[NodeId]) -> Option<Dist> {
    if path.is_empty() {
        return None;
    }
    let mut total: Dist = 0;
    for hop in path.windows(2) {
        total += g.edge_weight(hop[0], hop[1])? as Dist;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 5);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn reconstructs_shortest_route() {
        let g = diamond();
        let (d, path) = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(d, 2);
        assert_eq!(path, vec![0, 1, 3]);
        assert_eq!(path_length(&g, &path), Some(2));
    }

    #[test]
    fn same_node_is_trivial_path() {
        let g = diamond();
        assert_eq!(shortest_path(&g, 2, 2), Some((0, vec![2])));
        assert_eq!(path_length(&g, &[2]), Some(0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        assert_eq!(shortest_path(&g, 0, 1), None);
    }

    #[test]
    fn distance_matches_pair_dijkstra_on_random_pairs() {
        let mut b = GraphBuilder::new();
        for y in 0..5u32 {
            for x in 0..5u32 {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..5u32 {
            for x in 0..5u32 {
                let v = y * 5 + x;
                if x + 1 < 5 {
                    b.add_edge(v, v + 1, 1 + (x * 3 + y) % 4);
                }
                if y + 1 < 5 {
                    b.add_edge(v, v + 5, 1 + (x + y * 2) % 3);
                }
            }
        }
        let g = b.build();
        for s in 0..25 {
            for t in 0..25 {
                let got = shortest_path(&g, s, t);
                let want = dijkstra_pair(&g, s, t);
                assert_eq!(got.as_ref().map(|&(d, _)| d), want, "{s}->{t}");
                if let Some((d, path)) = got {
                    assert_eq!(path_length(&g, &path), Some(d), "invalid route {s}->{t}");
                    assert_eq!(path[0], s);
                    assert_eq!(*path.last().unwrap(), t);
                }
            }
        }
    }

    #[test]
    fn path_length_rejects_non_paths() {
        let g = diamond();
        assert_eq!(path_length(&g, &[0, 3]), None); // not an edge
        assert_eq!(path_length(&g, &[]), None);
    }
}
