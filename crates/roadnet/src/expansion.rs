//! Incremental network expansion (INE) as a pausable iterator.
//!
//! [`DijkstraIter`] settles nodes from-near-to-far around a source and can be
//! suspended and resumed at any point: all search state lives in the struct,
//! so `|Q|` expansions can be interleaved — the "switchable" multi-source
//! Dijkstra the paper's `R-List` and `Exact-max` need (§IV-A implementation
//! details). Search state lives in a recycled [`QueryScratch`] (epoch-stamped
//! arrays plus a reusable heap), so a long stream of expansions over the same
//! graph is allocation-free after warm-up: construct via
//! [`DijkstraIter::with_scratch`], recover the buffers afterwards with
//! [`DijkstraIter::into_scratch`], and hand them to the next query.

use crate::cancel::CancelCheck;
use crate::graph::{Graph, NodeId};
use crate::recorder::SearchRecorder;
use crate::scratch::QueryScratch;
use crate::Dist;

/// A lazily-advancing Dijkstra expansion from a single source.
///
/// `next()` settles and returns the next nearest unsettled node as
/// `(node, dist)`; nodes are produced in non-decreasing distance order and
/// each node at most once. The `R` parameter is a [`SearchRecorder`]
/// instrumentation hook; `C` is a [`CancelCheck`] cancellation hook. The
/// default `()` for both records/cancels nothing and costs nothing.
///
/// A cancelled expansion yields `None` from `next()` exactly like an
/// exhausted one; drivers must consult [`DijkstraIter::was_cancelled`] (or
/// the token's exact check) before interpreting exhaustion as "no more
/// reachable nodes".
pub struct DijkstraIter<'g, R: SearchRecorder = (), C: CancelCheck = ()> {
    graph: &'g Graph,
    scratch: QueryScratch,
    rec: R,
    cancel: C,
    cancelled: bool,
}

impl<'g> DijkstraIter<'g> {
    pub fn new(graph: &'g Graph, source: NodeId) -> Self {
        Self::with_scratch(graph, source, QueryScratch::new())
    }

    /// Start an expansion reusing `scratch`'s buffers (no per-query
    /// allocation once the scratch has grown to `|V|`). Get the buffers
    /// back with [`DijkstraIter::into_scratch`] when the expansion is done.
    pub fn with_scratch(graph: &'g Graph, source: NodeId, scratch: QueryScratch) -> Self {
        Self::recorded(graph, source, scratch, ())
    }
}

impl<'g, R: SearchRecorder> DijkstraIter<'g, R> {
    /// [`DijkstraIter::with_scratch`] with a live [`SearchRecorder`] that
    /// observes every settle/push/pop/relaxation of the expansion.
    pub fn recorded(graph: &'g Graph, source: NodeId, scratch: QueryScratch, rec: R) -> Self {
        Self::cancellable(graph, source, scratch, rec, ())
    }
}

impl<'g, R: SearchRecorder, C: CancelCheck> DijkstraIter<'g, R, C> {
    /// [`DijkstraIter::recorded`] with a live [`CancelCheck`] polled once
    /// per settled node; a cancelled expansion stops yielding and reports
    /// through [`DijkstraIter::was_cancelled`]. The `()` check makes this
    /// identical to the uncancellable path.
    pub fn cancellable(
        graph: &'g Graph,
        source: NodeId,
        mut scratch: QueryScratch,
        rec: R,
        cancel: C,
    ) -> Self {
        assert!(
            (source as usize) < graph.num_nodes(),
            "source {source} out of range"
        );
        scratch.begin(graph.num_nodes());
        scratch.set_dist(source, 0);
        scratch.push(0, source);
        rec.heap_push();
        DijkstraIter {
            graph,
            scratch,
            rec,
            cancel,
            cancelled: false,
        }
    }

    /// Whether this expansion stopped because its [`CancelCheck`] fired
    /// (as opposed to exhausting the reachable component).
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Recover the scratch for reuse by a later expansion.
    pub fn into_scratch(self) -> QueryScratch {
        self.scratch
    }

    /// Distance of the next node that would be settled, without settling it.
    pub fn peek_dist(&mut self) -> Option<Dist> {
        self.skip_stale();
        self.scratch.peek().map(|(d, _)| d)
    }

    /// Number of nodes settled so far.
    pub fn settled_count(&self) -> usize {
        self.scratch.settled_count()
    }

    /// Whether `v` has already been settled, and at what distance.
    pub fn settled_dist(&self, v: NodeId) -> Option<Dist> {
        self.scratch.is_settled(v).then(|| self.scratch.dist(v))
    }

    fn skip_stale(&mut self) {
        while let Some((d, v)) = self.scratch.peek() {
            if self.scratch.is_settled(v) || d > self.scratch.dist(v) {
                self.scratch.pop_discard();
                self.rec.heap_pop();
            } else {
                break;
            }
        }
    }
}

impl<R: SearchRecorder, C: CancelCheck> Iterator for DijkstraIter<'_, R, C> {
    type Item = (NodeId, Dist);

    fn next(&mut self) -> Option<(NodeId, Dist)> {
        if self.cancelled || self.cancel.poll_cancelled() {
            self.cancelled = true;
            return None;
        }
        self.skip_stale();
        let (d, v) = self.scratch.pop()?;
        self.rec.heap_pop();
        self.scratch.mark_settled(v);
        self.rec.node_settled();
        for (nb, w) in self.graph.neighbors(v) {
            self.rec.edge_relaxed();
            if self.scratch.is_settled(nb) {
                continue;
            }
            let nd = d + w as Dist;
            if nd < self.scratch.dist(nb) {
                self.scratch.set_dist(nb, nd);
                self.scratch.push(nd, nb);
                self.rec.heap_push();
            }
        }
        Some((v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_all;
    use crate::graph::GraphBuilder;
    use crate::INF;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 3);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn settles_in_distance_order() {
        let g = diamond();
        let order: Vec<_> = DijkstraIter::new(&g, 0).collect();
        assert_eq!(order, vec![(0, 0), (1, 1), (3, 2), (2, 3)]);
    }

    #[test]
    fn matches_full_dijkstra() {
        let g = diamond();
        let full = dijkstra_all(&g, 2);
        let mut seen = vec![INF; g.num_nodes()];
        for (v, d) in DijkstraIter::new(&g, 2) {
            seen[v as usize] = d;
        }
        assert_eq!(seen, full);
    }

    #[test]
    fn peek_does_not_consume() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        assert_eq!(it.peek_dist(), Some(0));
        assert_eq!(it.peek_dist(), Some(0));
        assert_eq!(it.next(), Some((0, 0)));
        assert_eq!(it.peek_dist(), Some(1));
    }

    #[test]
    fn pausable_and_resumable() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        let first: Vec<_> = it.by_ref().take(2).collect();
        assert_eq!(first, vec![(0, 0), (1, 1)]);
        // "Switch away" (do other work), then resume.
        let rest: Vec<_> = it.collect();
        assert_eq!(rest, vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn exhausts_on_disconnected_component() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        b.add_node(2.0, 0.0);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let settled: Vec<_> = DijkstraIter::new(&g, 0).collect();
        assert_eq!(settled, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn settled_dist_tracks_history() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        it.by_ref().take(3).for_each(drop);
        assert_eq!(it.settled_dist(3), Some(2));
        assert_eq!(it.settled_dist(2), None);
        assert_eq!(it.settled_count(), 3);
    }

    #[test]
    fn recycled_scratch_gives_identical_expansion() {
        let g = diamond();
        let baseline: Vec<Vec<_>> = (0..4).map(|s| DijkstraIter::new(&g, s).collect()).collect();
        let mut scratch = QueryScratch::new();
        for s in 0..4u32 {
            let mut it = DijkstraIter::with_scratch(&g, s, scratch);
            let order: Vec<_> = it.by_ref().collect();
            assert_eq!(order, baseline[s as usize], "source {s}");
            scratch = it.into_scratch();
        }
    }

    #[test]
    fn recycled_scratch_partial_expansion_is_clean() {
        let g = diamond();
        // Abandon an expansion midway; the next query must be unaffected.
        let mut it = DijkstraIter::new(&g, 0);
        it.by_ref().take(2).for_each(drop);
        let scratch = it.into_scratch();
        let order: Vec<_> = DijkstraIter::with_scratch(&g, 2, scratch).collect();
        let fresh: Vec<_> = DijkstraIter::new(&g, 2).collect();
        assert_eq!(order, fresh);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = diamond();
        let _ = DijkstraIter::new(&g, 99);
    }
}
