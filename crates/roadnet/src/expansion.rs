//! Incremental network expansion (INE) as a pausable iterator.
//!
//! [`DijkstraIter`] settles nodes from-near-to-far around a source and can be
//! suspended and resumed at any point: all search state lives in the struct,
//! so `|Q|` expansions can be interleaved — the "switchable" multi-source
//! Dijkstra the paper's `R-List` and `Exact-max` need (§IV-A implementation
//! details). Distance state is kept in hash maps, so memory is proportional
//! to the *explored* region, not `|V|`, keeping the practical footprint of
//! `|Q|` concurrent expansions far below the `O(|Q||V|)` worst case.

use crate::graph::{Graph, NodeId};
use crate::Dist;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A lazily-advancing Dijkstra expansion from a single source.
///
/// `next()` settles and returns the next nearest unsettled node as
/// `(node, dist)`; nodes are produced in non-decreasing distance order and
/// each node at most once.
pub struct DijkstraIter<'g> {
    graph: &'g Graph,
    dist: HashMap<NodeId, Dist>,
    settled: HashSet<NodeId>,
    heap: BinaryHeap<(Reverse<Dist>, NodeId)>,
}

impl<'g> DijkstraIter<'g> {
    pub fn new(graph: &'g Graph, source: NodeId) -> Self {
        assert!(
            (source as usize) < graph.num_nodes(),
            "source {source} out of range"
        );
        let mut dist = HashMap::new();
        dist.insert(source, 0);
        let mut heap = BinaryHeap::new();
        heap.push((Reverse(0), source));
        DijkstraIter {
            graph,
            dist,
            settled: HashSet::new(),
            heap,
        }
    }

    /// Distance of the next node that would be settled, without settling it.
    pub fn peek_dist(&mut self) -> Option<Dist> {
        self.skip_stale();
        self.heap.peek().map(|&(Reverse(d), _)| d)
    }

    /// Number of nodes settled so far.
    pub fn settled_count(&self) -> usize {
        self.settled.len()
    }

    /// Whether `v` has already been settled, and at what distance.
    pub fn settled_dist(&self, v: NodeId) -> Option<Dist> {
        self.settled.contains(&v).then(|| self.dist[&v])
    }

    fn skip_stale(&mut self) {
        while let Some(&(Reverse(d), v)) = self.heap.peek() {
            if self.settled.contains(&v) || self.dist.get(&v).is_none_or(|&cur| d > cur) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl Iterator for DijkstraIter<'_> {
    type Item = (NodeId, Dist);

    fn next(&mut self) -> Option<(NodeId, Dist)> {
        self.skip_stale();
        let (Reverse(d), v) = self.heap.pop()?;
        self.settled.insert(v);
        for (nb, w) in self.graph.neighbors(v) {
            if self.settled.contains(&nb) {
                continue;
            }
            let nd = d + w as Dist;
            let entry = self.dist.entry(nb).or_insert(Dist::MAX);
            if nd < *entry {
                *entry = nd;
                self.heap.push((Reverse(nd), nb));
            }
        }
        Some((v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_all;
    use crate::graph::GraphBuilder;
    use crate::INF;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 3);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn settles_in_distance_order() {
        let g = diamond();
        let order: Vec<_> = DijkstraIter::new(&g, 0).collect();
        assert_eq!(order, vec![(0, 0), (1, 1), (3, 2), (2, 3)]);
    }

    #[test]
    fn matches_full_dijkstra() {
        let g = diamond();
        let full = dijkstra_all(&g, 2);
        let mut seen = vec![INF; g.num_nodes()];
        for (v, d) in DijkstraIter::new(&g, 2) {
            seen[v as usize] = d;
        }
        assert_eq!(seen, full);
    }

    #[test]
    fn peek_does_not_consume() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        assert_eq!(it.peek_dist(), Some(0));
        assert_eq!(it.peek_dist(), Some(0));
        assert_eq!(it.next(), Some((0, 0)));
        assert_eq!(it.peek_dist(), Some(1));
    }

    #[test]
    fn pausable_and_resumable() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        let first: Vec<_> = it.by_ref().take(2).collect();
        assert_eq!(first, vec![(0, 0), (1, 1)]);
        // "Switch away" (do other work), then resume.
        let rest: Vec<_> = it.collect();
        assert_eq!(rest, vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn exhausts_on_disconnected_component() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        b.add_node(2.0, 0.0);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let settled: Vec<_> = DijkstraIter::new(&g, 0).collect();
        assert_eq!(settled, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn settled_dist_tracks_history() {
        let g = diamond();
        let mut it = DijkstraIter::new(&g, 0);
        it.by_ref().take(3).for_each(drop);
        assert_eq!(it.settled_dist(3), Some(2));
        assert_eq!(it.settled_dist(2), None);
        assert_eq!(it.settled_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = diamond();
        let _ = DijkstraIter::new(&g, 99);
    }
}
