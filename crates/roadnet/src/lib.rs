//! Road-network substrate for FANN_R queries.
//!
//! A road network is modeled as an undirected weighted graph `G = (V, E, W)`
//! with positive integer edge weights and planar node coordinates
//! (paper §II-A). This crate provides:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation with
//!   node coordinates, built through [`GraphBuilder`].
//! * Exact shortest-path search: [`dijkstra`] (single-source, point-to-point,
//!   bounded), [`bidirectional`] point-to-point search, and [`astar`] with an
//!   admissible Euclidean lower bound ([`LowerBound`]).
//! * [`expansion::DijkstraIter`] — an *incremental network expansion* (INE)
//!   iterator that settles nodes from-near-to-far and can be paused/resumed,
//!   the "switchable" primitive behind the paper's `R-List` and `Exact-max`
//!   algorithms (§IV-A implementation details).
//! * [`multisource::ObjectStreams`] — one from-near-to-far data-object queue
//!   per query point, advanced alternately (the *list of queues* of §III-B).
//! * [`io`] — DIMACS challenge-9 `.gr`/`.co` parsing and a compact text
//!   format used by tests and examples.
//! * [`components`] — extraction of the largest connected component
//!   (the paper cleans unconnected components and self-loops in
//!   preprocessing, §VI-A).

pub mod astar;
pub mod bidirectional;
pub mod cancel;
pub mod components;
pub mod dijkstra;
pub mod dynamic;
pub mod embed;
pub mod expansion;
pub mod flat;
pub mod graph;
pub mod io;
pub mod lowerbound;
pub mod multisource;
pub mod par;
pub mod path;
pub mod recorder;
pub mod scratch;
pub mod shardmap;
pub mod snapshot;
pub mod stats;
pub mod svg;

pub use astar::{astar_pair, astar_pair_cancellable, astar_pair_recorded, astar_pair_with};
pub use bidirectional::bidirectional_pair;
pub use cancel::{CancelCheck, CancelToken, Cancelled};
pub use components::largest_connected_component;
pub use dijkstra::{
    dijkstra_all, dijkstra_bounded, dijkstra_pair, dijkstra_pair_cancellable,
    dijkstra_pair_recorded, dijkstra_pair_with,
};
pub use dynamic::{DynamicNetwork, UpdateError};
pub use embed::{embed_edge_points, snap_to_vertex, EdgePoint};
pub use expansion::DijkstraIter;
pub use flat::{FlatError, FlatFile, FlatStreamWriter, FlatVec, FlatWriter, LoadMode};
pub use graph::{Graph, GraphBuilder, NodeId, Point, Weight};
pub use lowerbound::LowerBound;
pub use multisource::{ObjectStreams, SharedExpansion, SharedStreams, StreamSet};
pub use par::{default_workers, par_map_indexed};
pub use path::shortest_path;
pub use recorder::SearchRecorder;
pub use scratch::{QueryScratch, ScratchPool};
pub use shardmap::{ShardMap, SHARD_MAP_MAGIC, SHARD_MAP_VERSION};
pub use snapshot::{AppliedUpdate, NetworkSnapshot, RepairScope, SnapshotCell, WeightUpdate};

/// A network (shortest-path) distance. `u64` so that sums of many `u32`
/// edge weights cannot overflow.
pub type Dist = u64;

/// Sentinel for "unreachable".
pub const INF: Dist = u64::MAX;
