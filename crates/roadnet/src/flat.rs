//! Flat, alignment-safe v2 index container.
//!
//! The v2 on-disk format (DESIGN.md §11) stores an index as one 8-byte
//! aligned buffer: a fixed header, a section table of `(byte offset, byte
//! length)` entries, and the section payloads. Loading brings the whole file
//! behind one 8-aligned buffer — by default a read-only `mmap(2)` so views
//! borrow page-cache-shared bytes and a continental index pages in lazily
//! ([`LoadMode::Auto`], falling back to one `read(2)` into a heap buffer
//! when mapping is unavailable) — validates the header and table, and hands
//! out typed slice views over those bytes. No per-node deserialization pass
//! and no nested `Vec` rebuild, so load-path allocations are O(sections),
//! not O(nodes).
//!
//! Writing has a streaming counterpart too: [`FlatStreamWriter`] sends the
//! header plus a reserved section table to the file up front, streams each
//! section payload as it is produced, and backpatches the table on finish —
//! peak writer memory is O(1) beyond the caller's own arrays, never a
//! second assembled copy of the container.
//!
//! Layout (all integers native-endian; the header carries an endianness
//! probe so a foreign-endian file is rejected with a typed error):
//!
//! ```text
//! bytes 0..8    magic (8 ASCII bytes, format-specific)
//! bytes 8..12   endianness probe: u32 = 0x0A0B0C0D
//! bytes 12..16  format version: u32
//! bytes 16..20  section count: u32 = S
//! bytes 20..24  reserved (0)
//! bytes 24..    section table: S x { byte offset: u64, byte length: u64 }
//! ...           section payloads, each starting at an 8-aligned offset,
//!               zero-padded so the file length is a multiple of 8
//! ```
//!
//! Section byte offsets are measured from the start of the file and the
//! recorded length is the unpadded payload length.

use std::fmt;
use std::fs::File;
use std::io::{Read, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

use crate::graph::Point;

/// Minimal std-only binding for read-only file mapping (same shape as the
/// serve layer's `signal(2)` shim): declare the two libc symbols needed
/// and wrap the region in a `Drop` guard. Only compiled on unix hosts;
/// everywhere else the loaders take the heap-read path.
#[cfg(unix)]
mod mm {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only private mapping of a whole file, unmapped on drop.
    #[derive(Debug)]
    pub(super) struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime (PROT_READ, never
    // remapped) and owned uniquely by this struct, so shared references
    // may cross threads.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        pub(super) fn ptr(&self) -> *const u8 {
            self.ptr
        }

        pub(super) fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            unsafe { munmap(self.ptr as *mut c_void, self.len) };
        }
    }

    pub(super) fn map_file(f: &File, len: usize) -> std::io::Result<MmapRegion> {
        if len == 0 {
            // mmap(2) rejects zero-length mappings with EINVAL; surface a
            // clearer error (the validator rejects such files anyway).
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                f.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        debug_assert_eq!(ptr as usize % 8, 0, "mappings are page-aligned");
        Ok(MmapRegion {
            ptr: ptr as *const u8,
            len,
        })
    }
}

/// How [`FlatFile::open`] backs the loaded bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// `mmap(2)` the file read-only — views borrow page-cache-shared
    /// bytes and large indexes page in lazily on first touch — falling
    /// back to [`LoadMode::Read`] when mapping fails or the host has no
    /// `mmap`.
    #[default]
    Auto,
    /// Require the file mapping; error when `mmap` is unavailable.
    Mmap,
    /// One `read(2)` into a private heap buffer (the eager path).
    Read,
}

/// Endianness probe written into every v2 header. A reader on a
/// foreign-endian host sees the byte-reversed value and rejects the file.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Fixed header length in bytes (before the section table).
pub const HEADER_BYTES: usize = 24;

/// Length of one section-table entry in bytes.
pub const SECTION_ENTRY_BYTES: usize = 16;

mod sealed {
    pub trait Sealed {}
}

/// Element types that may live in a flat section and be viewed directly
/// from the load buffer.
///
/// # Safety
///
/// Implementors must be plain-old-data: `Copy`, no padding bytes, every bit
/// pattern valid, alignment at most 8. These guarantees make both directions
/// of the byte cast sound (writing a `&[T]` as raw bytes, and viewing a
/// slice of the 8-aligned load buffer as `&[T]`).
pub unsafe trait Pod: sealed::Sealed + Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl sealed::Sealed for $t {}
            unsafe impl Pod for $t {}
        )*
    };
}

impl_pod!(u32, u64, f64, Point);

/// Typed error for the flat container: every malformed input is rejected
/// without panicking.
#[derive(Debug)]
pub enum FlatError {
    Io(std::io::Error),
    BadMagic,
    /// The endianness probe did not match: file written on a foreign-endian
    /// host (zero-copy views would transpose every integer).
    WrongEndianness,
    UnsupportedVersion(u32),
    Truncated,
    /// A section offset or length violates the 8-byte alignment contract,
    /// or a payload length is not a multiple of the element size.
    Misaligned(&'static str),
    /// Section table entry points outside the file (or overflows).
    SectionBounds(usize),
    /// Structural invariant of the specific index format is violated.
    Corrupt(&'static str),
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::Io(e) => write!(f, "i/o error: {e}"),
            FlatError::BadMagic => write!(f, "bad magic"),
            FlatError::WrongEndianness => write!(f, "foreign-endian file"),
            FlatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FlatError::Truncated => write!(f, "truncated input"),
            FlatError::Misaligned(what) => write!(f, "misaligned {what}"),
            FlatError::SectionBounds(i) => write!(f, "section {i} out of bounds"),
            FlatError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for FlatError {}

impl From<std::io::Error> for FlatError {
    fn from(e: std::io::Error) -> Self {
        FlatError::Io(e)
    }
}

/// Structural-invariant guard used by the format loaders.
#[inline]
pub fn ensure(cond: bool, what: &'static str) -> Result<(), FlatError> {
    if cond {
        Ok(())
    } else {
        Err(FlatError::Corrupt(what))
    }
}

/// The 8-aligned load buffer behind a [`FlatFile`] and every view handed
/// out of it: a private heap buffer (one-read load, in-memory parse) or a
/// shared read-only file mapping. Clones are O(1) handle copies.
enum Words {
    Heap(Arc<[u64]>),
    #[cfg(unix)]
    Mapped(Arc<mm::MmapRegion>),
}

impl Clone for Words {
    fn clone(&self) -> Self {
        match self {
            Words::Heap(a) => Words::Heap(Arc::clone(a)),
            #[cfg(unix)]
            Words::Mapped(m) => Words::Mapped(Arc::clone(m)),
        }
    }
}

impl Words {
    #[inline]
    fn base(&self) -> *const u8 {
        match self {
            Words::Heap(a) => a.as_ptr() as *const u8,
            #[cfg(unix)]
            Words::Mapped(m) => m.ptr(),
        }
    }

    #[inline]
    fn byte_len(&self) -> usize {
        match self {
            Words::Heap(a) => a.len() * 8,
            #[cfg(unix)]
            Words::Mapped(m) => m.len(),
        }
    }

    /// The whole buffer as bytes. Sound: 8-aligned, immutable, and alive
    /// for as long as `self`.
    #[inline]
    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.base(), self.byte_len()) }
    }

    fn is_mapped(&self) -> bool {
        match self {
            Words::Heap(_) => false,
            #[cfg(unix)]
            Words::Mapped(_) => true,
        }
    }
}

impl fmt::Debug for Words {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Words::Heap(a) => write!(f, "Heap({} bytes)", a.len() * 8),
            #[cfg(unix)]
            Words::Mapped(m) => write!(f, "Mapped({} bytes)", m.len()),
        }
    }
}

enum Backing<T: Pod> {
    Owned(Arc<[T]>),
    View {
        buf: Words,
        byte_off: usize,
        len: usize,
    },
}

impl<T: Pod> Clone for Backing<T> {
    fn clone(&self) -> Self {
        match self {
            Backing::Owned(a) => Backing::Owned(Arc::clone(a)),
            Backing::View { buf, byte_off, len } => Backing::View {
                buf: buf.clone(),
                byte_off: *byte_off,
                len: *len,
            },
        }
    }
}

/// A shared, immutable typed array: either an owned `Arc<[T]>` (in-memory
/// build) or a view into a loaded flat-file buffer (zero-copy load). Clones
/// are O(1) handle copies either way, so index types keep the `Arc<[T]>`
/// sharing semantics of the CSR graph while the on-disk and in-memory
/// representations coincide.
pub struct FlatVec<T: Pod> {
    backing: Backing<T>,
}

impl<T: Pod> FlatVec<T> {
    /// View of the elements. For the `View` backing this reinterprets a
    /// range of the 8-aligned `u64` load buffer as `[T]`; soundness is
    /// guaranteed by the [`Pod`] contract plus the alignment/bounds checks
    /// performed at construction.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.backing {
            Backing::Owned(a) => a,
            Backing::View { buf, byte_off, len } => unsafe {
                let base = buf.base().add(*byte_off) as *const T;
                std::slice::from_raw_parts(base, *len)
            },
        }
    }

    /// Whether two handles view the exact same memory (used for
    /// `shares_topology_with`-style identity checks).
    #[inline]
    pub fn ptr_eq(&self, other: &FlatVec<T>) -> bool {
        let a = self.as_slice();
        let b = other.as_slice();
        std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()
    }
}

impl<T: Pod> Clone for FlatVec<T> {
    fn clone(&self) -> Self {
        FlatVec {
            backing: self.backing.clone(),
        }
    }
}

impl<T: Pod> std::ops::Deref for FlatVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for FlatVec<T> {
    fn from(v: Vec<T>) -> Self {
        FlatVec {
            backing: Backing::Owned(v.into()),
        }
    }
}

impl<T: Pod> From<Arc<[T]>> for FlatVec<T> {
    fn from(a: Arc<[T]>) -> Self {
        FlatVec {
            backing: Backing::Owned(a),
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for FlatVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Pod + PartialEq> PartialEq for FlatVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[inline]
fn bytes_of<T: Pod>(data: &[T]) -> &[u8] {
    // Sound per the Pod contract: no padding bytes, so every byte is
    // initialized.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

/// Serializer for the v2 flat container: append typed sections, then
/// [`FlatWriter::finish`] assembles header + table + 8-aligned payloads.
pub struct FlatWriter {
    magic: [u8; 8],
    version: u32,
    sections: Vec<Vec<u8>>,
}

impl FlatWriter {
    pub fn new(magic: [u8; 8], version: u32) -> Self {
        FlatWriter {
            magic,
            version,
            sections: Vec::new(),
        }
    }

    /// Append a typed section; returns its index.
    pub fn section<T: Pod>(&mut self, data: &[T]) -> usize {
        self.sections.push(bytes_of(data).to_vec());
        self.sections.len() - 1
    }

    /// Assemble the container bytes.
    pub fn finish(self) -> Vec<u8> {
        let s = self.sections.len();
        let table_end = HEADER_BYTES + s * SECTION_ENTRY_BYTES;
        let mut total = table_end;
        let mut entries = Vec::with_capacity(s);
        for sec in &self.sections {
            let off = total;
            entries.push((off as u64, sec.len() as u64));
            total += sec.len().div_ceil(8) * 8;
        }
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.magic);
        out.extend_from_slice(&ENDIAN_TAG.to_ne_bytes());
        out.extend_from_slice(&self.version.to_ne_bytes());
        out.extend_from_slice(&(s as u32).to_ne_bytes());
        out.extend_from_slice(&0u32.to_ne_bytes());
        for &(off, len) in &entries {
            out.extend_from_slice(&off.to_ne_bytes());
            out.extend_from_slice(&len.to_ne_bytes());
        }
        for sec in &self.sections {
            out.extend_from_slice(sec);
            out.resize(out.len().div_ceil(8) * 8, 0);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Write the container to a file.
    pub fn write_to(self, path: &Path) -> std::io::Result<()> {
        let bytes = self.finish();
        let mut f = File::create(path)?;
        f.write_all(&bytes)?;
        f.sync_all()
    }
}

/// Incremental counterpart of [`FlatWriter`]: the header plus a reserved
/// section table go to the file first, each section payload streams
/// straight out as it is produced, and [`FlatStreamWriter::finish`]
/// backpatches the table. Nothing is copied or assembled in memory, so
/// peak writer memory is O(1) beyond the caller's own arrays — writing a
/// continental index never costs a second copy of it. The section count
/// is declared up front (every v2 format has a fixed count) and enforced.
pub struct FlatStreamWriter {
    file: File,
    declared: usize,
    entries: Vec<(u64, u64)>,
    pos: u64,
}

impl FlatStreamWriter {
    /// Start a container that will hold exactly `sections` sections.
    pub fn create(
        path: &Path,
        magic: [u8; 8],
        version: u32,
        sections: usize,
    ) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        let table_end = HEADER_BYTES + sections * SECTION_ENTRY_BYTES;
        let mut header = Vec::with_capacity(table_end);
        header.extend_from_slice(&magic);
        header.extend_from_slice(&ENDIAN_TAG.to_ne_bytes());
        header.extend_from_slice(&version.to_ne_bytes());
        header.extend_from_slice(&(sections as u32).to_ne_bytes());
        header.extend_from_slice(&0u32.to_ne_bytes());
        header.resize(table_end, 0); // table placeholder, patched by finish
        file.write_all(&header)?;
        Ok(FlatStreamWriter {
            file,
            declared: sections,
            entries: Vec::with_capacity(sections),
            pos: table_end as u64,
        })
    }

    /// Stream one typed section to the file; returns its index.
    pub fn section<T: Pod>(&mut self, data: &[T]) -> std::io::Result<usize> {
        if self.entries.len() == self.declared {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "more sections than declared",
            ));
        }
        let bytes = bytes_of(data);
        self.entries.push((self.pos, bytes.len() as u64));
        self.file.write_all(bytes)?;
        let pad = bytes.len().div_ceil(8) * 8 - bytes.len();
        if pad > 0 {
            self.file.write_all(&[0u8; 8][..pad])?;
        }
        self.pos += (bytes.len() + pad) as u64;
        Ok(self.entries.len() - 1)
    }

    /// Backpatch the section table and sync the file to disk.
    pub fn finish(mut self) -> std::io::Result<()> {
        if self.entries.len() != self.declared {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "fewer sections than declared",
            ));
        }
        let mut table = Vec::with_capacity(self.entries.len() * SECTION_ENTRY_BYTES);
        for &(off, len) in &self.entries {
            table.extend_from_slice(&off.to_ne_bytes());
            table.extend_from_slice(&len.to_ne_bytes());
        }
        self.file.seek(SeekFrom::Start(HEADER_BYTES as u64))?;
        self.file.write_all(&table)?;
        self.file.sync_all()
    }
}

/// A loaded (or parsed) v2 flat container: the whole file behind one
/// 8-aligned buffer (heap or file mapping) plus the validated section
/// table. Typed views handed out by [`FlatFile::section`] borrow the
/// buffer via `Arc`, so the file bytes (or the mapping) stay alive exactly
/// as long as any index built over them.
#[derive(Debug)]
pub struct FlatFile {
    buf: Words,
    version: u32,
    sections: Vec<(usize, usize)>,
}

/// Read a whole file into one aligned heap buffer: `new_zeroed_slice` gets
/// kernel-zeroed pages (no memset pass for large buffers), and building
/// the `Arc` up front avoids the full-buffer copy an `Arc::from(Vec)`
/// conversion would do. The read is the only pass over the bytes.
fn read_words(path: &Path) -> Result<Words, FlatError> {
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    let len = usize::try_from(len).map_err(|_| FlatError::Corrupt("file too large"))?;
    if !len.is_multiple_of(8) {
        // Every valid container is 8-padded; reject before buffering.
        return Err(FlatError::Misaligned("file length"));
    }
    let mut buf = Arc::new_zeroed_slice(len / 8);
    {
        let words = Arc::get_mut(&mut buf).expect("freshly allocated arc is unique");
        // Sound: u64 has no padding and any byte pattern is a valid u64.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        f.read_exact(bytes)?;
    }
    // Sound: fully written by `read_exact` (and zero-initialized anyway).
    Ok(Words::Heap(unsafe { buf.assume_init() }))
}

/// Map a whole file read-only. Rejects lengths the validator would reject
/// anyway (not 8-padded, empty) before touching `mmap`.
#[cfg(unix)]
fn map_words(path: &Path) -> Result<Words, FlatError> {
    let f = File::open(path)?;
    let len = f.metadata()?.len();
    let len = usize::try_from(len).map_err(|_| FlatError::Corrupt("file too large"))?;
    if !len.is_multiple_of(8) {
        return Err(FlatError::Misaligned("file length"));
    }
    if len < HEADER_BYTES {
        return Err(FlatError::Truncated);
    }
    Ok(Words::Mapped(Arc::new(mm::map_file(&f, len)?)))
}

#[cfg(not(unix))]
fn map_words(_path: &Path) -> Result<Words, FlatError> {
    Err(FlatError::Io(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "mmap is unavailable on this host",
    )))
}

impl FlatFile {
    /// Read a file into one aligned heap buffer and validate header +
    /// table (the eager [`LoadMode::Read`] path). `expected_version` of 0
    /// accepts any version (callers then branch on [`FlatFile::version`]).
    pub fn read(path: &Path, magic: [u8; 8], expected_version: u32) -> Result<Self, FlatError> {
        Self::open(path, magic, expected_version, LoadMode::Read)
    }

    /// Load a container with an explicit backing [`LoadMode`]. The mapped
    /// and read paths validate identically and yield bit-identical views;
    /// [`LoadMode::Auto`] degrades to the read path when mapping fails.
    pub fn open(
        path: &Path,
        magic: [u8; 8],
        expected_version: u32,
        mode: LoadMode,
    ) -> Result<Self, FlatError> {
        let words = match mode {
            LoadMode::Read => read_words(path)?,
            LoadMode::Mmap => map_words(path)?,
            LoadMode::Auto => map_words(path).or_else(|_| read_words(path))?,
        };
        Self::with_words(words, magic, expected_version)
    }

    /// Parse from raw bytes by copying into an aligned buffer (test and
    /// in-memory round-trip entry point; `read` is the zero-copy path).
    pub fn parse(bytes: &[u8], magic: [u8; 8], expected_version: u32) -> Result<Self, FlatError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(FlatError::Misaligned("file length"));
        }
        let mut buf = Arc::new_zeroed_slice(bytes.len() / 8);
        let words = Arc::get_mut(&mut buf).expect("freshly allocated arc is unique");
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        // Sound: fully written by the copy (and zero-initialized anyway).
        let words: Arc<[u64]> = unsafe { buf.assume_init() };
        Self::from_words(words, magic, expected_version)
    }

    /// Validate a pre-loaded aligned buffer.
    pub fn from_words(
        buf: Arc<[u64]>,
        magic: [u8; 8],
        expected_version: u32,
    ) -> Result<Self, FlatError> {
        Self::with_words(Words::Heap(buf), magic, expected_version)
    }

    fn with_words(buf: Words, magic: [u8; 8], expected_version: u32) -> Result<Self, FlatError> {
        let total = buf.byte_len();
        if total < HEADER_BYTES {
            return Err(FlatError::Truncated);
        }
        let bytes = buf.bytes();
        if bytes[..8] != magic {
            return Err(FlatError::BadMagic);
        }
        let word = |at: usize| u32::from_ne_bytes(bytes[at..at + 4].try_into().unwrap());
        if word(8) != ENDIAN_TAG {
            return Err(FlatError::WrongEndianness);
        }
        let version = word(12);
        if expected_version != 0 && version != expected_version {
            return Err(FlatError::UnsupportedVersion(version));
        }
        let count = word(16) as usize;
        let table_end = HEADER_BYTES
            .checked_add(
                count
                    .checked_mul(SECTION_ENTRY_BYTES)
                    .ok_or(FlatError::Truncated)?,
            )
            .ok_or(FlatError::Truncated)?;
        if table_end > total {
            return Err(FlatError::Truncated);
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
            let off = u64::from_ne_bytes(bytes[at..at + 8].try_into().unwrap());
            let len = u64::from_ne_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            if !off.is_multiple_of(8) {
                return Err(FlatError::Misaligned("section offset"));
            }
            let end = off.checked_add(len).ok_or(FlatError::SectionBounds(i))?;
            if off < table_end as u64 || end > total as u64 {
                return Err(FlatError::SectionBounds(i));
            }
            sections.push((off as usize, len as usize));
        }
        Ok(FlatFile {
            buf,
            version,
            sections,
        })
    }

    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the container is backed by a read-only file mapping (vs a
    /// private heap buffer).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }

    #[inline]
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Typed zero-copy view of section `idx`. Rejects payload lengths that
    /// are not a multiple of the element size.
    pub fn section<T: Pod>(&self, idx: usize) -> Result<FlatVec<T>, FlatError> {
        let &(byte_off, byte_len) = self
            .sections
            .get(idx)
            .ok_or(FlatError::Corrupt("missing section"))?;
        let size = std::mem::size_of::<T>();
        if !byte_len.is_multiple_of(size) {
            return Err(FlatError::Misaligned("section length"));
        }
        Ok(FlatVec {
            backing: Backing::View {
                buf: self.buf.clone(),
                byte_off,
                len: byte_len / size,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"FLATTEST";

    fn sample() -> Vec<u8> {
        let mut w = FlatWriter::new(MAGIC, 2);
        w.section::<u32>(&[1, 2, 3]);
        w.section::<u64>(&[10, 20]);
        w.section::<Point>(&[Point::new(1.5, -2.5)]);
        w.finish()
    }

    #[test]
    fn round_trips_sections() {
        let bytes = sample();
        assert_eq!(bytes.len() % 8, 0);
        let f = FlatFile::parse(&bytes, MAGIC, 2).unwrap();
        assert_eq!(f.version(), 2);
        assert_eq!(f.section_count(), 3);
        let a: FlatVec<u32> = f.section(0).unwrap();
        assert_eq!(&*a, &[1, 2, 3]);
        let b: FlatVec<u64> = f.section(1).unwrap();
        assert_eq!(&*b, &[10, 20]);
        let c: FlatVec<Point> = f.section(2).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], Point::new(1.5, -2.5));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let bytes = sample();
        assert!(matches!(
            FlatFile::parse(&bytes, *b"OTHRMAGC", 2),
            Err(FlatError::BadMagic)
        ));
        assert!(matches!(
            FlatFile::parse(&bytes, MAGIC, 3),
            Err(FlatError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn rejects_foreign_endianness() {
        let mut bytes = sample();
        bytes[8..12].reverse();
        assert!(matches!(
            FlatFile::parse(&bytes, MAGIC, 2),
            Err(FlatError::WrongEndianness)
        ));
    }

    #[test]
    fn rejects_every_8_byte_truncation() {
        let bytes = sample();
        for cut in (0..bytes.len()).step_by(8) {
            let res = FlatFile::parse(&bytes[..cut], MAGIC, 2);
            match res {
                Err(FlatError::Truncated | FlatError::SectionBounds(_) | FlatError::BadMagic) => {}
                other => panic!("truncation to {cut} bytes not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_unaligned_length() {
        let bytes = sample();
        assert!(matches!(
            FlatFile::parse(&bytes[..bytes.len() - 3], MAGIC, 2),
            Err(FlatError::Misaligned(_))
        ));
    }

    #[test]
    fn rejects_overflowing_section_table() {
        let mut bytes = sample();
        // Patch section 0's length to u64::MAX: offset + len overflows.
        bytes[HEADER_BYTES + 8..HEADER_BYTES + 16].copy_from_slice(&u64::MAX.to_ne_bytes());
        assert!(matches!(
            FlatFile::parse(&bytes, MAGIC, 2),
            Err(FlatError::SectionBounds(0))
        ));
    }

    #[test]
    fn rejects_misaligned_section_offset() {
        let mut bytes = sample();
        bytes[HEADER_BYTES..HEADER_BYTES + 8].copy_from_slice(&57u64.to_ne_bytes());
        assert!(matches!(
            FlatFile::parse(&bytes, MAGIC, 2),
            Err(FlatError::Misaligned(_))
        ));
    }

    #[test]
    fn rejects_elem_size_mismatch() {
        let mut w = FlatWriter::new(MAGIC, 2);
        w.section::<u32>(&[1]); // 4-byte payload
        let bytes = w.finish();
        let f = FlatFile::parse(&bytes, MAGIC, 2).unwrap();
        assert!(matches!(f.section::<u64>(0), Err(FlatError::Misaligned(_))));
        assert!(f.section::<u32>(0).is_ok());
    }

    #[test]
    fn stream_writer_is_byte_identical_to_buffered_writer() {
        let path = std::env::temp_dir().join(format!("fannr-flat-stream-{}", std::process::id()));
        let mut w = FlatStreamWriter::create(&path, MAGIC, 2, 3).unwrap();
        w.section::<u32>(&[1, 2, 3]).unwrap();
        w.section::<u64>(&[10, 20]).unwrap();
        w.section::<Point>(&[Point::new(1.5, -2.5)]).unwrap();
        w.finish().unwrap();
        let streamed = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(streamed, sample());
    }

    #[test]
    fn stream_writer_enforces_declared_section_count() {
        let path = std::env::temp_dir().join(format!("fannr-flat-count-{}", std::process::id()));
        let mut w = FlatStreamWriter::create(&path, MAGIC, 2, 1).unwrap();
        w.section::<u32>(&[1]).unwrap();
        assert!(w.section::<u32>(&[2]).is_err(), "over-declared");
        let w = FlatStreamWriter::create(&path, MAGIC, 2, 2).unwrap();
        assert!(w.finish().is_err(), "under-declared");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_load_matches_read_load() {
        let path = std::env::temp_dir().join(format!("fannr-flat-mmap-{}", std::process::id()));
        std::fs::write(&path, sample()).unwrap();
        let mapped = FlatFile::open(&path, MAGIC, 2, LoadMode::Mmap).unwrap();
        let read = FlatFile::open(&path, MAGIC, 2, LoadMode::Read).unwrap();
        assert!(mapped.is_mapped());
        assert!(!read.is_mapped());
        assert_eq!(mapped.section_count(), read.section_count());
        let a: FlatVec<u32> = mapped.section(0).unwrap();
        let b: FlatVec<u32> = read.section(0).unwrap();
        assert_eq!(&*a, &*b);
        // Views keep the mapping alive past the container handle.
        drop(mapped);
        let _ = std::fs::remove_file(&path);
        assert_eq!(&*a, &[1, 2, 3]);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_rejects_what_read_rejects() {
        let path = std::env::temp_dir().join(format!("fannr-flat-mmbad-{}", std::process::id()));
        let bytes = sample();
        std::fs::write(&path, &bytes[..16]).unwrap();
        assert!(matches!(
            FlatFile::open(&path, MAGIC, 2, LoadMode::Mmap),
            Err(FlatError::Truncated)
        ));
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            FlatFile::open(&path, MAGIC, 2, LoadMode::Mmap),
            Err(FlatError::Misaligned(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_mode_loads_and_missing_file_errors() {
        let path = std::env::temp_dir().join(format!("fannr-flat-auto-{}", std::process::id()));
        std::fs::write(&path, sample()).unwrap();
        let f = FlatFile::open(&path, MAGIC, 2, LoadMode::Auto).unwrap();
        let a: FlatVec<u32> = f.section(0).unwrap();
        assert_eq!(&*a, &[1, 2, 3]);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            FlatFile::open(&path, MAGIC, 2, LoadMode::Auto),
            Err(FlatError::Io(_))
        ));
    }

    #[test]
    fn owned_and_view_ptr_eq() {
        let owned: FlatVec<u32> = vec![1u32, 2, 3].into();
        let clone = owned.clone();
        assert!(owned.ptr_eq(&clone));
        let other: FlatVec<u32> = vec![1u32, 2, 3].into();
        assert!(!owned.ptr_eq(&other));
        assert_eq!(owned, other);
    }
}
