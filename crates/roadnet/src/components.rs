//! Connected-component cleanup.
//!
//! The raw DIMACS datasets "have many errors, such as unconnected components
//! or self-loops" (§VI-A); the paper cleans them in preprocessing. Self-loops
//! are dropped by [`crate::GraphBuilder`]; this module extracts the largest
//! connected component and renumbers nodes densely.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Result of component extraction: the cleaned graph plus the mapping from
/// old node ids to new ones (`None` for nodes outside the kept component).
pub struct ComponentExtraction {
    pub graph: Graph,
    pub old_to_new: Vec<Option<NodeId>>,
    pub new_to_old: Vec<NodeId>,
}

/// Extract the largest connected component of `g`.
pub fn largest_connected_component(g: &Graph) -> ComponentExtraction {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        comp[start] = id;
        stack.push(start as NodeId);
        while let Some(v) = stack.pop() {
            size += 1;
            for (nb, _) in g.neighbors(v) {
                if comp[nb as usize] == u32::MAX {
                    comp[nb as usize] = id;
                    stack.push(nb);
                }
            }
        }
        sizes.push(size);
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);

    let mut old_to_new = vec![None; n];
    let mut new_to_old = Vec::new();
    let mut builder = GraphBuilder::new();
    for v in 0..n {
        if comp[v] == best {
            let p = g.coord(v as NodeId);
            let id = builder.add_node(p.x, p.y);
            old_to_new[v] = Some(id);
            new_to_old.push(v as NodeId);
        }
    }
    for (u, v, w) in g.edges() {
        if let (Some(nu), Some(nv)) = (old_to_new[u as usize], old_to_new[v as usize]) {
            builder.add_edge(nu, nv, w);
        }
    }
    ComponentExtraction {
        graph: builder.build(),
        old_to_new,
        new_to_old,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn keeps_largest_component() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        // Component A: 0-1 (2 nodes). Component B: 2-3-4-5 (4 nodes).
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let ex = largest_connected_component(&g);
        assert_eq!(ex.graph.num_nodes(), 4);
        assert_eq!(ex.graph.num_edges(), 3);
        assert_eq!(ex.old_to_new[0], None);
        assert_eq!(ex.old_to_new[2], Some(0));
        assert_eq!(ex.new_to_old, vec![2, 3, 4, 5]);
    }

    #[test]
    fn connected_graph_is_identity_sized() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let ex = largest_connected_component(&g);
        assert_eq!(ex.graph.num_nodes(), 3);
        assert_eq!(ex.graph.num_edges(), 2);
    }

    #[test]
    fn isolated_nodes_are_dropped() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 5);
        let g = b.build();
        let ex = largest_connected_component(&g);
        assert_eq!(ex.graph.num_nodes(), 2);
        // Coordinates carried over.
        assert_eq!(ex.graph.coord(1).x, 1.0);
    }

    #[test]
    fn preserves_weights() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 42);
        b.add_edge(1, 2, 7);
        let g = b.build();
        let ex = largest_connected_component(&g);
        assert_eq!(ex.graph.edge_weight(0, 1), Some(42));
        assert_eq!(ex.graph.edge_weight(1, 2), Some(7));
    }
}
