//! Compact CSR graph with planar coordinates.

use std::fmt;
use std::path::Path;

use crate::flat::{ensure, FlatError, FlatFile, FlatStreamWriter, FlatVec, FlatWriter, LoadMode};

/// Node identifier: dense index in `0..graph.num_nodes()`.
pub type NodeId = u32;

/// Edge weight ("length" in the paper's terms). Positive.
pub type Weight = u32;

/// Planar coordinate of a node, in the same length unit as edge weights so
/// that `euclid(u, v) <= network_distance(u, v)` can hold (A* admissibility).
///
/// `repr(C)`: two `f64`s with no padding, so coordinate arrays can live in
/// flat v2 index sections and be viewed zero-copy (see [`crate::flat`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An undirected weighted road network in CSR form.
///
/// Each undirected edge `{u, v}` is stored twice (as `u -> v` and `v -> u`).
/// Construction goes through [`GraphBuilder`], which removes self-loops and
/// collapses parallel edges to the minimum weight — the same cleanup the
/// paper applies to the raw DIMACS data (§VI-A).
///
/// The CSR arrays live behind shared [`FlatVec`] handles, so `Graph::clone`
/// is O(1) and a graph value acts as a shared handle: every layer (engines,
/// backends, snapshot cells) can own its copy without lifetimes, and
/// [`Graph::with_patched_weights`] produces a sibling graph that shares the
/// topology and coordinates, copying only the weight array. A graph loaded
/// from a v2 flat file ([`Graph::read_flat`]) serves all four arrays
/// directly out of the single load buffer.
#[derive(Clone)]
pub struct Graph {
    offsets: FlatVec<u32>,
    targets: FlatVec<NodeId>,
    weights: FlatVec<Weight>,
    coords: FlatVec<Point>,
}

/// Magic for the flat v2 graph container.
pub const GRAPH_MAGIC: [u8; 8] = *b"FANNGR2\0";
const GRAPH_VERSION: u32 = 2;

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights == other.weights
            && self.coords == other.coords
    }
}

impl Graph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of *undirected* edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed arcs (twice [`Self::num_edges`]).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Outgoing arcs of `v` as `(neighbor, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Coordinate of `v`.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Point {
        self.coords[v as usize]
    }

    /// All coordinates, indexed by node id.
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Euclidean distance between two nodes (`δ^ε` in the paper).
    #[inline]
    pub fn euclid(&self, u: NodeId, v: NodeId) -> f64 {
        self.coords[u as usize].dist(&self.coords[v as usize])
    }

    /// Weight of the arc `u -> v`, if the edge exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// Iterate over every undirected edge once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Rough in-memory size of the CSR arrays plus coordinates, in bytes.
    /// Used by the index-cost experiments (Fig. 9) as the substrate cost.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.len() * 4
            + self.coords.len() * std::mem::size_of::<Point>()
    }

    /// Index of the directed arc `u -> v` into the target/weight arrays.
    fn arc_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        // Adjacency lists are sorted by target (builder inserts edges in
        // sorted order), so binary search is exact.
        self.targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|slot| lo + slot)
    }

    /// A sibling graph with the given undirected edges' weights replaced,
    /// sharing this graph's topology and coordinates (copy-on-write: only
    /// the weight array is duplicated). `None` if any referenced edge does
    /// not exist; later patches to the same edge win.
    pub fn with_patched_weights(&self, patches: &[(NodeId, NodeId, Weight)]) -> Option<Graph> {
        let mut weights: Vec<Weight> = self.weights.to_vec();
        for &(u, v, w) in patches {
            if (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
                return None;
            }
            let uv = self.arc_index(u, v)?;
            let vu = self.arc_index(v, u)?;
            weights[uv] = w;
            weights[vu] = w;
        }
        Some(Graph {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: weights.into(),
            coords: self.coords.clone(),
        })
    }

    /// Whether two graphs share the same underlying CSR topology allocation
    /// (i.e. one was derived from the other via
    /// [`Graph::with_patched_weights`] or `clone`).
    pub fn shares_topology_with(&self, other: &Graph) -> bool {
        self.offsets.ptr_eq(&other.offsets) && self.targets.ptr_eq(&other.targets)
    }

    /// Serialize into the flat v2 container (DESIGN.md §11). Sections:
    /// `0` CSR offsets, `1` arc targets, `2` arc weights, `3` coordinates.
    pub fn to_flat_bytes(&self) -> Vec<u8> {
        let mut w = FlatWriter::new(GRAPH_MAGIC, GRAPH_VERSION);
        w.section(&self.offsets);
        w.section(&self.targets);
        w.section(&self.weights);
        w.section(&self.coords);
        w.finish()
    }

    /// Write the flat v2 container to `path`, streaming each CSR array
    /// straight to the file ([`FlatStreamWriter`]) — no assembled
    /// in-memory copy of the container.
    pub fn write_flat(&self, path: &Path) -> std::io::Result<()> {
        let mut w = FlatStreamWriter::create(path, GRAPH_MAGIC, GRAPH_VERSION, 4)?;
        w.section(&self.offsets)?;
        w.section(&self.targets)?;
        w.section(&self.weights)?;
        w.section(&self.coords)?;
        w.finish()
    }

    /// Zero-copy load of a flat v2 graph: the file is brought behind one
    /// aligned buffer (mapped when possible, see [`LoadMode::Auto`]) and
    /// all four CSR arrays are served directly from it. The validation
    /// pass below only *scans* (no per-node allocation).
    pub fn read_flat(path: &Path) -> Result<Graph, FlatError> {
        Self::read_flat_with(path, LoadMode::Auto)
    }

    /// [`Graph::read_flat`] with an explicit backing [`LoadMode`].
    pub fn read_flat_with(path: &Path, mode: LoadMode) -> Result<Graph, FlatError> {
        Self::from_flat(FlatFile::open(path, GRAPH_MAGIC, GRAPH_VERSION, mode)?)
    }

    /// Parse a flat v2 graph from in-memory bytes (copies once into an
    /// aligned buffer; [`Graph::read_flat`] is the zero-copy path).
    pub fn from_flat_bytes(bytes: &[u8]) -> Result<Graph, FlatError> {
        Self::from_flat(FlatFile::parse(bytes, GRAPH_MAGIC, GRAPH_VERSION)?)
    }

    fn from_flat(f: FlatFile) -> Result<Graph, FlatError> {
        ensure(f.section_count() == 4, "graph section count")?;
        let offsets: FlatVec<u32> = f.section(0)?;
        let targets: FlatVec<NodeId> = f.section(1)?;
        let weights: FlatVec<Weight> = f.section(2)?;
        let coords: FlatVec<Point> = f.section(3)?;
        ensure(!offsets.is_empty(), "graph offsets empty")?;
        let n = offsets.len() - 1;
        ensure(coords.len() == n, "graph coords length")?;
        ensure(targets.len() == weights.len(), "graph arc arrays length")?;
        ensure(offsets[0] == 0, "graph offsets origin")?;
        ensure(
            offsets[n] as usize == targets.len(),
            "graph offsets terminal",
        )?;
        ensure(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "graph offsets monotone",
        )?;
        ensure(
            targets.iter().all(|&t| (t as usize) < n),
            "graph target range",
        )?;
        Ok(Graph {
            offsets,
            targets,
            weights,
            coords,
        })
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Nodes are added with coordinates; undirected edges reference existing
/// nodes. `build` sorts adjacency lists, drops self-loops and keeps the
/// minimum weight among parallel edges.
#[derive(Default, Clone)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocate for `n` nodes and `m` undirected edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            coords: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
        }
    }

    /// Add a node at `(x, y)`; returns its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(Point::new(x, y));
        id
    }

    /// Add an undirected edge. Zero weights are clamped to 1 to keep the
    /// weight function positive (`W: E -> R+`, §II-A).
    ///
    /// # Panics
    /// If an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(
            (u as usize) < self.coords.len() && (v as usize) < self.coords.len(),
            "edge ({u}, {v}) references a node that was not added"
        );
        self.edges.push((u, v, w.max(1)));
    }

    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate of an already-added node as `(x, y)`.
    ///
    /// # Panics
    /// If `v` has not been added.
    pub fn coord_of(&self, v: NodeId) -> (f64, f64) {
        let p = self.coords[v as usize];
        (p.x, p.y)
    }

    /// Finalize into a CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        let n = self.coords.len();
        // Normalize: drop self-loops, direct u < v, dedupe keeping min weight.
        self.edges.retain(|&(u, v, _)| u != v);
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut deg = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; acc as usize];
        let mut weights = vec![0 as Weight; acc as usize];
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        Graph {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.into(),
            coords: self.coords.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(3.0, 0.0);
        let d = b.add_node(0.0, 4.0);
        b.add_edge(a, c, 3);
        b.add_edge(a, d, 4);
        b.add_edge(c, d, 5);
        b.build()
    }

    #[test]
    fn builds_csr_with_both_directions() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        let mut nbrs: Vec<_> = g.neighbors(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(1, 3), (2, 4)]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, a, 7);
        b.add_edge(a, c, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, 9);
        b.add_edge(c, a, 2);
        b.add_edge(a, c, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(a, c), Some(2));
        assert_eq!(g.edge_weight(c, a), Some(2));
    }

    #[test]
    fn zero_weight_is_clamped_to_one() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_edge(a, c, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(a, c), Some(1));
    }

    #[test]
    fn euclid_matches_geometry() {
        let g = triangle();
        assert!((g.euclid(1, 2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        assert!(es.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn edge_weight_absent_for_missing_edge() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_node(2.0, 0.0);
        b.add_edge(a, c, 1);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "references a node")]
    fn edge_to_unknown_node_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        b.add_edge(a, 5, 1);
    }

    #[test]
    fn patched_weights_update_both_directions_and_share_topology() {
        let g = triangle();
        let patched = g.with_patched_weights(&[(0, 1, 30), (2, 1, 50)]).unwrap();
        assert_eq!(patched.edge_weight(0, 1), Some(30));
        assert_eq!(patched.edge_weight(1, 0), Some(30));
        assert_eq!(patched.edge_weight(1, 2), Some(50));
        assert_eq!(patched.edge_weight(2, 1), Some(50));
        assert_eq!(patched.edge_weight(0, 2), Some(4)); // untouched
        assert!(patched.shares_topology_with(&g));
        // The source graph is unchanged (copy-on-write).
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn patching_missing_edge_is_none() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert!(g.with_patched_weights(&[(0, 2, 5)]).is_none());
        assert!(g.with_patched_weights(&[(0, 9, 5)]).is_none());
    }

    #[test]
    fn later_patches_to_the_same_edge_win() {
        let g = triangle();
        let patched = g.with_patched_weights(&[(0, 1, 30), (1, 0, 7)]).unwrap();
        assert_eq!(patched.edge_weight(0, 1), Some(7));
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let g = triangle();
        let h = g.clone();
        assert!(h.shares_topology_with(&g));
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn flat_round_trip_preserves_graph() {
        let g = triangle();
        let bytes = g.to_flat_bytes();
        let h = Graph::from_flat_bytes(&bytes).unwrap();
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        assert_eq!(h.coords(), g.coords());
        // Distinct buffers: a loaded graph is its own topology family.
        assert!(!h.shares_topology_with(&g));
        assert!(h.clone().shares_topology_with(&h));
    }

    #[test]
    fn flat_rejects_out_of_range_target() {
        let g = triangle();
        let mut bytes = g.to_flat_bytes();
        // Section 1 (targets) starts right after section 0 (4 offsets,
        // padded to 16 bytes) which begins at header + 4 table entries.
        let targets_at = 24 + 4 * 16 + 16;
        bytes[targets_at..targets_at + 4].copy_from_slice(&99u32.to_ne_bytes());
        assert!(matches!(
            Graph::from_flat_bytes(&bytes),
            Err(crate::flat::FlatError::Corrupt("graph target range"))
        ));
    }

    #[test]
    fn flat_rejects_nonmonotone_offsets() {
        let g = triangle();
        let mut bytes = g.to_flat_bytes();
        let offsets_at = 24 + 4 * 16;
        bytes[offsets_at + 4..offsets_at + 8].copy_from_slice(&60u32.to_ne_bytes());
        assert!(Graph::from_flat_bytes(&bytes).is_err());
    }
}
