//! Recycled per-query search state (the batch/throughput substrate).
//!
//! Every Dijkstra-family search needs a distance array, a settled set and a
//! priority queue. Allocating them per query (`vec![INF; n]`, fresh
//! `BinaryHeap`, hash maps) dominates query cost on large networks once the
//! algorithmic work per query is small — the classic throughput killer for
//! query streams. [`QueryScratch`] keeps those buffers alive across queries
//! and resets them in `O(1)` via *epoch stamping*: each slot carries the
//! epoch in which it was last written, and a slot is only valid when its
//! stamp equals the current epoch. Starting the next query is a single
//! epoch increment plus clearing the (already drained) heap — no `O(|V|)`
//! refill, no rehashing, and no allocation once the buffers have grown to
//! `|V|`.
//!
//! [`ScratchPool`] holds idle scratches for algorithms that run several
//! concurrent expansions (`ObjectStreams` keeps one per query point) so a
//! worker thread can recycle all of them across a whole query stream.

use crate::{Dist, NodeId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable buffers for one Dijkstra/A\*/INE search.
///
/// Obtain one with [`QueryScratch::new`], hand it to the `*_with` search
/// entry points (or [`crate::DijkstraIter::with_scratch`]), and keep
/// reusing it: each search calls [`QueryScratch::begin`] internally, which
/// invalidates all previous state without touching the buffers.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Current epoch; slot `v` is live iff its stamp equals this.
    epoch: u32,
    dist_stamp: Vec<u32>,
    dist: Vec<Dist>,
    settled_stamp: Vec<u32>,
    /// Keyed by the search's priority (g for Dijkstra, f = g + h for A\*).
    heap: BinaryHeap<(Reverse<Dist>, NodeId)>,
    settled: usize,
}

impl QueryScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for a graph with `n` nodes (optional; `begin` grows lazily).
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.grow(n);
        s
    }

    fn grow(&mut self, n: usize) {
        if self.dist_stamp.len() < n {
            self.dist_stamp.resize(n, 0);
            self.dist.resize(n, INF);
            self.settled_stamp.resize(n, 0);
        }
    }

    /// Start a fresh search over a graph with `n` nodes: bump the epoch
    /// (invalidating every distance and settled mark) and clear the heap.
    /// Amortized `O(1)`; allocation-free once grown to `n`.
    pub fn begin(&mut self, n: usize) {
        self.grow(n);
        if self.epoch == u32::MAX {
            // Epoch wrap (once per 2^32 queries): hard-reset the stamps.
            self.dist_stamp.fill(0);
            self.settled_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
        self.settled = 0;
    }

    /// Tentative distance of `v` in the current search ([`INF`] if untouched).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        if self.dist_stamp[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            INF
        }
    }

    #[inline]
    pub fn set_dist(&mut self, v: NodeId, d: Dist) {
        self.dist_stamp[v as usize] = self.epoch;
        self.dist[v as usize] = d;
    }

    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled_stamp[v as usize] == self.epoch
    }

    #[inline]
    pub fn mark_settled(&mut self, v: NodeId) {
        debug_assert!(!self.is_settled(v), "node {v} settled twice");
        self.settled_stamp[v as usize] = self.epoch;
        self.settled += 1;
    }

    /// Nodes settled since the last [`QueryScratch::begin`].
    #[inline]
    pub fn settled_count(&self) -> usize {
        self.settled
    }

    /// Push a heap entry keyed by `key` (g-value for Dijkstra, f for A\*).
    #[inline]
    pub fn push(&mut self, key: Dist, v: NodeId) {
        self.heap.push((Reverse(key), v));
    }

    /// Pop the minimum-key entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Dist, NodeId)> {
        self.heap.pop().map(|(Reverse(k), v)| (k, v))
    }

    /// Minimum key + node without popping.
    #[inline]
    pub fn peek(&self) -> Option<(Dist, NodeId)> {
        self.heap.peek().map(|&(Reverse(k), v)| (k, v))
    }

    /// Drop a stale heap top (caller decides staleness).
    #[inline]
    pub fn pop_discard(&mut self) {
        self.heap.pop();
    }
}

/// A stash of idle [`QueryScratch`]es for multi-expansion algorithms.
///
/// `ObjectStreams` runs `|Q|` concurrent expansions, each needing its own
/// scratch; a worker keeps one pool and the streams borrow from / return to
/// it between queries, so a stream of thousands of queries touches the
/// allocator only while the pool is warming up.
#[derive(Debug, Default)]
pub struct ScratchPool {
    idle: Vec<QueryScratch>,
}

impl ScratchPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take an idle scratch, or create a fresh one if the pool is empty.
    pub fn take(&mut self) -> QueryScratch {
        self.idle.pop().unwrap_or_default()
    }

    /// Return a scratch for later reuse.
    pub fn put(&mut self, scratch: QueryScratch) {
        self.idle.push(scratch);
    }

    /// Number of idle scratches currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_invalidates_previous_state() {
        let mut s = QueryScratch::new();
        s.begin(4);
        s.set_dist(2, 7);
        s.mark_settled(2);
        s.push(7, 2);
        assert_eq!(s.dist(2), 7);
        assert!(s.is_settled(2));
        s.begin(4);
        assert_eq!(s.dist(2), INF);
        assert!(!s.is_settled(2));
        assert_eq!(s.peek(), None);
        assert_eq!(s.settled_count(), 0);
    }

    #[test]
    fn grows_to_larger_graphs() {
        let mut s = QueryScratch::new();
        s.begin(2);
        s.set_dist(1, 3);
        s.begin(10);
        assert_eq!(s.dist(9), INF);
        s.set_dist(9, 1);
        assert_eq!(s.dist(9), 1);
    }

    #[test]
    fn heap_orders_by_key() {
        let mut s = QueryScratch::new();
        s.begin(5);
        s.push(5, 0);
        s.push(1, 1);
        s.push(3, 2);
        assert_eq!(s.pop(), Some((1, 1)));
        assert_eq!(s.peek(), Some((3, 2)));
        assert_eq!(s.pop(), Some((3, 2)));
        assert_eq!(s.pop(), Some((5, 0)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = QueryScratch::with_capacity(3);
        s.epoch = u32::MAX - 1;
        s.begin(3);
        s.set_dist(0, 42);
        assert_eq!(s.epoch, u32::MAX);
        s.begin(3); // wraps
        assert_eq!(s.epoch, 1);
        assert_eq!(s.dist(0), INF, "stale value must not leak across wrap");
    }

    #[test]
    fn pool_recycles() {
        let mut pool = ScratchPool::new();
        let mut a = pool.take();
        a.begin(8);
        a.set_dist(3, 9);
        pool.put(a);
        assert_eq!(pool.idle_count(), 1);
        let mut b = pool.take();
        assert_eq!(pool.idle_count(), 0);
        b.begin(8);
        assert_eq!(b.dist(3), INF, "recycled scratch must start clean");
    }
}
