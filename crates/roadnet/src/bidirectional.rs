//! Bidirectional Dijkstra point-to-point search.
//!
//! Not part of the paper's evaluated backends; included as an extra exact
//! oracle used to cross-check the others (DESIGN.md §7) and as a cheap
//! distance routine for workload generation on undirected graphs.

use crate::graph::{Graph, NodeId};
use crate::{Dist, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact shortest-path distance via simultaneous forward/backward search.
///
/// On undirected graphs both searches use the same adjacency. Terminates
/// when the sum of the two frontier minima reaches the best meeting
/// distance found so far.
pub fn bidirectional_pair(g: &Graph, s: NodeId, t: NodeId) -> Option<Dist> {
    if s == t {
        return Some(0);
    }
    let n = g.num_nodes();
    let mut dist = [vec![INF; n], vec![INF; n]];
    let mut settled = [vec![false; n], vec![false; n]];
    let mut heaps: [BinaryHeap<(Reverse<Dist>, NodeId)>; 2] =
        [BinaryHeap::new(), BinaryHeap::new()];
    dist[0][s as usize] = 0;
    dist[1][t as usize] = 0;
    heaps[0].push((Reverse(0), s));
    heaps[1].push((Reverse(0), t));
    let mut best = INF;

    loop {
        // Pick the side with the smaller frontier minimum.
        let top0 = heaps[0].peek().map(|&(Reverse(d), _)| d);
        let top1 = heaps[1].peek().map(|&(Reverse(d), _)| d);
        let side = match (top0, top1) {
            (None, None) => break,
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (Some(a), Some(b)) => usize::from(b < a),
        };
        // Standard stopping criterion for distance-only queries.
        let lo0 = top0.unwrap_or(INF);
        let lo1 = top1.unwrap_or(INF);
        if lo0.saturating_add(lo1) >= best {
            break;
        }
        let (Reverse(d), v) = heaps[side].pop().expect("side chosen non-empty");
        if settled[side][v as usize] {
            continue;
        }
        settled[side][v as usize] = true;
        let other = 1 - side;
        if dist[other][v as usize] != INF {
            best = best.min(d + dist[other][v as usize]);
        }
        for (nb, w) in g.neighbors(v) {
            let nd = d + w as Dist;
            if nd < dist[side][nb as usize] {
                dist[side][nb as usize] = nd;
                heaps[side].push((Reverse(nd), nb));
            }
        }
    }
    (best != INF).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;
    use crate::graph::GraphBuilder;

    fn ladder(n: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..2 * n {
            b.add_node((i / 2) as f64, (i % 2) as f64);
        }
        for i in 0..n {
            b.add_edge(2 * i, 2 * i + 1, 1 + i % 3);
            if i + 1 < n {
                b.add_edge(2 * i, 2 * (i + 1), 2 + i % 2);
                b.add_edge(2 * i + 1, 2 * (i + 1) + 1, 1);
            }
        }
        b.build()
    }

    #[test]
    fn matches_dijkstra_on_ladder() {
        let g = ladder(8);
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(
                    bidirectional_pair(&g, s, t),
                    dijkstra_pair(&g, s, t),
                    "mismatch {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn same_node_zero() {
        let g = ladder(3);
        assert_eq!(bidirectional_pair(&g, 2, 2), Some(0));
    }

    #[test]
    fn disconnected_none() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        assert_eq!(bidirectional_pair(&g, 0, 1), None);
    }
}
