//! Embedding objects that lie *on edges* (or off the network) into the
//! vertex set.
//!
//! §II-A assumes `P, Q ⊆ V` and prescribes the reductions for everything
//! else: an object on an edge is handled through the edge's two endpoint
//! vertices, and an object off the network snaps to its closest network
//! point. This module implements both faithfully by *augmenting the
//! graph*: an edge-located object becomes a real vertex splitting its edge
//! (weights `offset` and `w - offset`), which is exactly equivalent to the
//! endpoint reduction (`delta(x, q) = min(delta(x, a) + offset,
//! delta(x, b) + (w - offset))`) but keeps every downstream algorithm
//! unchanged. Node ids of the base graph are preserved; new vertices get
//! ids `>= g.num_nodes()`.

use crate::graph::{Graph, GraphBuilder, NodeId, Weight};

/// A location on an edge `(u, v)`: `offset` length units from `u`
/// (`0 < offset < weight(u, v)`; endpoints should be passed as plain
/// vertices instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgePoint {
    pub u: NodeId,
    pub v: NodeId,
    pub offset: Weight,
}

/// Errors from [`embed_edge_points`].
#[derive(Debug, PartialEq, Eq)]
pub enum EmbedError {
    /// The referenced edge does not exist.
    NoSuchEdge(NodeId, NodeId),
    /// Offset is zero or >= the edge weight.
    BadOffset {
        edge: (NodeId, NodeId),
        offset: Weight,
        weight: Weight,
    },
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::NoSuchEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            EmbedError::BadOffset {
                edge,
                offset,
                weight,
            } => write!(
                f,
                "offset {offset} invalid for edge {edge:?} of weight {weight}"
            ),
        }
    }
}

impl std::error::Error for EmbedError {}

/// Split edges at the given points. Returns the augmented graph and the
/// new vertex id of each point (in input order).
///
/// Multiple points on the same edge are supported (sorted by offset and
/// chained). Existing vertex ids and all pairwise distances between them
/// are preserved: splitting an edge into segments whose weights sum to the
/// original weight changes no shortest path.
pub fn embed_edge_points(
    g: &Graph,
    points: &[EdgePoint],
) -> Result<(Graph, Vec<NodeId>), EmbedError> {
    // Validate and group points per normalized edge.
    use std::collections::HashMap;
    let mut per_edge: HashMap<(NodeId, NodeId), Vec<(Weight, usize)>> = HashMap::new();
    for (idx, p) in points.iter().enumerate() {
        let w = g
            .edge_weight(p.u, p.v)
            .ok_or(EmbedError::NoSuchEdge(p.u, p.v))?;
        if p.offset == 0 || p.offset >= w {
            return Err(EmbedError::BadOffset {
                edge: (p.u, p.v),
                offset: p.offset,
                weight: w,
            });
        }
        // Normalize to (min, max) with offset measured from the min node.
        let (a, b, off) = if p.u < p.v {
            (p.u, p.v, p.offset)
        } else {
            (p.v, p.u, w - p.offset)
        };
        per_edge.entry((a, b)).or_default().push((off, idx));
    }

    let mut b = GraphBuilder::with_capacity(
        g.num_nodes() + points.len(),
        g.num_edges() + 2 * points.len(),
    );
    for v in 0..g.num_nodes() {
        let c = g.coord(v as NodeId);
        b.add_node(c.x, c.y);
    }
    let mut new_ids = vec![NodeId::MAX; points.len()];
    for (u, v, w) in g.edges() {
        match per_edge.get_mut(&(u, v)) {
            None => b.add_edge(u, v, w),
            Some(splits) => {
                splits.sort_unstable();
                // Chain u -> s1 -> s2 -> ... -> v with segment weights.
                let cu = g.coord(u);
                let cv = g.coord(v);
                let mut prev = u;
                let mut prev_off: Weight = 0;
                for &(off, idx) in splits.iter() {
                    let t = off as f64 / w as f64;
                    let id = b.add_node(cu.x + (cv.x - cu.x) * t, cu.y + (cv.y - cu.y) * t);
                    new_ids[idx] = id;
                    // Coincident points on the same edge get weight-0
                    // segments clamped to 1 by the builder; reject instead
                    // to keep distances exact.
                    b.add_edge(prev, id, off - prev_off);
                    prev = id;
                    prev_off = off;
                }
                b.add_edge(prev, v, w - prev_off);
            }
        }
    }
    Ok((b.build(), new_ids))
}

/// Snap an off-network location to the nearest vertex by Euclidean
/// distance (the §II-A "closest point in the network" reduction for
/// vertex-granularity data). Linear scan; callers with many lookups should
/// use an R-tree over the coordinates instead.
pub fn snap_to_vertex(g: &Graph, x: f64, y: f64) -> Option<NodeId> {
    (0..g.num_nodes() as NodeId).min_by(|&a, &b| {
        let pa = g.coord(a);
        let pb = g.coord(b);
        let da = (pa.x - x).powi(2) + (pa.y - y).powi(2);
        let db = (pb.x - x).powi(2) + (pb.y - y).powi(2);
        da.total_cmp(&db).then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{dijkstra_all, dijkstra_pair};
    use crate::INF;

    fn square() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(10.0, 0.0);
        b.add_node(10.0, 10.0);
        b.add_node(0.0, 10.0);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 10);
        b.add_edge(2, 3, 10);
        b.add_edge(3, 0, 10);
        b.build()
    }

    #[test]
    fn split_preserves_existing_distances() {
        let g = square();
        let (g2, ids) = embed_edge_points(
            &g,
            &[
                EdgePoint {
                    u: 0,
                    v: 1,
                    offset: 3,
                },
                EdgePoint {
                    u: 2,
                    v: 3,
                    offset: 6,
                },
            ],
        )
        .unwrap();
        assert_eq!(g2.num_nodes(), 6);
        for s in 0..4 {
            let before = dijkstra_all(&g, s);
            for t in 0..4 {
                assert_eq!(
                    dijkstra_pair(&g2, s, t),
                    (before[t as usize] != INF).then_some(before[t as usize])
                );
            }
        }
        // New points sit at the right distances from the endpoints.
        assert_eq!(dijkstra_pair(&g2, 0, ids[0]), Some(3));
        assert_eq!(dijkstra_pair(&g2, 1, ids[0]), Some(7));
        assert_eq!(dijkstra_pair(&g2, 2, ids[1]), Some(6));
        assert_eq!(dijkstra_pair(&g2, 3, ids[1]), Some(4));
    }

    #[test]
    fn multiple_points_on_one_edge() {
        let g = square();
        let (g2, ids) = embed_edge_points(
            &g,
            &[
                EdgePoint {
                    u: 0,
                    v: 1,
                    offset: 7,
                },
                EdgePoint {
                    u: 0,
                    v: 1,
                    offset: 2,
                },
            ],
        )
        .unwrap();
        // Points keep their input order in `ids` regardless of offsets.
        assert_eq!(dijkstra_pair(&g2, 0, ids[0]), Some(7));
        assert_eq!(dijkstra_pair(&g2, 0, ids[1]), Some(2));
        assert_eq!(dijkstra_pair(&g2, ids[1], ids[0]), Some(5));
    }

    #[test]
    fn reversed_endpoint_order_is_equivalent() {
        let g = square();
        // Offset measured from v=1 side.
        let (g2, ids) = embed_edge_points(
            &g,
            &[EdgePoint {
                u: 1,
                v: 0,
                offset: 4,
            }],
        )
        .unwrap();
        assert_eq!(dijkstra_pair(&g2, 1, ids[0]), Some(4));
        assert_eq!(dijkstra_pair(&g2, 0, ids[0]), Some(6));
    }

    #[test]
    fn figure1_style_query_on_edge() {
        // A query object on an edge participates via both endpoints,
        // exactly the paper's q1-on-(p2, p3) situation.
        let g = square();
        let (g2, ids) = embed_edge_points(
            &g,
            &[EdgePoint {
                u: 0,
                v: 1,
                offset: 5,
            }],
        )
        .unwrap();
        let q = ids[0];
        // delta(2, q) = min(delta(2,0) + 5, delta(2,1) + 5) = 15.
        assert_eq!(dijkstra_pair(&g2, 2, q), Some(15));
    }

    #[test]
    fn errors_are_reported() {
        let g = square();
        assert!(matches!(
            embed_edge_points(
                &g,
                &[EdgePoint {
                    u: 0,
                    v: 2,
                    offset: 1
                }]
            ),
            Err(EmbedError::NoSuchEdge(0, 2))
        ));
        assert!(matches!(
            embed_edge_points(
                &g,
                &[EdgePoint {
                    u: 0,
                    v: 1,
                    offset: 0
                }]
            ),
            Err(EmbedError::BadOffset { .. })
        ));
        assert!(matches!(
            embed_edge_points(
                &g,
                &[EdgePoint {
                    u: 0,
                    v: 1,
                    offset: 10
                }]
            ),
            Err(EmbedError::BadOffset { .. })
        ));
    }

    #[test]
    fn snap_finds_nearest_vertex() {
        let g = square();
        assert_eq!(snap_to_vertex(&g, 1.0, 1.0), Some(0));
        assert_eq!(snap_to_vertex(&g, 9.0, 11.0), Some(2));
        let empty = GraphBuilder::new().build();
        assert_eq!(snap_to_vertex(&empty, 0.0, 0.0), None);
    }
}
