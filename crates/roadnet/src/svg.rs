//! SVG rendering of road networks and query answers.
//!
//! Debugging and demo aid: draw the network, highlight `P`/`Q`, the
//! winning data point, and the routes to the chosen flexible subset —
//! the same picture as the paper's Fig. 1. Pure string generation, no
//! graphics dependencies.

use crate::graph::{Graph, NodeId};
use crate::path::shortest_path;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Draw every edge (off for very large networks).
    pub draw_edges: bool,
    pub edge_color: &'static str,
    pub data_color: &'static str,
    pub query_color: &'static str,
    pub answer_color: &'static str,
    pub route_color: &'static str,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            draw_edges: true,
            edge_color: "#c8c8c8",
            data_color: "#222222",
            query_color: "#d62728",
            answer_color: "#1f77b4",
            route_color: "#2ca02c",
        }
    }
}

/// A scene to render: the network plus optional overlays.
pub struct SvgScene<'g> {
    graph: &'g Graph,
    data_points: Vec<NodeId>,
    query_points: Vec<NodeId>,
    answer: Option<(NodeId, Vec<NodeId>)>,
    options: SvgOptions,
}

impl<'g> SvgScene<'g> {
    pub fn new(graph: &'g Graph) -> Self {
        SvgScene {
            graph,
            data_points: Vec::new(),
            query_points: Vec::new(),
            answer: None,
            options: SvgOptions::default(),
        }
    }

    pub fn with_options(mut self, options: SvgOptions) -> Self {
        self.options = options;
        self
    }

    /// Highlight the data set `P`.
    pub fn data_points(mut self, p: &[NodeId]) -> Self {
        self.data_points = p.to_vec();
        self
    }

    /// Highlight the query set `Q`.
    pub fn query_points(mut self, q: &[NodeId]) -> Self {
        self.query_points = q.to_vec();
        self
    }

    /// Highlight an FANN answer: `p*` and routes to its flexible subset.
    pub fn answer(mut self, p_star: NodeId, subset: &[NodeId]) -> Self {
        self.answer = Some((p_star, subset.to_vec()));
        self
    }

    /// Render to an SVG document string.
    pub fn render(&self) -> String {
        let g = self.graph;
        let o = &self.options;
        // Bounding box with a margin.
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in 0..g.num_nodes() {
            let p = g.coord(v as NodeId);
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        if !min_x.is_finite() {
            return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>".to_string();
        }
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        let margin = 0.04 * o.width;
        let scale = (o.width - 2.0 * margin) / span_x;
        let height = span_y * scale + 2.0 * margin;
        let tx = |x: f64| (x - min_x) * scale + margin;
        // SVG y grows downward; flip so north is up.
        let ty = |y: f64| height - ((y - min_y) * scale + margin);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">",
            o.width, height, o.width, height
        );
        if o.draw_edges {
            let _ = writeln!(out, "<g stroke=\"{}\" stroke-width=\"0.7\">", o.edge_color);
            for (u, v, _) in g.edges() {
                let pu = g.coord(u);
                let pv = g.coord(v);
                let _ = writeln!(
                    out,
                    "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>",
                    tx(pu.x),
                    ty(pu.y),
                    tx(pv.x),
                    ty(pv.y)
                );
            }
            let _ = writeln!(out, "</g>");
        }
        // Routes first (under the markers).
        if let Some((p_star, subset)) = &self.answer {
            let _ = writeln!(
                out,
                "<g stroke=\"{}\" stroke-width=\"2.5\" fill=\"none\" opacity=\"0.8\">",
                o.route_color
            );
            for &qn in subset {
                if let Some((_, path)) = shortest_path(g, *p_star, qn) {
                    let mut d = String::new();
                    for (i, &node) in path.iter().enumerate() {
                        let p = g.coord(node);
                        let _ = write!(
                            d,
                            "{}{:.1},{:.1} ",
                            if i == 0 { "M" } else { "L" },
                            tx(p.x),
                            ty(p.y)
                        );
                    }
                    let _ = writeln!(out, "<path d=\"{}\"/>", d.trim_end());
                }
            }
            let _ = writeln!(out, "</g>");
        }
        let mut marker = |nodes: &[NodeId], color: &str, r: f64| {
            let _ = writeln!(out, "<g fill=\"{color}\">");
            for &v in nodes {
                let p = g.coord(v);
                let _ = writeln!(
                    out,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r:.1}\"/>",
                    tx(p.x),
                    ty(p.y)
                );
            }
            let _ = writeln!(out, "</g>");
        };
        marker(&self.data_points, o.data_color, 3.0);
        marker(&self.query_points, o.query_color, 4.0);
        if let Some((p_star, subset)) = &self.answer {
            let hl: HashSet<NodeId> = subset.iter().copied().collect();
            marker(&hl.into_iter().collect::<Vec<_>>(), o.route_color, 4.5);
            marker(&[*p_star], o.answer_color, 6.0);
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn small() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(10.0, 0.0);
        b.add_node(10.0, 10.0);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 10);
        b.build()
    }

    #[test]
    fn renders_wellformed_svg() {
        let g = small();
        let svg = SvgScene::new(&g)
            .data_points(&[0])
            .query_points(&[2])
            .answer(0, &[2])
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One <g> per layer, balanced tags.
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<path"), "route missing");
        assert!(svg.contains("<line"), "edges missing");
    }

    #[test]
    fn empty_graph_renders_stub() {
        let g = GraphBuilder::new().build();
        let svg = SvgScene::new(&g).render();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn edges_can_be_disabled() {
        let g = small();
        let svg = SvgScene::new(&g)
            .with_options(SvgOptions {
                draw_edges: false,
                ..SvgOptions::default()
            })
            .render();
        assert!(!svg.contains("<line"));
    }

    #[test]
    fn marker_counts_match_sets() {
        let g = small();
        let svg = SvgScene::new(&g)
            .data_points(&[0, 1])
            .query_points(&[2])
            .render();
        assert_eq!(svg.matches("<circle").count(), 3);
    }
}
