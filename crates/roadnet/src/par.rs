//! Minimal scoped worker-pool helper for deterministic parallel index
//! builds.
//!
//! The index builders (G-tree border matrices, hub-label batches) fan
//! independent per-item computations across a worker pool using the same
//! work-stealing-cursor idiom as the engine's batch runner: workers pull
//! item indices from a shared atomic cursor, compute locally, and results
//! are merged back in index order — so the output is bit-identical to a
//! sequential run regardless of worker count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count to use when the caller doesn't specify one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n` across up to `workers` threads and
/// collect the results in index order. Deterministic: the output depends
/// only on `f`, never on scheduling.
pub fn par_map_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor_ref = &cursor;
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index build worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in shards.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("work-stealing cursor covered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_any_worker_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_indexed(97, workers, |i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
