//! Epoch-versioned immutable network snapshots and a lock-free hot-swap
//! cell.
//!
//! The serving story for "road networks change frequently" (paper §IV):
//! readers never block and never observe a half-applied update. A
//! [`NetworkSnapshot`] is an immutable CSR graph plus an epoch and the
//! admissibility scale captured at creation; applying a batch of
//! [`WeightUpdate`]s produces a *new* snapshot copy-on-write (topology and
//! coordinates are structurally shared, only the weight array is copied)
//! with the epoch bumped. A [`SnapshotCell`] publishes snapshots to
//! concurrent readers with a single atomic pointer swap: readers pin the
//! current snapshot for a query's lifetime; writers publish a new epoch
//! without ever blocking the read path.
//!
//! Correctness contract: every update is validated against the snapshot's
//! admissibility scale (`w >= scale * euclid(u, v)`), so any
//! [`crate::LowerBound`] built with that scale stays admissible across
//! every epoch — A\*/IER answers on a patched graph remain exact.

use crate::dynamic::{check_admissible, UpdateError};
use crate::graph::{Graph, NodeId, Weight};
use crate::lowerbound::LowerBound;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One requested weight change: set the undirected edge `{u, v}` to `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightUpdate {
    pub u: NodeId,
    pub v: NodeId,
    pub w: Weight,
}

/// One validated, applied weight change, with the weight the edge carried
/// in the snapshot the batch was applied to. Index-repair logic uses
/// `w_old` to decide whether cached label distances can still be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedUpdate {
    pub u: NodeId,
    pub v: NodeId,
    pub w_old: Weight,
    pub w_new: Weight,
}

impl AppliedUpdate {
    /// Whether this change can only lengthen shortest paths.
    pub fn is_increase(&self) -> bool {
        self.w_new >= self.w_old
    }
}

/// The merged footprint of one or more applied update batches: the set of
/// touched edges (canonicalised across both orientations and repeat
/// updates), ready to be handed to the scoped index-repair paths
/// (`GTree::repair_scoped`, `HubLabels::repair_scoped`).
///
/// Merge semantics match index-staleness tracking: an edge keeps the
/// `w_old` of the *first* batch that touched it (the weight the indexes
/// were built against) and the `w_new` of the *latest*. An edge whose
/// weight round-trips back to its original value is deliberately kept —
/// scoped repair recomputes its neighbourhood, finds nothing changed, and
/// republishes fresh, which is cheaper than proving the round-trip safe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairScope {
    edges: Vec<AppliedUpdate>,
    increase_only: bool,
}

impl RepairScope {
    /// An empty scope (repairing it is a no-op).
    pub fn new() -> Self {
        RepairScope {
            edges: Vec::new(),
            increase_only: true,
        }
    }

    /// The scope of a single applied batch.
    pub fn from_applied(applied: &[AppliedUpdate]) -> Self {
        let mut s = Self::new();
        s.absorb(applied);
        s
    }

    /// Fold another applied batch into this scope (first `w_old` wins,
    /// latest `w_new` wins, either orientation matches).
    pub fn absorb(&mut self, applied: &[AppliedUpdate]) {
        for a in applied {
            match self
                .edges
                .iter_mut()
                .find(|e| (e.u, e.v) == (a.u, a.v) || (e.u, e.v) == (a.v, a.u))
            {
                Some(e) => e.w_new = a.w_new,
                None => self.edges.push(*a),
            }
        }
        self.increase_only = self.edges.iter().all(AppliedUpdate::is_increase);
    }

    /// No edges touched since the last repair.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct touched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// The merged per-edge old/new weights.
    pub fn edges(&self) -> &[AppliedUpdate] {
        &self.edges
    }

    /// Whether every merged change can only lengthen shortest paths
    /// (certified label distances then stay valid as upper bounds).
    pub fn increase_only(&self) -> bool {
        self.increase_only
    }

    /// The touched edges as `(u, v)` pairs, one per distinct edge.
    pub fn touched_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().map(|e| (e.u, e.v))
    }

    /// Every endpoint of a touched edge, sorted and deduplicated.
    pub fn endpoints(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.edges.iter().flat_map(|e| [e.u, e.v]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The distinct partition cells (e.g. G-tree leaves) containing a
    /// touched endpoint, given a node -> cell assignment. Sorted and
    /// deduplicated; endpoints outside the slice are ignored.
    pub fn leaves(&self, leaf_of: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .endpoints()
            .into_iter()
            .filter_map(|v| leaf_of.get(v as usize).copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// An immutable, epoch-versioned road network: the unit of publication in
/// the serving stack. Cheap to clone (the graph is a shared handle).
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    graph: Graph,
    epoch: u64,
    /// Admissibility scale captured when the lineage started; invariant
    /// across epochs because [`NetworkSnapshot::apply`] validates against
    /// it, so lower bounds built once stay admissible forever.
    scale: f64,
    /// The validated updates that produced this epoch from its
    /// predecessor (delta encoding of the epoch). Empty for epoch 0 and
    /// for republications; shared so clones stay cheap.
    delta: Arc<[AppliedUpdate]>,
}

impl NetworkSnapshot {
    /// Epoch 0 of a fresh lineage; captures the graph's admissibility
    /// scale ([`LowerBound::for_graph`]).
    pub fn new(graph: Graph) -> Self {
        let scale = LowerBound::for_graph(&graph).scale();
        NetworkSnapshot {
            graph,
            epoch: 0,
            scale,
            delta: Arc::from([]),
        }
    }

    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Publication counter: bumped by every [`NetworkSnapshot::apply`] and
    /// every republication ([`NetworkSnapshot::next_epoch`]).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lineage's admissibility scale (see [`LowerBound::with_scale`]).
    #[inline]
    pub fn admissibility_scale(&self) -> f64 {
        self.scale
    }

    /// An admissible lower bound valid for *every* epoch of this lineage.
    pub fn lower_bound(&self) -> LowerBound {
        LowerBound::with_scale(self.scale)
    }

    /// The validated updates that produced this epoch from its
    /// predecessor. Empty for epoch 0 and for `next_epoch`
    /// republications.
    #[inline]
    pub fn delta(&self) -> &[AppliedUpdate] {
        &self.delta
    }

    /// This epoch's delta as a ready-to-merge [`RepairScope`].
    pub fn repair_scope(&self) -> RepairScope {
        RepairScope::from_applied(&self.delta)
    }

    /// The same graph republished under the next epoch (used when
    /// swapping in repaired indexes: answers are unchanged, but readers
    /// can observe that a new snapshot was published).
    pub fn next_epoch(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            graph: self.graph.clone(),
            epoch: self.epoch + 1,
            scale: self.scale,
            delta: Arc::from([]),
        }
    }

    /// Copy-on-write batch update: validates every change (edge exists, no
    /// self-loops, weight at or above the admissible floor), then produces
    /// the next-epoch snapshot sharing this one's topology and coordinates.
    /// Nothing is published on error; later updates to the same edge win.
    ///
    /// Returns the new snapshot plus the per-edge old/new weights (for
    /// index staleness tracking). Weights are clamped to `>= 1` like every
    /// other construction path.
    pub fn apply(
        &self,
        updates: &[WeightUpdate],
    ) -> Result<(NetworkSnapshot, Vec<AppliedUpdate>), UpdateError> {
        let g = &self.graph;
        let n = g.num_nodes();
        let mut applied = Vec::with_capacity(updates.len());
        let mut patches = Vec::with_capacity(updates.len());
        for &WeightUpdate { u, v, w } in updates {
            if (u as usize) >= n {
                return Err(UpdateError::NoSuchNode(u));
            }
            if (v as usize) >= n {
                return Err(UpdateError::NoSuchNode(v));
            }
            if u == v {
                return Err(UpdateError::SelfLoop(u));
            }
            let w_old = g.edge_weight(u, v).ok_or(UpdateError::NoSuchEdge(u, v))?;
            let w = w.max(1);
            check_admissible(self.scale, g.euclid(u, v), u, v, w)?;
            applied.push(AppliedUpdate {
                u,
                v,
                w_old,
                w_new: w,
            });
            patches.push((u, v, w));
        }
        let graph = g
            .with_patched_weights(&patches)
            .expect("all edges validated to exist");
        Ok((
            NetworkSnapshot {
                graph,
                epoch: self.epoch + 1,
                scale: self.scale,
                delta: applied.clone().into(),
            },
            applied,
        ))
    }
}

/// A lock-free publication point for `Arc<T>` snapshots (hand-rolled,
/// std-only).
///
/// * [`SnapshotCell::load`] — readers pin the current snapshot: a counter
///   increment, one atomic pointer load, an `Arc` clone, a counter
///   decrement. Never blocks, never takes a lock.
/// * [`SnapshotCell::store`] — writers swap the pointer and retire the old
///   allocation; retired allocations are reclaimed only once the reader
///   counter has been observed at zero *after* the swap, so a reader
///   mid-`load` can never touch freed memory.
///
/// The SeqCst reasoning: a reader increments `readers` before loading the
/// pointer. If its load returned the old pointer, that load precedes the
/// writer's swap in the total order, hence so does the increment; the
/// writer's post-swap `readers` check therefore either sees the reader
/// (and defers reclamation to a later store or drop) or the reader has
/// already finished cloning and decremented. Either way no retired box is
/// freed while a reader may still dereference it.
pub struct SnapshotCell<T> {
    /// Current snapshot: a leaked `Box<Arc<T>>`, swapped atomically.
    ptr: AtomicPtr<Arc<T>>,
    /// Readers currently between the increment and decrement in `load`.
    readers: AtomicUsize,
    /// Swapped-out boxes awaiting quiescence.
    retired: Mutex<Vec<*mut Arc<T>>>,
}

// The raw pointers are owned Box allocations managed under the mutex /
// atomic protocol above; T itself crosses threads only inside Arc.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            readers: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pin the current snapshot. Wait-free for readers; the returned `Arc`
    /// keeps the snapshot alive for as long as the caller holds it — the
    /// "pin for a query's lifetime" primitive.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst);
        // Safety: `p` came from Box::into_raw and cannot have been freed:
        // reclamation requires observing `readers == 0` after the swap
        // that retired it, and this reader registered before the load.
        let pinned = unsafe { (*p).clone() };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        pinned
    }

    /// Publish a new snapshot. Readers that already pinned the previous
    /// one keep it (their `Arc` holds the value alive); subsequent loads
    /// see the new one. Never blocks readers; concurrent writers serialize
    /// only on the short retire-list mutex.
    pub fn store(&self, value: Arc<T>) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(fresh, Ordering::SeqCst);
        let mut retired = self.retired.lock().unwrap();
        retired.push(old);
        if self.readers.load(Ordering::SeqCst) == 0 {
            for p in retired.drain(..) {
                // Safety: no reader can still dereference a retired box
                // (see the type-level comment); each box is freed once.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers can exist anymore.
        let current = *self.ptr.get_mut();
        drop(unsafe { Box::from_raw(current) });
        for p in self.retired.get_mut().unwrap().drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;
    use crate::graph::GraphBuilder;

    fn line(n: u32, w: Weight) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, w);
        }
        b.build()
    }

    #[test]
    fn apply_bumps_epoch_and_shares_topology() {
        let snap = NetworkSnapshot::new(line(4, 5));
        assert_eq!(snap.epoch(), 0);
        let (next, applied) = snap.apply(&[WeightUpdate { u: 1, v: 2, w: 9 }]).unwrap();
        assert_eq!(next.epoch(), 1);
        assert!(next.graph().shares_topology_with(snap.graph()));
        assert_eq!(applied.len(), 1);
        assert_eq!((applied[0].w_old, applied[0].w_new), (5, 9));
        assert!(applied[0].is_increase());
        // Old snapshot untouched; new one answers on the patched weights.
        assert_eq!(dijkstra_pair(snap.graph(), 0, 3), Some(15));
        assert_eq!(dijkstra_pair(next.graph(), 0, 3), Some(19));
    }

    #[test]
    fn apply_validates_and_publishes_nothing_on_error() {
        let snap = NetworkSnapshot::new(line(3, 5));
        for (updates, want) in [
            (
                vec![WeightUpdate { u: 0, v: 2, w: 9 }],
                UpdateError::NoSuchEdge(0, 2),
            ),
            (
                vec![WeightUpdate { u: 9, v: 1, w: 9 }],
                UpdateError::NoSuchNode(9),
            ),
            (
                vec![WeightUpdate { u: 1, v: 1, w: 9 }],
                UpdateError::SelfLoop(1),
            ),
        ] {
            assert_eq!(snap.apply(&updates).unwrap_err(), want);
        }
        // A valid prefix before the bad update is also discarded.
        let err = snap
            .apply(&[
                WeightUpdate { u: 0, v: 1, w: 50 },
                WeightUpdate { u: 0, v: 2, w: 1 },
            ])
            .unwrap_err();
        assert_eq!(err, UpdateError::NoSuchEdge(0, 2));
        assert_eq!(snap.graph().edge_weight(0, 1), Some(5));
    }

    #[test]
    fn apply_rejects_weights_below_the_admissible_floor() {
        // Unit spacing, weight 5 edges: scale = 5 (every weight is 5x its
        // Euclidean length). Dropping an edge to 4 would break bounds
        // built with that scale.
        let snap = NetworkSnapshot::new(line(4, 5));
        assert!((snap.admissibility_scale() - 5.0).abs() < 1e-6);
        match snap.apply(&[WeightUpdate { u: 1, v: 2, w: 4 }]) {
            Err(UpdateError::Inadmissible { min, .. }) => assert_eq!(min, 5),
            other => panic!("expected Inadmissible, got {other:?}"),
        }
        // At the floor is fine; the scale survives into the next epoch.
        let (next, _) = snap.apply(&[WeightUpdate { u: 1, v: 2, w: 5 }]).unwrap();
        assert_eq!(next.admissibility_scale(), snap.admissibility_scale());
    }

    #[test]
    fn later_updates_to_the_same_edge_win_and_record_the_snapshot_old() {
        let snap = NetworkSnapshot::new(line(3, 5));
        let (next, applied) = snap
            .apply(&[
                WeightUpdate { u: 0, v: 1, w: 30 },
                WeightUpdate { u: 1, v: 0, w: 40 },
            ])
            .unwrap();
        assert_eq!(next.graph().edge_weight(0, 1), Some(40));
        // Both entries report the pre-batch weight as old.
        assert!(applied.iter().all(|a| a.w_old == 5));
    }

    #[test]
    fn apply_records_the_epoch_delta() {
        let snap = NetworkSnapshot::new(line(4, 5));
        assert!(snap.delta().is_empty());
        let (next, applied) = snap
            .apply(&[
                WeightUpdate { u: 1, v: 2, w: 9 },
                WeightUpdate { u: 2, v: 3, w: 7 },
            ])
            .unwrap();
        assert_eq!(next.delta(), &applied[..]);
        assert!(next.next_epoch().delta().is_empty());
        let scope = next.repair_scope();
        assert_eq!(scope.len(), 2);
        assert_eq!(scope.endpoints(), vec![1, 2, 3]);
    }

    #[test]
    fn repair_scope_merges_like_staleness_tracking() {
        let mut scope = RepairScope::new();
        assert!(scope.is_empty() && scope.increase_only());
        scope.absorb(&[AppliedUpdate {
            u: 1,
            v: 2,
            w_old: 5,
            w_new: 9,
        }]);
        // Opposite orientation merges into the same entry; first w_old
        // is kept, latest w_new wins.
        scope.absorb(&[AppliedUpdate {
            u: 2,
            v: 1,
            w_old: 9,
            w_new: 3,
        }]);
        assert_eq!(scope.len(), 1);
        assert_eq!((scope.edges()[0].w_old, scope.edges()[0].w_new), (5, 3));
        assert!(!scope.increase_only());
        // A round-trip back to the original weight is kept, not dropped.
        scope.absorb(&[AppliedUpdate {
            u: 1,
            v: 2,
            w_old: 3,
            w_new: 5,
        }]);
        assert_eq!(scope.len(), 1);
        assert_eq!((scope.edges()[0].w_old, scope.edges()[0].w_new), (5, 5));
        assert!(scope.increase_only());
        // Leaf resolution dedups cells across endpoints.
        let leaf_of = [7u32, 3, 3, 9];
        scope.absorb(&[AppliedUpdate {
            u: 0,
            v: 1,
            w_old: 5,
            w_new: 6,
        }]);
        assert_eq!(scope.leaves(&leaf_of), vec![3, 7]);
        assert_eq!(
            scope.touched_pairs().collect::<Vec<_>>(),
            vec![(1, 2), (0, 1)]
        );
    }

    #[test]
    fn next_epoch_republishes_the_same_graph() {
        let snap = NetworkSnapshot::new(line(3, 2));
        let re = snap.next_epoch();
        assert_eq!(re.epoch(), 1);
        assert!(re.graph().shares_topology_with(snap.graph()));
        assert_eq!(
            dijkstra_pair(re.graph(), 0, 2),
            dijkstra_pair(snap.graph(), 0, 2)
        );
    }

    #[test]
    fn cell_load_store_roundtrip() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // A pinned snapshot survives the swap-out.
        let pinned = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*pinned, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn cell_swaps_are_never_torn_under_contention() {
        // Each snapshot is (epoch, 31 * epoch): readers verify the pair is
        // internally consistent and that epochs never go backwards.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let writers = 3;
        let readers = 5;
        let epochs_per_writer = 400u64;
        let published = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let cell = Arc::clone(&cell);
                let published = Arc::clone(&published);
                scope.spawn(move || {
                    for _ in 0..epochs_per_writer {
                        let e = published.fetch_add(1, Ordering::SeqCst) as u64 + 1;
                        cell.store(Arc::new((e, 31 * e)));
                    }
                });
            }
            for _ in 0..readers {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2_000 {
                        let snap = cell.load();
                        let (e, check) = *snap;
                        assert_eq!(check, 31 * e, "torn snapshot");
                        assert!(e >= last || e == 0, "epoch went backwards");
                        last = last.max(e);
                    }
                });
            }
        });
    }
}
