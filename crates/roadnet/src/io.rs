//! Graph IO: DIMACS challenge-9 format and a compact text format.
//!
//! The paper's datasets (Table III) are the 9th DIMACS Implementation
//! Challenge USA road graphs, distributed as a `.gr` file (arcs) plus a
//! `.co` file (coordinates). [`load_dimacs`] parses that pair so the
//! harness can run on the paper's exact inputs when the files are present;
//! otherwise the `workload` crate substitutes synthetic networks
//! (DESIGN.md §5).

use crate::graph::{Graph, GraphBuilder, NodeId, Weight};
use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Errors raised while parsing graph files.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Line number and description of the malformed content.
    Parse(usize, String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err<T: fmt::Display>(line: usize, msg: T) -> IoError {
    IoError::Parse(line, msg.to_string())
}

/// Drive `f` over every line of `r` through one reusable byte buffer — no
/// per-line `String` allocation, which matters for continental `.gr` files
/// with hundreds of millions of lines. `f` receives the 1-based line number
/// (reported in every parse error) and the raw line.
fn for_each_line<R: Read>(
    r: R,
    mut f: impl FnMut(usize, &str) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut rd = BufReader::with_capacity(1 << 20, r);
    let mut buf = Vec::with_capacity(256);
    let mut lno = 0usize;
    loop {
        buf.clear();
        if rd.read_until(b'\n', &mut buf)? == 0 {
            return Ok(());
        }
        lno += 1;
        let line = std::str::from_utf8(&buf).map_err(|e| parse_err(lno, e))?;
        f(lno, line)?;
    }
}

/// Parse a DIMACS `.gr` arc stream and a `.co` coordinate stream into a
/// graph. DIMACS node ids are 1-based; the result is 0-based. Arcs in `.gr`
/// files appear in both directions; [`GraphBuilder`] dedupes them.
///
/// Coordinates in `.co` files are integer micro-degrees; they are kept
/// verbatim as `f64` — call [`crate::LowerBound::for_graph`] afterwards to
/// get an admissible Euclidean bound regardless of the unit mismatch.
pub fn read_dimacs<R1: Read, R2: Read>(gr: R1, co: R2) -> Result<Graph, IoError> {
    let mut builder = GraphBuilder::new();
    let mut declared_nodes = 0usize;

    for_each_line(co, |lno, line| {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("v") => {
                let id: usize = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing node id"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                let x: f64 = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing x"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                let y: f64 = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing y"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                if id == 0 || id != builder.num_nodes() + 1 {
                    return Err(parse_err(lno, format!("non-sequential node id {id}")));
                }
                builder.add_node(x, y);
            }
            Some("c") | Some("p") | None => {}
            Some(other) => return Err(parse_err(lno, format!("unknown record '{other}'"))),
        }
        Ok(())
    })?;

    for_each_line(gr, |lno, line| {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("a") => {
                let u: usize = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing tail"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing head"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                let w: Weight = it
                    .next()
                    .ok_or_else(|| parse_err(lno, "missing weight"))?
                    .parse()
                    .map_err(|e| parse_err(lno, e))?;
                let n = builder.num_nodes();
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(parse_err(lno, format!("arc ({u},{v}) out of range")));
                }
                builder.add_edge((u - 1) as NodeId, (v - 1) as NodeId, w);
            }
            Some("p") => {
                // "p sp <n> <m>"
                it.next();
                if let Some(n) = it.next() {
                    declared_nodes = n.parse().map_err(|e| parse_err(lno, e))?;
                }
            }
            Some("c") | None => {}
            Some(other) => return Err(parse_err(lno, format!("unknown record '{other}'"))),
        }
        Ok(())
    })?;

    if declared_nodes != 0 && declared_nodes != builder.num_nodes() {
        return Err(parse_err(
            0,
            format!(
                "gr declares {declared_nodes} nodes but co provides {}",
                builder.num_nodes()
            ),
        ));
    }
    Ok(builder.build())
}

/// Load a DIMACS graph from `<stem>.gr` + `<stem>.co` on disk.
pub fn load_dimacs<P: AsRef<Path>>(stem: P) -> Result<Graph, IoError> {
    let stem = stem.as_ref();
    let gr = std::fs::File::open(stem.with_extension("gr"))?;
    let co = std::fs::File::open(stem.with_extension("co"))?;
    read_dimacs(gr, co)
}

/// Serialize a graph in the compact text format:
/// first line `n m`, then `n` lines `x y`, then `m` lines `u v w` (0-based).
pub fn write_compact(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", g.num_nodes(), g.num_edges()));
    for v in 0..g.num_nodes() {
        let p = g.coord(v as NodeId);
        out.push_str(&format!("{} {}\n", p.x, p.y));
    }
    for (u, v, w) in g.edges() {
        out.push_str(&format!("{u} {v} {w}\n"));
    }
    out
}

/// Parse the compact text format produced by [`write_compact`].
pub fn read_compact(text: &str) -> Result<Graph, IoError> {
    let mut lines = text.lines().enumerate();
    let (lno, header) = lines.next().ok_or_else(|| parse_err(0, "empty input"))?;
    let mut it = header.split_ascii_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| parse_err(lno + 1, "missing n"))?
        .parse()
        .map_err(|e| parse_err(lno + 1, e))?;
    let m: usize = it
        .next()
        .ok_or_else(|| parse_err(lno + 1, "missing m"))?
        .parse()
        .map_err(|e| parse_err(lno + 1, e))?;
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let (lno, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "unexpected EOF in nodes"))?;
        let mut it = line.split_ascii_whitespace();
        let x: f64 = it
            .next()
            .ok_or_else(|| parse_err(lno + 1, "missing x"))?
            .parse()
            .map_err(|e| parse_err(lno + 1, e))?;
        let y: f64 = it
            .next()
            .ok_or_else(|| parse_err(lno + 1, "missing y"))?
            .parse()
            .map_err(|e| parse_err(lno + 1, e))?;
        b.add_node(x, y);
    }
    for _ in 0..m {
        let (lno, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "unexpected EOF in edges"))?;
        let mut it = line.split_ascii_whitespace();
        let u: NodeId = it
            .next()
            .ok_or_else(|| parse_err(lno + 1, "missing u"))?
            .parse()
            .map_err(|e| parse_err(lno + 1, e))?;
        let v: NodeId = it
            .next()
            .ok_or_else(|| parse_err(lno + 1, "missing v"))?
            .parse()
            .map_err(|e| parse_err(lno + 1, e))?;
        let w: Weight = it
            .next()
            .ok_or_else(|| parse_err(lno + 1, "missing w"))?
            .parse()
            .map_err(|e| parse_err(lno + 1, e))?;
        if (u as usize) >= n || (v as usize) >= n {
            return Err(parse_err(lno + 1, format!("edge ({u},{v}) out of range")));
        }
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;

    const GR: &str = "c tiny graph\n\
                      p sp 3 4\n\
                      a 1 2 5\n\
                      a 2 1 5\n\
                      a 2 3 7\n\
                      a 3 2 7\n";
    const CO: &str = "c coordinates\n\
                      v 1 0 0\n\
                      v 2 3 4\n\
                      v 3 6 8\n";

    #[test]
    fn parses_dimacs_pair() {
        let g = read_dimacs(GR.as_bytes(), CO.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(dijkstra_pair(&g, 0, 2), Some(12));
        assert_eq!(g.coord(1).x, 3.0);
    }

    #[test]
    fn rejects_out_of_range_arc() {
        let bad = "a 1 9 5\n";
        let err = read_dimacs(bad.as_bytes(), CO.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_, _)));
    }

    #[test]
    fn rejects_unknown_record() {
        let bad = "x what\n";
        assert!(read_dimacs(GR.as_bytes(), bad.as_bytes()).is_err());
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        let co = "c ok\nv 1 0 0\nv 2 nonsense 4\n";
        match read_dimacs(GR.as_bytes(), co.as_bytes()) {
            Err(IoError::Parse(3, _)) => {}
            other => panic!("expected parse error at line 3, got {other:?}"),
        }
        let gr = "a 1 2 5\na 2 1 bad\n";
        match read_dimacs(gr.as_bytes(), CO.as_bytes()) {
            Err(IoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn handles_missing_trailing_newline_and_crlf() {
        let gr = "p sp 3 4\r\na 1 2 5\r\na 2 3 7";
        let g = read_dimacs(gr.as_bytes(), CO.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(dijkstra_pair(&g, 0, 2), Some(12));
    }

    #[test]
    fn rejects_node_count_mismatch() {
        let gr = "p sp 5 0\n";
        let err = read_dimacs(gr.as_bytes(), CO.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declares 5"));
    }

    #[test]
    fn compact_roundtrip() {
        let g = read_dimacs(GR.as_bytes(), CO.as_bytes()).unwrap();
        let text = write_compact(&g);
        let g2 = read_compact(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(dijkstra_pair(&g2, 0, 2), dijkstra_pair(&g, 0, 2));
    }

    #[test]
    fn compact_rejects_truncated() {
        assert!(read_compact("3 1\n0 0\n").is_err());
        assert!(read_compact("").is_err());
    }
}
