//! Shard map for the partitioned serving tier (`FANNSM2\0` flat container).
//!
//! A shard map assigns every node of a graph to exactly one *shard* (a
//! serve process owning a region of the network) and records, per shard,
//! the summary the router needs to prune shards before contacting them:
//!
//! * the shard's **region MBR** — the bounding rectangle of its owned node
//!   coordinates, so `mdist(b_Q, shard)` is computable from eight floats;
//! * its **border set** — owned nodes with at least one edge into another
//!   shard (the cut summary; diagnostics and future boundary-aware work);
//! * the graph's **admissibility scale** `s` with
//!   `w(u,v) >= s * euclid(u,v)` for every edge, frozen at partition time
//!   so every shard and the router price distances identically.
//!
//! The pruning contract mirrors the paper's `φM·mdist` R-tree bound
//! (DESIGN.md §12): for any data object `p` owned by shard `S` and any
//! query point `q` inside the query rectangle `b_Q`,
//! `delta(q, p) >= s · euclid(q, p) >= s · mdist(b_Q, region(S))`, so
//! `flex_k(φ,|Q|) · s · mdist(b_Q, region(S))` lower-bounds the SUM
//! aggregate of any candidate in `S` (and the plain `s · mdist` bound the
//! MAX aggregate). A shard whose bound exceeds the best merged answer
//! cannot hold the optimum.
//!
//! On-disk layout (v2 container, magic `FANNSM2\0`): sections
//! `[meta: u32 x2 (num_shards, num_nodes)] [owner: u32 per node]`
//! `[regions: f64 x4 per shard (min_x, min_y, max_x, max_y)]`
//! `[border_off: u32 x (num_shards+1)] [borders: u32] [scale: f64 x1]`.

use std::path::Path;

use crate::flat::{ensure, FlatError, FlatFile, FlatVec, FlatWriter, LoadMode};
use crate::graph::{Graph, NodeId};
use crate::lowerbound::LowerBound;
use crate::Dist;

/// Magic bytes of the shard-map container.
pub const SHARD_MAP_MAGIC: [u8; 8] = *b"FANNSM2\0";

/// Current shard-map format version.
pub const SHARD_MAP_VERSION: u32 = 1;

const SECTIONS: usize = 6;

/// Per-node shard ownership plus per-shard region summaries. Clones are
/// O(1) handle copies (the arrays are [`FlatVec`]s).
#[derive(Debug, Clone)]
pub struct ShardMap {
    num_shards: u32,
    owner: FlatVec<u32>,
    regions: FlatVec<f64>,
    border_off: FlatVec<u32>,
    borders: FlatVec<u32>,
    scale: f64,
    owned: Vec<u64>,
}

impl ShardMap {
    /// Build a shard map from an explicit partition of `g`'s nodes. The
    /// parts must be non-overlapping and cover every node; each part
    /// becomes the shard with its index as id.
    ///
    /// # Panics
    ///
    /// Panics if the parts are not a partition of `0..g.num_nodes()`.
    pub fn build(g: &Graph, parts: &[Vec<NodeId>]) -> ShardMap {
        let n: usize = g.num_nodes();
        let shards = parts.len();
        assert!(shards > 0, "shard map needs at least one shard");
        assert!(shards <= u32::MAX as usize, "too many shards");
        let mut owner = vec![u32::MAX; n];
        for (s, part) in parts.iter().enumerate() {
            for &v in part {
                assert!(
                    (v as usize) < n,
                    "partition names node {v} outside the graph"
                );
                assert!(
                    owner[v as usize] == u32::MAX,
                    "node {v} assigned to two shards"
                );
                owner[v as usize] = s as u32;
            }
        }
        assert!(
            owner.iter().all(|&s| s != u32::MAX),
            "partition does not cover every node"
        );

        // Region MBRs from owned coordinates. An empty shard keeps the
        // inverted rectangle (min > max): its mindist is +inf, so it is
        // always pruned.
        let mut regions = vec![0.0f64; shards * 4];
        for s in 0..shards {
            regions[s * 4] = f64::INFINITY;
            regions[s * 4 + 1] = f64::INFINITY;
            regions[s * 4 + 2] = f64::NEG_INFINITY;
            regions[s * 4 + 3] = f64::NEG_INFINITY;
        }
        for (v, &s) in owner.iter().enumerate() {
            let c = g.coord(v as NodeId);
            let r = &mut regions[s as usize * 4..s as usize * 4 + 4];
            r[0] = r[0].min(c.x);
            r[1] = r[1].min(c.y);
            r[2] = r[2].max(c.x);
            r[3] = r[3].max(c.y);
        }

        // Border summary: owned nodes with an edge into another shard,
        // grouped per shard in CSR form.
        let mut border_off = vec![0u32; shards + 1];
        let mut borders: Vec<u32> = Vec::new();
        for s in 0..shards as u32 {
            for v in 0..n as NodeId {
                if owner[v as usize] == s && g.neighbors(v).any(|(u, _)| owner[u as usize] != s) {
                    borders.push(v);
                }
            }
            border_off[s as usize + 1] = borders.len() as u32;
        }

        let mut owned = vec![0u64; shards];
        for &s in &owner {
            owned[s as usize] += 1;
        }

        ShardMap {
            num_shards: shards as u32,
            owner: owner.into(),
            regions: regions.into(),
            border_off: border_off.into(),
            borders: borders.into(),
            scale: LowerBound::for_graph(g).scale(),
            owned,
        }
    }

    #[inline]
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    #[inline]
    pub fn num_nodes(&self) -> NodeId {
        self.owner.len() as NodeId
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> u32 {
        self.owner[v as usize]
    }

    /// The shard owning edge `{u, v}`: the owner of the smaller endpoint.
    /// This is the routing rule for weight updates — exactly one shard
    /// applies each edge update.
    #[inline]
    pub fn edge_owner(&self, u: NodeId, v: NodeId) -> u32 {
        self.owner(u.min(v))
    }

    /// The shard's region MBR as `[min_x, min_y, max_x, max_y]`.
    #[inline]
    pub fn region(&self, s: u32) -> [f64; 4] {
        let r = &self.regions[s as usize * 4..s as usize * 4 + 4];
        [r[0], r[1], r[2], r[3]]
    }

    /// The shard's border nodes (owned nodes with an edge to another shard).
    pub fn border_nodes(&self, s: u32) -> &[u32] {
        &self.borders
            [self.border_off[s as usize] as usize..self.border_off[s as usize + 1] as usize]
    }

    /// Number of nodes owned by shard `s`.
    #[inline]
    pub fn owned_nodes(&self, s: u32) -> u64 {
        self.owned[s as usize]
    }

    /// The admissibility scale frozen at partition time.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Geometric `mdist` between the query rectangle and the shard region
    /// (0 when they overlap, +inf for an empty shard).
    pub fn mindist_rect(&self, s: u32, rect: [f64; 4]) -> f64 {
        let r = self.region(s);
        let dx = (r[0] - rect[2]).max(rect[0] - r[2]).max(0.0);
        let dy = (r[1] - rect[3]).max(rect[1] - r[3]).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Admissible lower bound on the network distance from any query point
    /// inside `rect` (the MBR of Q, `b_Q`) to any node owned by shard `s`:
    /// `floor(scale · mdist(rect, region(s)))`. Multiply by `flex_k(φ,|Q|)`
    /// for the SUM aggregate (the `φM·mdist` bound).
    pub fn mindist_lower_bound(&self, s: u32, rect: [f64; 4]) -> Dist {
        let d = self.scale * self.mindist_rect(s, rect);
        if !d.is_finite() {
            return crate::INF;
        }
        d.floor().max(0.0) as Dist
    }

    /// Serialize to the `FANNSM2\0` container.
    pub fn write_flat(&self, path: &Path) -> std::io::Result<()> {
        let mut w = FlatWriter::new(SHARD_MAP_MAGIC, SHARD_MAP_VERSION);
        w.section::<u32>(&[self.num_shards, self.owner.len() as u32]);
        w.section::<u32>(&self.owner);
        w.section::<f64>(&self.regions);
        w.section::<u32>(&self.border_off);
        w.section::<u32>(&self.borders);
        w.section::<f64>(&[self.scale]);
        w.write_to(path)
    }

    /// Load a shard map with the default backing mode.
    pub fn read_flat(path: &Path) -> Result<ShardMap, FlatError> {
        Self::read_flat_with(path, LoadMode::Auto)
    }

    /// Load a shard map with an explicit [`LoadMode`], validating every
    /// structural invariant (ownership range, region shape, border CSR).
    pub fn read_flat_with(path: &Path, mode: LoadMode) -> Result<ShardMap, FlatError> {
        let f = FlatFile::open(path, SHARD_MAP_MAGIC, SHARD_MAP_VERSION, mode)?;
        ensure(f.section_count() == SECTIONS, "shard map section count")?;
        let meta: FlatVec<u32> = f.section(0)?;
        ensure(meta.len() == 2, "shard map meta length")?;
        let num_shards = meta[0];
        let num_nodes = meta[1] as usize;
        ensure(num_shards > 0, "shard map has zero shards")?;
        let owner: FlatVec<u32> = f.section(1)?;
        ensure(owner.len() == num_nodes, "owner length")?;
        ensure(owner.iter().all(|&s| s < num_shards), "owner out of range")?;
        let regions: FlatVec<f64> = f.section(2)?;
        ensure(regions.len() == num_shards as usize * 4, "regions length")?;
        let border_off: FlatVec<u32> = f.section(3)?;
        ensure(
            border_off.len() == num_shards as usize + 1,
            "border offsets length",
        )?;
        ensure(border_off[0] == 0, "border offsets start")?;
        ensure(
            border_off.windows(2).all(|w| w[0] <= w[1]),
            "border offsets monotone",
        )?;
        let borders: FlatVec<u32> = f.section(4)?;
        ensure(
            *border_off.last().unwrap() as usize == borders.len(),
            "border offsets end",
        )?;
        ensure(
            borders.iter().all(|&v| (v as usize) < num_nodes),
            "border node out of range",
        )?;
        let scale_sec: FlatVec<f64> = f.section(5)?;
        ensure(scale_sec.len() == 1, "scale length")?;
        let scale = scale_sec[0];
        ensure(scale.is_finite() && scale >= 0.0, "scale value")?;
        let mut owned = vec![0u64; num_shards as usize];
        for &s in owner.iter() {
            owned[s as usize] += 1;
        }
        Ok(ShardMap {
            num_shards,
            owner,
            regions,
            border_off,
            borders,
            scale,
            owned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 2x3 grid: nodes 0..3 on the left column pair, 3..6 on the right.
    fn grid() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node((i / 2) as f64 * 10.0, (i % 2) as f64 * 10.0);
        }
        for i in 0..4u32 {
            b.add_edge(i, i + 2, 10);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(2, 3, 10);
        b.add_edge(4, 5, 10);
        b.build()
    }

    fn two_shards(g: &Graph) -> ShardMap {
        ShardMap::build(g, &[vec![0, 1, 2, 3], vec![4, 5]])
    }

    #[test]
    fn build_records_owner_regions_borders() {
        let g = grid();
        let m = two_shards(&g);
        assert_eq!(m.num_shards(), 2);
        assert_eq!(m.num_nodes(), 6);
        assert_eq!(m.owner(0), 0);
        assert_eq!(m.owner(5), 1);
        assert_eq!(m.edge_owner(5, 2), 0, "edge owner is the smaller endpoint");
        assert_eq!(m.region(0), [0.0, 0.0, 10.0, 10.0]);
        assert_eq!(m.region(1), [20.0, 0.0, 20.0, 10.0]);
        assert_eq!(m.border_nodes(0), &[2, 3]);
        assert_eq!(m.border_nodes(1), &[4, 5]);
        assert_eq!(m.owned_nodes(0), 4);
        assert_eq!(m.owned_nodes(1), 2);
        assert!((m.scale() - 1.0).abs() < 1e-9, "grid edges have ratio 1");
    }

    #[test]
    fn mindist_zero_on_overlap_positive_when_apart() {
        let g = grid();
        let m = two_shards(&g);
        // Rect covering shard 0's region overlaps it, misses shard 1 by 10.
        let rect = [0.0, 0.0, 5.0, 5.0];
        assert_eq!(m.mindist_rect(0, rect), 0.0);
        assert!((m.mindist_rect(1, rect) - 15.0).abs() < 1e-9);
        assert_eq!(m.mindist_lower_bound(0, rect), 0);
        assert_eq!(m.mindist_lower_bound(1, rect), 14); // scale nudged below 1
    }

    #[test]
    fn bound_is_admissible_per_shard() {
        let g = grid();
        let m = two_shards(&g);
        // For every (q, p) pair, the shard bound from q's degenerate rect
        // must not exceed the true network distance.
        for q in 0..6u32 {
            let c = g.coord(q);
            let rect = [c.x, c.y, c.x, c.y];
            let d = crate::dijkstra::dijkstra_all(&g, q);
            for p in 0..6u32 {
                let s = m.owner(p);
                assert!(
                    m.mindist_lower_bound(s, rect) <= d[p as usize],
                    "bound for shard {s} exceeds delta({q},{p})"
                );
            }
        }
    }

    #[test]
    fn round_trips_through_flat_container() {
        let g = grid();
        let m = two_shards(&g);
        let path = std::env::temp_dir().join(format!("fannr-shardmap-{}", std::process::id()));
        m.write_flat(&path).unwrap();
        let r = ShardMap::read_flat(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(r.num_shards(), m.num_shards());
        assert_eq!(r.num_nodes(), m.num_nodes());
        for v in 0..6 {
            assert_eq!(r.owner(v), m.owner(v));
        }
        for s in 0..2 {
            assert_eq!(r.region(s), m.region(s));
            assert_eq!(r.border_nodes(s), m.border_nodes(s));
            assert_eq!(r.owned_nodes(s), m.owned_nodes(s));
        }
        assert_eq!(r.scale(), m.scale());
    }

    #[test]
    fn load_rejects_out_of_range_owner() {
        let g = grid();
        let m = two_shards(&g);
        let path = std::env::temp_dir().join(format!("fannr-shardmap-bad-{}", std::process::id()));
        // Rewrite with a one-shard meta so owner value 1 is out of range.
        let mut w = FlatWriter::new(SHARD_MAP_MAGIC, SHARD_MAP_VERSION);
        w.section::<u32>(&[1, 6]);
        let owner: Vec<u32> = (0..6).map(|v| m.owner(v)).collect();
        w.section::<u32>(&owner);
        w.section::<f64>(&[0.0, 0.0, 10.0, 10.0]);
        w.section::<u32>(&[0, 0]);
        w.section::<u32>(&[]);
        w.section::<f64>(&[1.0]);
        w.write_to(&path).unwrap();
        let err = ShardMap::read_flat(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, FlatError::Corrupt("owner out of range")));
    }

    #[test]
    #[should_panic(expected = "partition does not cover every node")]
    fn build_rejects_partial_partition() {
        let g = grid();
        ShardMap::build(&g, &[vec![0, 1], vec![4, 5]]);
    }

    #[test]
    fn empty_shard_is_always_pruned() {
        let g = grid();
        let m = ShardMap::build(&g, &[(0..6).collect(), vec![]]);
        assert_eq!(
            m.mindist_lower_bound(1, [0.0, 0.0, 100.0, 100.0]),
            crate::INF
        );
    }
}
