//! Admissible Euclidean lower bounds on network distance.
//!
//! For A* (and the Euclidean restriction in IER, §III-C) we need
//! `lb(u, v) <= delta(u, v)` for all node pairs. If every edge satisfies
//! `w(u, v) >= s * euclid(u, v)`, then by the triangle inequality every path
//! satisfies the same, so `s * euclid(u, v)` is a valid lower bound on the
//! shortest path. [`LowerBound::for_graph`] computes the largest such `s`
//! (capped at the value implied by the data; graphs from our generators have
//! `s = 1` by construction, imported graphs may need `s < 1`).

use crate::graph::{Graph, NodeId};
use crate::Dist;

/// A scaled-Euclidean lower bound `lb(u, v) = floor(scale * euclid(u, v))`.
#[derive(Debug, Clone, Copy)]
pub struct LowerBound {
    scale: f64,
}

impl LowerBound {
    /// A lower bound with an explicit scale. `scale` must be non-negative.
    pub fn with_scale(scale: f64) -> Self {
        assert!(scale >= 0.0 && scale.is_finite(), "invalid scale {scale}");
        LowerBound { scale }
    }

    /// The trivial (always-zero) bound; degrades A* to Dijkstra.
    pub fn zero() -> Self {
        LowerBound { scale: 0.0 }
    }

    /// Largest admissible scale for `g`: `min_e w(e) / euclid(e)` over all
    /// edges with positive Euclidean length. Edges of zero geometric length
    /// impose no constraint. Returns the zero bound for an edgeless graph.
    pub fn for_graph(g: &Graph) -> Self {
        let mut scale = f64::INFINITY;
        for (u, v, w) in g.edges() {
            let e = g.euclid(u, v);
            if e > 0.0 {
                scale = scale.min(w as f64 / e);
            }
        }
        if !scale.is_finite() {
            return LowerBound::zero();
        }
        // Nudge down to absorb floating-point error in euclid().
        LowerBound {
            scale: scale * (1.0 - 1e-12),
        }
    }

    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Lower bound on `delta(u, v)` as an integer distance.
    #[inline]
    pub fn bound(&self, g: &Graph, u: NodeId, v: NodeId) -> Dist {
        (self.scale * g.euclid(u, v)).floor().max(0.0) as Dist
    }

    /// Lower bound from a raw Euclidean distance (used with R-tree MBR
    /// `mindist` values, which are geometric, not node-to-node).
    #[inline]
    pub fn bound_euclid(&self, euclid: f64) -> Dist {
        (self.scale * euclid).floor().max(0.0) as Dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_all;
    use crate::graph::GraphBuilder;

    fn skewed() -> Graph {
        // Edge 0-1 has weight 5 but Euclidean length 10: scale must be <= 0.5.
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(10.0, 0.0);
        b.add_node(10.0, 10.0);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 20);
        b.build()
    }

    #[test]
    fn scale_is_min_weight_ratio() {
        let g = skewed();
        let lb = LowerBound::for_graph(&g);
        assert!((lb.scale() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bound_is_admissible_for_all_pairs() {
        let g = skewed();
        let lb = LowerBound::for_graph(&g);
        for s in 0..3 {
            let d = dijkstra_all(&g, s);
            for t in 0..3 {
                if d[t as usize] != crate::INF {
                    assert!(lb.bound(&g, s, t) <= d[t as usize], "lb({s},{t}) > delta");
                }
            }
        }
    }

    #[test]
    fn zero_bound_is_zero() {
        let g = skewed();
        let lb = LowerBound::zero();
        assert_eq!(lb.bound(&g, 0, 2), 0);
    }

    #[test]
    fn edgeless_graph_gets_zero_bound() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 1.0);
        let g = b.build();
        let lb = LowerBound::for_graph(&g);
        assert_eq!(lb.scale(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn negative_scale_rejected() {
        LowerBound::with_scale(-1.0);
    }
}
