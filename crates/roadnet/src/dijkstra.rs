//! Single-source and point-to-point Dijkstra search.

use crate::cancel::{CancelCheck, Cancelled};
use crate::graph::{Graph, NodeId};
use crate::recorder::SearchRecorder;
use crate::scratch::QueryScratch;
use crate::{Dist, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shortest-path distances from `src` to every node.
///
/// Unreachable nodes get [`INF`]. `O(|E| + |V| log |V|)` with a binary heap
/// and lazy deletion.
pub fn dijkstra_all(g: &Graph, src: NodeId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_nodes()];
    let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push((Reverse(0), src));
    while let Some((Reverse(d), v)) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (t, w) in g.neighbors(v) {
            let nd = d + w as Dist;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push((Reverse(nd), t));
            }
        }
    }
    dist
}

/// Point-to-point shortest-path distance; `None` when `t` is unreachable.
/// Terminates as soon as `t` is settled.
pub fn dijkstra_pair(g: &Graph, s: NodeId, t: NodeId) -> Option<Dist> {
    dijkstra_pair_with(g, s, t, &mut QueryScratch::new())
}

/// [`dijkstra_pair`] reusing `scratch`'s buffers — the throughput entry
/// point: no `O(|V|)` allocation or refill per query once the scratch has
/// grown to `|V|`.
pub fn dijkstra_pair_with(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
) -> Option<Dist> {
    dijkstra_pair_recorded(g, s, t, scratch, ())
}

/// [`dijkstra_pair_with`] with a live [`SearchRecorder`]; the `()` recorder
/// makes this identical to the untraced path.
pub fn dijkstra_pair_recorded<R: SearchRecorder>(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
    rec: R,
) -> Option<Dist> {
    match dijkstra_pair_cancellable(g, s, t, scratch, rec, ()) {
        Ok(d) => d,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`dijkstra_pair_recorded`] with a live [`CancelCheck`] polled once per
/// settled node: the search stops within one node expansion of
/// cancellation and reports [`Cancelled`] instead of a (possibly wrong)
/// distance. The `()` check makes this identical to the uncancellable
/// path.
pub fn dijkstra_pair_cancellable<R: SearchRecorder, C: CancelCheck>(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
    rec: R,
    cancel: C,
) -> Result<Option<Dist>, Cancelled> {
    if s == t {
        return Ok(Some(0));
    }
    scratch.begin(g.num_nodes());
    scratch.set_dist(s, 0);
    scratch.push(0, s);
    rec.heap_push();
    while let Some((d, v)) = scratch.pop() {
        rec.heap_pop();
        if v == t {
            rec.node_settled();
            return Ok(Some(d));
        }
        if d > scratch.dist(v) {
            continue;
        }
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        rec.node_settled();
        for (nb, w) in g.neighbors(v) {
            rec.edge_relaxed();
            let nd = d + w as Dist;
            if nd < scratch.dist(nb) {
                scratch.set_dist(nb, nd);
                scratch.push(nd, nb);
                rec.heap_push();
            }
        }
    }
    Ok(None)
}

/// Distances from `src` to all nodes within network radius `bound`
/// (inclusive), as `(node, dist)` pairs in settle order.
///
/// This is the building block for coverage-ratio workload generation
/// (query region `A x radius`, §VI-A) and for range-restricted expansion.
pub fn dijkstra_bounded(g: &Graph, src: NodeId, bound: Dist) -> Vec<(NodeId, Dist)> {
    let mut dist = vec![INF; g.num_nodes()];
    let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
    let mut out = Vec::new();
    dist[src as usize] = 0;
    heap.push((Reverse(0), src));
    while let Some((Reverse(d), v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        if d > bound {
            break;
        }
        out.push((v, d));
        for (t, w) in g.neighbors(v) {
            let nd = d + w as Dist;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push((Reverse(nd), t));
            }
        }
    }
    out
}

/// Network eccentricity of `src`: the maximum finite shortest-path distance
/// from `src` (the paper's *radius* seed computation, §VI-A).
pub fn eccentricity(g: &Graph, src: NodeId) -> Dist {
    dijkstra_all(g, src)
        .into_iter()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path graph 0 - 1 - 2 - 3 with weights 1, 2, 3.
    fn path() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        b.build()
    }

    #[test]
    fn all_distances_on_path() {
        let g = path();
        assert_eq!(dijkstra_all(&g, 0), vec![0, 1, 3, 6]);
        assert_eq!(dijkstra_all(&g, 3), vec![6, 5, 3, 0]);
    }

    #[test]
    fn pair_matches_all() {
        let g = path();
        assert_eq!(dijkstra_pair(&g, 0, 3), Some(6));
        assert_eq!(dijkstra_pair(&g, 2, 2), Some(0));
    }

    #[test]
    fn pair_with_recycled_scratch_matches_fresh() {
        let g = path();
        let mut scratch = QueryScratch::new();
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(
                    dijkstra_pair_with(&g, s, t, &mut scratch),
                    dijkstra_pair(&g, s, t),
                    "mismatch for {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn unreachable_is_none_and_inf() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        assert_eq!(dijkstra_pair(&g, 0, 1), None);
        assert_eq!(dijkstra_all(&g, 0)[1], INF);
    }

    #[test]
    fn shortest_path_prefers_cheaper_detour() {
        // 0 -10- 1, 0 -1- 2 -1- 1: detour costs 2.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        assert_eq!(dijkstra_pair(&g, 0, 1), Some(2));
    }

    #[test]
    fn bounded_stops_at_radius() {
        let g = path();
        let within = dijkstra_bounded(&g, 0, 3);
        assert_eq!(within, vec![(0, 0), (1, 1), (2, 3)]);
    }

    #[test]
    fn bounded_yields_settle_order() {
        let g = path();
        let all = dijkstra_bounded(&g, 1, u64::MAX);
        assert_eq!(all, vec![(1, 0), (0, 1), (2, 2), (3, 5)]);
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = path();
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(eccentricity(&g, 1), 5);
    }
}
