//! The "list of queues": one from-near-to-far data-object stream per query
//! point (paper §III-B / §IV-A).
//!
//! Each queue is a [`DijkstraIter`] from one query point, filtered to nodes
//! that carry a data object, with one-element lookahead. The queues are
//! advanced *alternately* ("switchable"): all per-queue state persists while
//! another queue runs. `R-List` and `Exact-max` are thin drivers on top.

use crate::cancel::CancelCheck;
use crate::expansion::DijkstraIter;
use crate::graph::{Graph, NodeId};
use crate::recorder::SearchRecorder;
use crate::scratch::ScratchPool;
use crate::Dist;

/// The stream interface the `R-List` / `Exact-max` drivers consume: `|Q|`
/// from-near-to-far object queues advanced alternately. Implemented by
/// [`ObjectStreams`] (one private expansion per query) and by
/// [`SharedStreams`] (a per-query view over one [`SharedExpansion`] reused
/// across a co-located batch). Both yield identical sequences for the same
/// `(sources, objects)` pair, so a driver's answer does not depend on which
/// implementation backs it.
pub trait StreamSet {
    /// Number of streams (`|Q|`).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Head (next unreported object and its distance) of stream `i`,
    /// advancing the underlying expansion as needed. `None` once the
    /// stream's component holds no further objects.
    fn head(&mut self, i: usize) -> Option<(NodeId, Dist)>;

    /// Pop the head of stream `i`.
    fn pop(&mut self, i: usize) -> Option<(NodeId, Dist)>;

    /// Index + head of the stream whose head distance is smallest
    /// (`L_min` in Algorithm 2); distance ties break towards the smaller
    /// stream index. `None` when every stream is exhausted.
    fn min_head(&mut self) -> Option<(usize, NodeId, Dist)> {
        let mut best: Option<(usize, NodeId, Dist)> = None;
        for i in 0..self.len() {
            if let Some((v, d)) = self.head(i) {
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, v, d));
                }
            }
        }
        best
    }

    /// Current head distances of all streams (exhausted streams yield
    /// `None`). Used to evaluate the R-List threshold.
    fn head_dists(&mut self) -> Vec<Option<Dist>> {
        (0..self.len())
            .map(|i| self.head(i).map(|(_, d)| d))
            .collect()
    }
}

/// Build a node-indexed membership mask for a set of object nodes.
pub fn membership(num_nodes: usize, objects: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; num_nodes];
    for &p in objects {
        assert!(
            (p as usize) < num_nodes,
            "object node {p} out of range (n = {num_nodes})"
        );
        mask[p as usize] = true;
    }
    mask
}

/// One from-near-to-far stream of data objects around a single source.
struct ObjectStream<'g, R: SearchRecorder = (), C: CancelCheck = ()> {
    expansion: DijkstraIter<'g, R, C>,
    /// Lookahead: the next unreported object, if any.
    head: Option<(NodeId, Dist)>,
    exhausted: bool,
}

impl<R: SearchRecorder, C: CancelCheck> ObjectStream<'_, R, C> {
    /// Ensure `head` holds the next object (advancing the expansion).
    fn fill(&mut self, is_object: &[bool]) {
        if self.head.is_some() || self.exhausted {
            return;
        }
        for (v, d) in self.expansion.by_ref() {
            if is_object[v as usize] {
                self.head = Some((v, d));
                return;
            }
        }
        self.exhausted = true;
    }
}

/// `|Q|` interleaved object streams over a common object set.
///
/// When built with a live [`CancelCheck`], a fired check makes every
/// stream look exhausted; drivers must re-check the token exactly (its
/// sticky flag is set by the fired poll) before treating exhaustion as
/// "no further objects".
pub struct ObjectStreams<'g, R: SearchRecorder = (), C: CancelCheck = ()> {
    streams: Vec<ObjectStream<'g, R, C>>,
    is_object: Vec<bool>,
}

impl<'g> ObjectStreams<'g> {
    /// One stream per source in `sources`, yielding members of `objects`.
    pub fn new(graph: &'g Graph, sources: &[NodeId], objects: &[NodeId]) -> Self {
        let mut pool = ScratchPool::new();
        Self::with_pool(graph, sources, objects, &mut pool)
    }

    /// [`ObjectStreams::new`] drawing the `|Q|` expansion scratches from
    /// `pool` instead of allocating fresh ones — the throughput entry point.
    /// Pair with [`ObjectStreams::recycle_into`] to return the scratches
    /// once the query is answered.
    pub fn with_pool(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
    ) -> Self {
        Self::with_pool_recorded(graph, sources, objects, pool, ())
    }
}

impl<'g, R: SearchRecorder> ObjectStreams<'g, R> {
    /// [`ObjectStreams::with_pool`] with a live [`SearchRecorder`] observing
    /// every underlying expansion; the `()` recorder makes this identical to
    /// the untraced path.
    pub fn with_pool_recorded(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
        rec: R,
    ) -> Self {
        Self::with_pool_cancellable(graph, sources, objects, pool, rec, ())
    }
}

impl<'g, R: SearchRecorder, C: CancelCheck> ObjectStreams<'g, R, C> {
    /// [`ObjectStreams::with_pool_recorded`] with a live [`CancelCheck`]
    /// shared by every underlying expansion; the `()` check makes this
    /// identical to the uncancellable path.
    pub fn with_pool_cancellable(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
        rec: R,
        cancel: C,
    ) -> Self {
        let is_object = membership(graph.num_nodes(), objects);
        let streams = sources
            .iter()
            .map(|&q| ObjectStream {
                expansion: DijkstraIter::cancellable(graph, q, pool.take(), rec, cancel),
                head: None,
                exhausted: false,
            })
            .collect();
        ObjectStreams { streams, is_object }
    }

    /// Tear down the streams and return every expansion scratch to `pool`
    /// for the next query.
    pub fn recycle_into(self, pool: &mut ScratchPool) {
        for s in self.streams {
            pool.put(s.expansion.into_scratch());
        }
    }

    /// Number of streams (`|Q|`).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Head (next unreported object and its distance) of stream `i`,
    /// advancing the underlying expansion as needed. `None` once the
    /// stream's component holds no further objects.
    pub fn head(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        let s = &mut self.streams[i];
        s.fill(&self.is_object);
        s.head
    }

    /// Pop the head of stream `i`.
    pub fn pop(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        let s = &mut self.streams[i];
        s.fill(&self.is_object);
        s.head.take()
    }

    /// Index + head of the stream whose head distance is smallest
    /// (`L_min` in Algorithm 2). `None` when every stream is exhausted.
    pub fn min_head(&mut self) -> Option<(usize, NodeId, Dist)> {
        let mut best: Option<(usize, NodeId, Dist)> = None;
        for i in 0..self.streams.len() {
            if let Some((v, d)) = self.head(i) {
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, v, d));
                }
            }
        }
        best
    }

    /// Current head distances of all streams (exhausted streams yield
    /// `None`). Used to evaluate the R-List threshold.
    pub fn head_dists(&mut self) -> Vec<Option<Dist>> {
        (0..self.streams.len())
            .map(|i| self.head(i).map(|(_, d)| d))
            .collect()
    }

    /// Total nodes settled across all streams — the expansion work metric
    /// reported by the efficiency experiments.
    pub fn total_settled(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.expansion.settled_count())
            .sum()
    }
}

impl<R: SearchRecorder, C: CancelCheck> StreamSet for ObjectStreams<'_, R, C> {
    fn len(&self) -> usize {
        ObjectStreams::len(self)
    }

    fn head(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        ObjectStreams::head(self, i)
    }

    fn pop(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        ObjectStreams::pop(self, i)
    }

    fn min_head(&mut self) -> Option<(usize, NodeId, Dist)> {
        ObjectStreams::min_head(self)
    }

    fn head_dists(&mut self) -> Vec<Option<Dist>> {
        ObjectStreams::head_dists(self)
    }
}

/// One multi-source Dijkstra expansion shared by a whole co-located batch
/// (queries with the same canonical `Q`): each source's settle sequence is
/// memoized the first time it is demanded, so `|batch|` queries pay for one
/// expansion instead of `|batch|` independent ones.
///
/// Per-query consumption goes through [`SharedExpansion::view`], which
/// filters the common settle logs by that query's own object set. Because
/// [`DijkstraIter`] is deterministic, a view yields bit-for-bit the stream
/// sequence a private [`ObjectStreams`] over the same `(sources, objects)`
/// would — the driver equivalence the locality tests pin down.
pub struct SharedExpansion<'g> {
    graph: &'g Graph,
    iters: Vec<DijkstraIter<'g>>,
    /// Memoized settle prefix per source, in settle order.
    logs: Vec<Vec<(NodeId, Dist)>>,
    /// Sources whose reachable component is fully logged.
    done: Vec<bool>,
}

impl<'g> SharedExpansion<'g> {
    /// One lazily-advancing expansion per source.
    pub fn new(graph: &'g Graph, sources: &[NodeId]) -> Self {
        let mut pool = ScratchPool::new();
        Self::with_pool(graph, sources, &mut pool)
    }

    /// [`SharedExpansion::new`] drawing expansion scratches from `pool`;
    /// pair with [`SharedExpansion::recycle_into`].
    pub fn with_pool(graph: &'g Graph, sources: &[NodeId], pool: &mut ScratchPool) -> Self {
        let iters = sources
            .iter()
            .map(|&q| DijkstraIter::with_scratch(graph, q, pool.take()))
            .collect::<Vec<_>>();
        let n = sources.len();
        SharedExpansion {
            graph,
            iters,
            logs: vec![Vec::new(); n],
            done: vec![false; n],
        }
    }

    /// Return every expansion scratch to `pool` for the next batch.
    pub fn recycle_into(self, pool: &mut ScratchPool) {
        for it in self.iters {
            pool.put(it.into_scratch());
        }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.iters.len()
    }

    /// Total nodes settled across all shared expansions (each counted
    /// once, no matter how many views consumed it).
    pub fn total_settled(&self) -> usize {
        self.iters.iter().map(|it| it.settled_count()).sum()
    }

    /// The `pos`-th settled node of source `i`, advancing the live
    /// expansion if the log is short. `None` once the source's reachable
    /// component is exhausted before `pos`.
    fn settled(&mut self, i: usize, pos: usize) -> Option<(NodeId, Dist)> {
        while self.logs[i].len() <= pos {
            if self.done[i] {
                return None;
            }
            match self.iters[i].next() {
                Some(entry) => self.logs[i].push(entry),
                None => {
                    self.done[i] = true;
                    return None;
                }
            }
        }
        Some(self.logs[i][pos])
    }

    /// A per-query stream view over the shared expansion, yielding members
    /// of `objects` from-near-to-far per source — the [`StreamSet`] a
    /// driver runs on. Views are consumed one at a time (each borrows the
    /// expansion mutably); the memoized logs persist across views.
    pub fn view(&mut self, objects: &[NodeId]) -> SharedStreams<'_, 'g> {
        let n = self.num_sources();
        SharedStreams {
            is_object: membership(self.graph.num_nodes(), objects),
            cursor: vec![0; n],
            head: vec![None; n],
            exhausted: vec![false; n],
            shared: self,
        }
    }
}

/// One query's [`StreamSet`] over a [`SharedExpansion`] (obtained from
/// [`SharedExpansion::view`]): replays the memoized settle logs, filtered
/// by this query's object membership, with the same one-element lookahead
/// as [`ObjectStreams`].
pub struct SharedStreams<'s, 'g> {
    shared: &'s mut SharedExpansion<'g>,
    is_object: Vec<bool>,
    /// Next unconsumed log position per stream.
    cursor: Vec<usize>,
    /// Lookahead: the next unreported object per stream, if any.
    head: Vec<Option<(NodeId, Dist)>>,
    exhausted: Vec<bool>,
}

impl SharedStreams<'_, '_> {
    fn fill(&mut self, i: usize) {
        if self.head[i].is_some() || self.exhausted[i] {
            return;
        }
        loop {
            match self.shared.settled(i, self.cursor[i]) {
                Some((v, d)) => {
                    self.cursor[i] += 1;
                    if self.is_object[v as usize] {
                        self.head[i] = Some((v, d));
                        return;
                    }
                }
                None => {
                    self.exhausted[i] = true;
                    return;
                }
            }
        }
    }
}

impl StreamSet for SharedStreams<'_, '_> {
    fn len(&self) -> usize {
        self.shared.num_sources()
    }

    fn head(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        self.fill(i);
        self.head[i]
    }

    fn pop(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        self.fill(i);
        self.head[i].take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path 0-1-2-3-4 with unit weights; objects at 0 and 4.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..4 {
            b.add_edge(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn streams_yield_objects_near_to_far() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[1], &[0, 4]);
        assert_eq!(s.pop(0), Some((0, 1)));
        assert_eq!(s.pop(0), Some((4, 3)));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn min_head_picks_globally_nearest() {
        let g = path5();
        // Sources at both ends, objects at 1 and 2.
        let mut s = ObjectStreams::new(&g, &[0, 4], &[1, 2]);
        // Stream 0 head: (1, 1); stream 1 head: (2, 2).
        assert_eq!(s.min_head(), Some((0, 1, 1)));
        s.pop(0);
        // Stream 0 head: (2, 2); stream 1 head: (2, 2): tie, first wins.
        assert_eq!(s.min_head(), Some((0, 2, 2)));
    }

    #[test]
    fn head_is_idempotent() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[2], &[0, 4]);
        // Nodes 0 and 4 are both at distance 2; the heap breaks the tie
        // towards the larger id, so 4 is reported first.
        assert_eq!(s.head(0), Some((4, 2)));
        assert_eq!(s.head(0), Some((4, 2)));
        assert_eq!(s.pop(0), Some((4, 2)));
        assert_eq!(s.pop(0), Some((0, 2)));
    }

    #[test]
    fn source_on_object_yields_distance_zero() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[4], &[4]);
        assert_eq!(s.pop(0), Some((4, 0)));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn head_dists_reports_exhaustion() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[0, 4], &[2]);
        assert_eq!(s.head_dists(), vec![Some(2), Some(2)]);
        s.pop(0);
        assert_eq!(s.head_dists(), vec![None, Some(2)]);
    }

    #[test]
    fn interleaving_streams_is_safe() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[0, 4], &[0, 1, 2, 3, 4]);
        // Alternate pops; each stream must still see all 5 objects in order.
        let mut got = [Vec::new(), Vec::new()];
        for _round in 0..5 {
            for (q, out) in got.iter_mut().enumerate() {
                let (v, d) = s.pop(q).unwrap();
                out.push((v, d));
            }
        }
        assert_eq!(got[0], vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(got[1], vec![(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)]);
    }

    #[test]
    fn pooled_streams_match_fresh_and_recycle() {
        let g = path5();
        let mut pool = ScratchPool::new();
        for _ in 0..3 {
            let mut s = ObjectStreams::with_pool(&g, &[0, 4], &[0, 1, 2, 3, 4], &mut pool);
            let mut fresh = ObjectStreams::new(&g, &[0, 4], &[0, 1, 2, 3, 4]);
            while let Some(head) = s.min_head() {
                assert_eq!(Some(head), fresh.min_head());
                s.pop(head.0);
                fresh.pop(head.0);
            }
            assert_eq!(fresh.min_head(), None);
            s.recycle_into(&mut pool);
            assert_eq!(pool.idle_count(), 2, "both scratches returned");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn membership_rejects_bad_node() {
        membership(3, &[5]);
    }

    /// Drain a StreamSet exactly the way the drivers do (min_head + pop),
    /// recording every pop.
    fn drain<S: StreamSet>(s: &mut S) -> Vec<(usize, NodeId, Dist)> {
        let mut out = Vec::new();
        while let Some((i, v, d)) = s.min_head() {
            out.push((i, v, d));
            s.pop(i);
        }
        out
    }

    #[test]
    fn shared_view_matches_private_streams() {
        let g = path5();
        let sources = [0u32, 4];
        let object_sets: [&[u32]; 4] = [&[0, 1, 2, 3, 4], &[1, 3], &[2], &[0, 4]];
        let mut shared = SharedExpansion::new(&g, &sources);
        for objects in object_sets {
            let got = drain(&mut shared.view(objects));
            let want = drain(&mut ObjectStreams::new(&g, &sources, objects));
            assert_eq!(got, want, "objects {objects:?}");
        }
    }

    #[test]
    fn shared_views_are_independent_and_replayable() {
        let g = path5();
        let mut shared = SharedExpansion::new(&g, &[2]);
        // First view partially consumes; a later view over the same
        // objects must still see the full sequence from the start.
        let mut v1 = shared.view(&[0, 4]);
        let first = v1.pop(0);
        drop(v1);
        let replay = drain(&mut shared.view(&[0, 4]));
        assert_eq!(replay.first().map(|&(_, v, d)| (v, d)), first);
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn shared_expansion_settles_each_node_once() {
        let g = path5();
        let mut shared = SharedExpansion::new(&g, &[0]);
        drain(&mut shared.view(&[4]));
        let settled_once = shared.total_settled();
        drain(&mut shared.view(&[4]));
        assert_eq!(
            shared.total_settled(),
            settled_once,
            "log replay, no re-expansion"
        );
    }

    #[test]
    fn shared_expansion_recycles_scratches() {
        let g = path5();
        let mut pool = ScratchPool::new();
        let mut shared = SharedExpansion::with_pool(&g, &[0, 4], &mut pool);
        drain(&mut shared.view(&[2]));
        shared.recycle_into(&mut pool);
        assert_eq!(pool.idle_count(), 2);
    }
}
