//! The "list of queues": one from-near-to-far data-object stream per query
//! point (paper §III-B / §IV-A).
//!
//! Each queue is a [`DijkstraIter`] from one query point, filtered to nodes
//! that carry a data object, with one-element lookahead. The queues are
//! advanced *alternately* ("switchable"): all per-queue state persists while
//! another queue runs. `R-List` and `Exact-max` are thin drivers on top.

use crate::cancel::CancelCheck;
use crate::expansion::DijkstraIter;
use crate::graph::{Graph, NodeId};
use crate::recorder::SearchRecorder;
use crate::scratch::ScratchPool;
use crate::Dist;

/// Build a node-indexed membership mask for a set of object nodes.
pub fn membership(num_nodes: usize, objects: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; num_nodes];
    for &p in objects {
        assert!(
            (p as usize) < num_nodes,
            "object node {p} out of range (n = {num_nodes})"
        );
        mask[p as usize] = true;
    }
    mask
}

/// One from-near-to-far stream of data objects around a single source.
struct ObjectStream<'g, R: SearchRecorder = (), C: CancelCheck = ()> {
    expansion: DijkstraIter<'g, R, C>,
    /// Lookahead: the next unreported object, if any.
    head: Option<(NodeId, Dist)>,
    exhausted: bool,
}

impl<R: SearchRecorder, C: CancelCheck> ObjectStream<'_, R, C> {
    /// Ensure `head` holds the next object (advancing the expansion).
    fn fill(&mut self, is_object: &[bool]) {
        if self.head.is_some() || self.exhausted {
            return;
        }
        for (v, d) in self.expansion.by_ref() {
            if is_object[v as usize] {
                self.head = Some((v, d));
                return;
            }
        }
        self.exhausted = true;
    }
}

/// `|Q|` interleaved object streams over a common object set.
///
/// When built with a live [`CancelCheck`], a fired check makes every
/// stream look exhausted; drivers must re-check the token exactly (its
/// sticky flag is set by the fired poll) before treating exhaustion as
/// "no further objects".
pub struct ObjectStreams<'g, R: SearchRecorder = (), C: CancelCheck = ()> {
    streams: Vec<ObjectStream<'g, R, C>>,
    is_object: Vec<bool>,
}

impl<'g> ObjectStreams<'g> {
    /// One stream per source in `sources`, yielding members of `objects`.
    pub fn new(graph: &'g Graph, sources: &[NodeId], objects: &[NodeId]) -> Self {
        let mut pool = ScratchPool::new();
        Self::with_pool(graph, sources, objects, &mut pool)
    }

    /// [`ObjectStreams::new`] drawing the `|Q|` expansion scratches from
    /// `pool` instead of allocating fresh ones — the throughput entry point.
    /// Pair with [`ObjectStreams::recycle_into`] to return the scratches
    /// once the query is answered.
    pub fn with_pool(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
    ) -> Self {
        Self::with_pool_recorded(graph, sources, objects, pool, ())
    }
}

impl<'g, R: SearchRecorder> ObjectStreams<'g, R> {
    /// [`ObjectStreams::with_pool`] with a live [`SearchRecorder`] observing
    /// every underlying expansion; the `()` recorder makes this identical to
    /// the untraced path.
    pub fn with_pool_recorded(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
        rec: R,
    ) -> Self {
        Self::with_pool_cancellable(graph, sources, objects, pool, rec, ())
    }
}

impl<'g, R: SearchRecorder, C: CancelCheck> ObjectStreams<'g, R, C> {
    /// [`ObjectStreams::with_pool_recorded`] with a live [`CancelCheck`]
    /// shared by every underlying expansion; the `()` check makes this
    /// identical to the uncancellable path.
    pub fn with_pool_cancellable(
        graph: &'g Graph,
        sources: &[NodeId],
        objects: &[NodeId],
        pool: &mut ScratchPool,
        rec: R,
        cancel: C,
    ) -> Self {
        let is_object = membership(graph.num_nodes(), objects);
        let streams = sources
            .iter()
            .map(|&q| ObjectStream {
                expansion: DijkstraIter::cancellable(graph, q, pool.take(), rec, cancel),
                head: None,
                exhausted: false,
            })
            .collect();
        ObjectStreams { streams, is_object }
    }

    /// Tear down the streams and return every expansion scratch to `pool`
    /// for the next query.
    pub fn recycle_into(self, pool: &mut ScratchPool) {
        for s in self.streams {
            pool.put(s.expansion.into_scratch());
        }
    }

    /// Number of streams (`|Q|`).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Head (next unreported object and its distance) of stream `i`,
    /// advancing the underlying expansion as needed. `None` once the
    /// stream's component holds no further objects.
    pub fn head(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        let s = &mut self.streams[i];
        s.fill(&self.is_object);
        s.head
    }

    /// Pop the head of stream `i`.
    pub fn pop(&mut self, i: usize) -> Option<(NodeId, Dist)> {
        let s = &mut self.streams[i];
        s.fill(&self.is_object);
        s.head.take()
    }

    /// Index + head of the stream whose head distance is smallest
    /// (`L_min` in Algorithm 2). `None` when every stream is exhausted.
    pub fn min_head(&mut self) -> Option<(usize, NodeId, Dist)> {
        let mut best: Option<(usize, NodeId, Dist)> = None;
        for i in 0..self.streams.len() {
            if let Some((v, d)) = self.head(i) {
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, v, d));
                }
            }
        }
        best
    }

    /// Current head distances of all streams (exhausted streams yield
    /// `None`). Used to evaluate the R-List threshold.
    pub fn head_dists(&mut self) -> Vec<Option<Dist>> {
        (0..self.streams.len())
            .map(|i| self.head(i).map(|(_, d)| d))
            .collect()
    }

    /// Total nodes settled across all streams — the expansion work metric
    /// reported by the efficiency experiments.
    pub fn total_settled(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.expansion.settled_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path 0-1-2-3-4 with unit weights; objects at 0 and 4.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..4 {
            b.add_edge(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn streams_yield_objects_near_to_far() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[1], &[0, 4]);
        assert_eq!(s.pop(0), Some((0, 1)));
        assert_eq!(s.pop(0), Some((4, 3)));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn min_head_picks_globally_nearest() {
        let g = path5();
        // Sources at both ends, objects at 1 and 2.
        let mut s = ObjectStreams::new(&g, &[0, 4], &[1, 2]);
        // Stream 0 head: (1, 1); stream 1 head: (2, 2).
        assert_eq!(s.min_head(), Some((0, 1, 1)));
        s.pop(0);
        // Stream 0 head: (2, 2); stream 1 head: (2, 2): tie, first wins.
        assert_eq!(s.min_head(), Some((0, 2, 2)));
    }

    #[test]
    fn head_is_idempotent() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[2], &[0, 4]);
        // Nodes 0 and 4 are both at distance 2; the heap breaks the tie
        // towards the larger id, so 4 is reported first.
        assert_eq!(s.head(0), Some((4, 2)));
        assert_eq!(s.head(0), Some((4, 2)));
        assert_eq!(s.pop(0), Some((4, 2)));
        assert_eq!(s.pop(0), Some((0, 2)));
    }

    #[test]
    fn source_on_object_yields_distance_zero() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[4], &[4]);
        assert_eq!(s.pop(0), Some((4, 0)));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn head_dists_reports_exhaustion() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[0, 4], &[2]);
        assert_eq!(s.head_dists(), vec![Some(2), Some(2)]);
        s.pop(0);
        assert_eq!(s.head_dists(), vec![None, Some(2)]);
    }

    #[test]
    fn interleaving_streams_is_safe() {
        let g = path5();
        let mut s = ObjectStreams::new(&g, &[0, 4], &[0, 1, 2, 3, 4]);
        // Alternate pops; each stream must still see all 5 objects in order.
        let mut got = [Vec::new(), Vec::new()];
        for _round in 0..5 {
            for (q, out) in got.iter_mut().enumerate() {
                let (v, d) = s.pop(q).unwrap();
                out.push((v, d));
            }
        }
        assert_eq!(got[0], vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(got[1], vec![(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)]);
    }

    #[test]
    fn pooled_streams_match_fresh_and_recycle() {
        let g = path5();
        let mut pool = ScratchPool::new();
        for _ in 0..3 {
            let mut s = ObjectStreams::with_pool(&g, &[0, 4], &[0, 1, 2, 3, 4], &mut pool);
            let mut fresh = ObjectStreams::new(&g, &[0, 4], &[0, 1, 2, 3, 4]);
            while let Some(head) = s.min_head() {
                assert_eq!(Some(head), fresh.min_head());
                s.pop(head.0);
                fresh.pop(head.0);
            }
            assert_eq!(fresh.min_head(), None);
            s.recycle_into(&mut pool);
            assert_eq!(pool.idle_count(), 2, "both scratches returned");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn membership_rejects_bad_node() {
        membership(3, &[5]);
    }
}
