//! Zero-cost search instrumentation hooks.
//!
//! Every Dijkstra-family primitive in this crate is generic over a
//! [`SearchRecorder`] — a tiny `Copy` handle whose methods are invoked at
//! the interesting points of a search (node settled, heap push/pop, edge
//! relaxed). The unit type `()` is the default recorder and every one of
//! its methods is an empty `#[inline(always)]` body, so the untraced entry
//! points (`DijkstraIter::new`, `dijkstra_pair`, …) monomorphize to exactly
//! the code they compiled to before instrumentation existed: no branches,
//! no fields, no allocation.
//!
//! A real recorder (e.g. `fann-core`'s `StatsSink`, used via `&StatsSink`)
//! implements the same trait with `Cell` bumps; callers opt in through the
//! `*_recorded` constructors and free functions.

/// Hooks called by graph searches as they do work.
///
/// Implementors must be cheap to copy (they are passed by value into every
/// search); shared-counter recorders implement the trait on `&Self`.
pub trait SearchRecorder: Copy {
    /// A node was settled (popped with its final distance).
    #[inline(always)]
    fn node_settled(self) {}

    /// An entry was pushed onto the search priority queue.
    #[inline(always)]
    fn heap_push(self) {}

    /// An entry was popped from the search priority queue (settled or stale).
    #[inline(always)]
    fn heap_pop(self) {}

    /// An outgoing edge was examined during relaxation.
    #[inline(always)]
    fn edge_relaxed(self) {}
}

/// The no-op recorder: compiles to nothing.
impl SearchRecorder for () {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[derive(Default)]
    struct Counts {
        settled: Cell<u64>,
        pushes: Cell<u64>,
    }

    impl SearchRecorder for &Counts {
        fn node_settled(self) {
            self.settled.set(self.settled.get() + 1);
        }
        fn heap_push(self) {
            self.pushes.set(self.pushes.get() + 1);
        }
    }

    #[test]
    fn unit_recorder_is_callable() {
        ().node_settled();
        ().heap_push();
        ().heap_pop();
        ().edge_relaxed();
    }

    #[test]
    fn shared_recorder_counts() {
        let c = Counts::default();
        let r = &c;
        r.node_settled();
        r.node_settled();
        r.heap_push();
        r.heap_pop(); // default no-op
        assert_eq!(c.settled.get(), 2);
        assert_eq!(c.pushes.get(), 1);
    }
}
