//! Cooperative cancellation for long-running searches.
//!
//! A query on a large network can settle hundreds of thousands of nodes;
//! a serving process cannot let one runaway request hold a worker hostage.
//! [`CancelToken`] is a shared deadline/flag that search loops poll
//! cooperatively: the settle loops of [`crate::dijkstra`], [`crate::astar`],
//! [`crate::expansion::DijkstraIter`] and [`crate::multisource`] check it
//! once per settled node, so a cancelled search stops within one node
//! expansion of the deadline.
//!
//! Like [`crate::recorder::SearchRecorder`], the hook is a generic
//! [`CancelCheck`] parameter whose unit implementation `()` never cancels
//! and compiles to nothing — the uncancellable entry points monomorphize to
//! exactly the code they compiled to before cancellation existed. Live
//! cancellation is opted into by passing `&CancelToken`.
//!
//! Polling cost: the flag is one relaxed atomic load per settle; the
//! deadline clock is only consulted every [`POLL_STRIDE`] polls (and on the
//! very first poll after [`CancelToken::arm`], so pre-expired deadlines
//! fire immediately).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A search was cancelled (deadline exceeded or explicitly revoked) before
/// it completed. Carried as the `Err` of every `*_cancellable` search; the
/// partial state of a cancelled search must not be interpreted as an
/// answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "search cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// How often the deadline clock is consulted, in polls. Between clock
/// reads a poll is a single relaxed load of the sticky flag.
pub const POLL_STRIDE: u32 = 64;

/// Sentinel for "no deadline" in [`TokenState::deadline_ns`].
const NO_DEADLINE: u64 = u64::MAX;

struct TokenState {
    /// Sticky cancellation flag: set by [`CancelToken::cancel`] or by the
    /// first poll past the deadline; cleared only by [`CancelToken::arm`].
    flag: AtomicBool,
    /// Clock origin; deadlines are stored as nanoseconds after this.
    base: Instant,
    /// Deadline in nanoseconds after `base` ([`NO_DEADLINE`] = none).
    deadline_ns: AtomicU64,
    /// Amortization counter for clock reads.
    polls: AtomicU32,
}

/// A shared cancellation handle: an explicit flag plus an optional
/// deadline. Cheap to clone (an `Arc` bump); all clones observe the same
/// state, so one token can be held by a serving worker, registered with a
/// shutdown broadcaster, and polled inside a search simultaneously.
///
/// A token is *re-armable*: a long-lived worker keeps one token and calls
/// [`CancelToken::arm`] at the start of each request, which clears the
/// flag and installs the new deadline without reallocating.
#[derive(Clone)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                flag: AtomicBool::new(false),
                base: Instant::now(),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                polls: AtomicU32::new(0),
            }),
        }
    }

    /// A token that expires `timeout` from now. `Duration::ZERO` yields a
    /// pre-expired token (useful for testing the cancelled path).
    pub fn with_timeout(timeout: Duration) -> Self {
        let t = Self::new();
        t.arm(Some(timeout));
        t
    }

    /// Re-arm for a new request: clear the flag, reset the poll counter,
    /// and install `timeout` from now as the deadline (`None` = none).
    pub fn arm(&self, timeout: Option<Duration>) {
        let ns = match timeout {
            Some(t) => {
                let dl = self.state.base.elapsed().saturating_add(t);
                u64::try_from(dl.as_nanos()).unwrap_or(NO_DEADLINE - 1)
            }
            None => NO_DEADLINE,
        };
        self.state.deadline_ns.store(ns, Ordering::Relaxed);
        self.state.polls.store(0, Ordering::Relaxed);
        self.state.flag.store(false, Ordering::Release);
    }

    /// Revoke: every subsequent poll (on any clone) reports cancelled,
    /// until the next [`CancelToken::arm`].
    pub fn cancel(&self) {
        self.state.flag.store(true, Ordering::Release);
    }

    /// Exact check: flag set, or deadline passed (which also sets the
    /// sticky flag so the cheap polls observe it). Use this to validate a
    /// result before trusting it; use the [`CancelCheck`] poll in loops.
    pub fn is_cancelled(&self) -> bool {
        if self.state.flag.load(Ordering::Acquire) {
            return true;
        }
        let deadline = self.state.deadline_ns.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE {
            let now = u64::try_from(self.state.base.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if now >= deadline {
                self.state.flag.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Time until the deadline (`None` when no deadline is armed;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.state.deadline_ns.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return None;
        }
        let now = u64::try_from(self.state.base.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Some(Duration::from_nanos(deadline.saturating_sub(now)))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.state.flag.load(Ordering::Relaxed))
            .field("remaining", &self.remaining())
            .finish()
    }
}

/// Cancellation hook polled by search loops, mirroring
/// [`crate::recorder::SearchRecorder`]: a tiny `Copy` handle passed by
/// value. The unit implementation never cancels and costs nothing.
pub trait CancelCheck: Copy {
    /// Amortized poll, called once per settled node. May defer the clock
    /// read but must eventually observe an expired deadline (within
    /// [`POLL_STRIDE`] polls) and must observe a set flag immediately.
    #[inline(always)]
    fn poll_cancelled(self) -> bool {
        false
    }

    /// Exact check, called before a derived result is trusted: if any
    /// earlier poll in the same computation returned `true` (truncating a
    /// sub-search), this must return `true` as well.
    #[inline(always)]
    fn cancelled_now(self) -> bool {
        false
    }
}

/// The never-cancelled check: compiles to nothing.
impl CancelCheck for () {}

impl CancelCheck for &CancelToken {
    #[inline]
    fn poll_cancelled(self) -> bool {
        if self.state.flag.load(Ordering::Relaxed) {
            return true;
        }
        // First poll after `arm` does an exact check (n starts at 0), so a
        // pre-expired deadline fires before any work is trusted.
        let n = self.state.polls.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(POLL_STRIDE) {
            return self.is_cancelled();
        }
        false
    }

    #[inline]
    fn cancelled_now(self) -> bool {
        self.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!(&t).poll_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_sticky_until_rearm() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.is_cancelled());
        assert!((&t).poll_cancelled());
        t.arm(None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn pre_expired_deadline_fires_on_first_poll() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!((&t).poll_cancelled());
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_observed_within_stride() {
        let t = CancelToken::with_timeout(Duration::from_millis(1));
        // Burn the first (exact) poll, then sleep past the deadline.
        let _ = (&t).poll_cancelled();
        std::thread::sleep(Duration::from_millis(5));
        let fired = (0..=POLL_STRIDE).any(|_| (&t).poll_cancelled());
        assert!(fired, "expired deadline not observed within one stride");
    }

    #[test]
    fn unit_check_never_cancels() {
        assert!(!().poll_cancelled());
        assert!(!().cancelled_now());
    }

    #[test]
    fn far_future_deadline_stays_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        for _ in 0..(POLL_STRIDE * 3) {
            assert!(!(&t).poll_cancelled());
        }
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }
}
