//! A* point-to-point search with an admissible Euclidean lower bound.
//!
//! The paper evaluates A* \[13\] as one of the `g_phi` backends (Table I).
//! Admissibility is provided by [`crate::LowerBound`], which scales raw
//! Euclidean distances so they never exceed network distances.

use crate::cancel::{CancelCheck, Cancelled};
use crate::graph::{Graph, NodeId};
use crate::lowerbound::LowerBound;
use crate::recorder::SearchRecorder;
use crate::scratch::QueryScratch;
use crate::Dist;

/// A* search from `s` to `t` using lower bound `lb`; `None` if unreachable.
///
/// With an admissible (never over-estimating) heuristic this returns the
/// exact shortest-path distance, settling no more nodes than Dijkstra.
pub fn astar_pair(g: &Graph, lb: &LowerBound, s: NodeId, t: NodeId) -> Option<Dist> {
    astar_pair_with(g, lb, s, t, &mut QueryScratch::new())
}

/// [`astar_pair`] reusing `scratch`'s buffers — the throughput entry point:
/// no `O(|V|)` allocation or refill per query once the scratch has grown to
/// `|V|`. The scratch's distance slots hold g-values; the heap is keyed by
/// f = g + h.
pub fn astar_pair_with(
    g: &Graph,
    lb: &LowerBound,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
) -> Option<Dist> {
    astar_pair_recorded(g, lb, s, t, scratch, ())
}

/// [`astar_pair_with`] with a live [`SearchRecorder`]; the `()` recorder
/// makes this identical to the untraced path.
pub fn astar_pair_recorded<R: SearchRecorder>(
    g: &Graph,
    lb: &LowerBound,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
    rec: R,
) -> Option<Dist> {
    match astar_pair_cancellable(g, lb, s, t, scratch, rec, ()) {
        Ok(d) => d,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`astar_pair_recorded`] with a live [`CancelCheck`] polled once per
/// settled node (see [`crate::dijkstra::dijkstra_pair_cancellable`]). The
/// `()` check makes this identical to the uncancellable path.
pub fn astar_pair_cancellable<R: SearchRecorder, C: CancelCheck>(
    g: &Graph,
    lb: &LowerBound,
    s: NodeId,
    t: NodeId,
    scratch: &mut QueryScratch,
    rec: R,
    cancel: C,
) -> Result<Option<Dist>, Cancelled> {
    if s == t {
        return Ok(Some(0));
    }
    scratch.begin(g.num_nodes());
    scratch.set_dist(s, 0);
    scratch.push(lb.bound(g, s, t), s);
    rec.heap_push();
    while let Some((f, v)) = scratch.pop() {
        rec.heap_pop();
        let d = scratch.dist(v);
        if v == t {
            rec.node_settled();
            return Ok(Some(d));
        }
        // Stale check: recompute f from the current g-value.
        if f > d.saturating_add(lb.bound(g, v, t)) {
            continue;
        }
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        rec.node_settled();
        for (nb, w) in g.neighbors(v) {
            rec.edge_relaxed();
            let nd = d + w as Dist;
            if nd < scratch.dist(nb) {
                scratch.set_dist(nb, nd);
                scratch.push(nd + lb.bound(g, nb, t), nb);
                rec.heap_push();
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;
    use crate::graph::GraphBuilder;

    /// 3x3 grid with unit spacing; weights = rounded-up Euclidean lengths.
    fn grid() -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..3 {
            for x in 0..3 {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..3u32 {
            for x in 0..3u32 {
                let v = y * 3 + x;
                if x + 1 < 3 {
                    b.add_edge(v, v + 1, 10);
                }
                if y + 1 < 3 {
                    b.add_edge(v, v + 3, 12); // vertical roads are slower
                }
            }
        }
        b.build()
    }

    #[test]
    fn astar_equals_dijkstra_on_grid() {
        let g = grid();
        let lb = LowerBound::for_graph(&g);
        for s in 0..9 {
            for t in 0..9 {
                assert_eq!(
                    astar_pair(&g, &lb, s, t),
                    dijkstra_pair(&g, s, t),
                    "mismatch for {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn astar_with_recycled_scratch_matches_fresh() {
        let g = grid();
        let lb = LowerBound::for_graph(&g);
        let mut scratch = QueryScratch::new();
        for s in 0..9 {
            for t in 0..9 {
                assert_eq!(
                    astar_pair_with(&g, &lb, s, t, &mut scratch),
                    astar_pair(&g, &lb, s, t),
                    "mismatch for {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn astar_same_node_is_zero() {
        let g = grid();
        let lb = LowerBound::for_graph(&g);
        assert_eq!(astar_pair(&g, &lb, 4, 4), Some(0));
    }

    #[test]
    fn astar_unreachable_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(100.0, 0.0);
        let g = b.build();
        let lb = LowerBound::for_graph(&g);
        assert_eq!(astar_pair(&g, &lb, 0, 1), None);
    }
}
