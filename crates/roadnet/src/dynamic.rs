//! Mutable road networks: weight updates, closures, and snapshots.
//!
//! The paper's case for the index-free algorithms (§IV) is networks that
//! "change frequently (or we cannot build an index over the whole road
//! network easily)" — live traffic, temporary closures, game maps.
//! [`DynamicNetwork`] is the mutable counterpart of [`Graph`]: cheap
//! in-place updates plus an O(|V| + |E|) [`snapshot`](DynamicNetwork::snapshot)
//! into the immutable CSR form every algorithm consumes. `Exact-max` and
//! `APX-sum` re-run on a fresh snapshot in milliseconds; the indexed
//! methods would first pay the full label/G-tree rebuild (Fig. 9b).

use crate::graph::{Graph, GraphBuilder, NodeId, Point, Weight};
use std::collections::HashMap;

/// Errors from dynamic updates.
#[derive(Debug, PartialEq, Eq)]
pub enum UpdateError {
    NoSuchNode(NodeId),
    NoSuchEdge(NodeId, NodeId),
    SelfLoop(NodeId),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NoSuchNode(v) => write!(f, "node {v} does not exist"),
            UpdateError::NoSuchEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            UpdateError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// An editable undirected road network.
pub struct DynamicNetwork {
    coords: Vec<Point>,
    /// Adjacency with per-neighbor weight; both directions kept in sync.
    adj: Vec<HashMap<NodeId, Weight>>,
    /// Monotone counter bumped by every mutation; lets callers know when
    /// a cached snapshot is stale.
    version: u64,
}

impl DynamicNetwork {
    /// Start from an existing immutable graph.
    pub fn from_graph(g: &Graph) -> Self {
        let mut adj: Vec<HashMap<NodeId, Weight>> = vec![HashMap::new(); g.num_nodes()];
        for (u, v, w) in g.edges() {
            adj[u as usize].insert(v, w);
            adj[v as usize].insert(u, w);
        }
        DynamicNetwork {
            coords: g.coords().to_vec(),
            adj,
            version: 0,
        }
    }

    /// An empty network.
    pub fn new() -> Self {
        DynamicNetwork {
            coords: Vec::new(),
            adj: Vec::new(),
            version: 0,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(HashMap::len).sum::<usize>() / 2
    }

    /// Mutation counter: changes iff the network changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(Point::new(x, y));
        self.adj.push(HashMap::new());
        self.version += 1;
        id
    }

    fn check_node(&self, v: NodeId) -> Result<(), UpdateError> {
        if (v as usize) < self.coords.len() {
            Ok(())
        } else {
            Err(UpdateError::NoSuchNode(v))
        }
    }

    /// Insert or overwrite an undirected edge (weight clamped to >= 1).
    pub fn upsert_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(UpdateError::SelfLoop(u));
        }
        let w = w.max(1);
        self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        self.version += 1;
        Ok(())
    }

    /// Update the weight of an existing edge (e.g. live traffic).
    pub fn set_weight(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.adj[u as usize].contains_key(&v) {
            return Err(UpdateError::NoSuchEdge(u, v));
        }
        let w = w.max(1);
        self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        self.version += 1;
        Ok(())
    }

    /// Scale the weight of an existing edge (congestion factor).
    pub fn scale_weight(&mut self, u: NodeId, v: NodeId, factor: f64) -> Result<(), UpdateError> {
        let w = *self
            .adj
            .get(u as usize)
            .and_then(|m| m.get(&v))
            .ok_or(UpdateError::NoSuchEdge(u, v))?;
        let scaled = ((w as f64 * factor).round() as u64).clamp(1, u32::MAX as u64) as Weight;
        self.set_weight(u, v, scaled)
    }

    /// Remove an edge (road closure).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if self.adj[u as usize].remove(&v).is_none() {
            return Err(UpdateError::NoSuchEdge(u, v));
        }
        self.adj[v as usize].remove(&u);
        self.version += 1;
        Ok(())
    }

    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.adj.get(u as usize).and_then(|m| m.get(&v)).copied()
    }

    /// Materialize the current state as an immutable CSR [`Graph`].
    pub fn snapshot(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.num_nodes(), self.num_edges());
        for p in &self.coords {
            b.add_node(p.x, p.y);
        }
        for (u, nbrs) in self.adj.iter().enumerate() {
            for (&v, &w) in nbrs {
                if (u as NodeId) < v {
                    b.add_edge(u as NodeId, v, w);
                }
            }
        }
        b.build()
    }
}

impl Default for DynamicNetwork {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;

    fn base() -> DynamicNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 10);
        DynamicNetwork::from_graph(&b.build())
    }

    #[test]
    fn snapshot_matches_source() {
        let d = base();
        let g = d.snapshot();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(dijkstra_pair(&g, 0, 3), Some(3));
    }

    #[test]
    fn traffic_update_changes_shortest_path() {
        let mut d = base();
        // Congest the middle link: the long way around becomes optimal.
        d.set_weight(1, 2, 50).unwrap();
        let g = d.snapshot();
        assert_eq!(dijkstra_pair(&g, 0, 3), Some(10));
    }

    #[test]
    fn closure_disconnects() {
        let mut d = base();
        d.remove_edge(1, 2).unwrap();
        d.remove_edge(0, 3).unwrap();
        let g = d.snapshot();
        assert_eq!(dijkstra_pair(&g, 0, 3), None);
    }

    #[test]
    fn scale_weight_rounds_and_clamps() {
        let mut d = base();
        d.scale_weight(0, 1, 3.4).unwrap();
        assert_eq!(d.weight(0, 1), Some(3));
        d.scale_weight(0, 1, 0.0).unwrap();
        assert_eq!(d.weight(0, 1), Some(1)); // clamped to positive
    }

    #[test]
    fn version_tracks_mutations() {
        let mut d = base();
        let v0 = d.version();
        d.set_weight(0, 1, 5).unwrap();
        assert!(d.version() > v0);
        let v1 = d.version();
        assert!(d.set_weight(9, 1, 5).is_err());
        assert_eq!(d.version(), v1); // failed updates don't bump
    }

    #[test]
    fn errors_reported() {
        let mut d = base();
        assert_eq!(d.set_weight(0, 2, 1), Err(UpdateError::NoSuchEdge(0, 2)));
        assert_eq!(d.upsert_edge(0, 0, 1), Err(UpdateError::SelfLoop(0)));
        assert_eq!(d.remove_edge(0, 9), Err(UpdateError::NoSuchNode(9)));
    }

    #[test]
    fn grows_with_new_nodes_and_edges() {
        let mut d = DynamicNetwork::new();
        let a = d.add_node(0.0, 0.0);
        let b = d.add_node(1.0, 0.0);
        d.upsert_edge(a, b, 7).unwrap();
        let g = d.snapshot();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(dijkstra_pair(&g, a, b), Some(7));
    }
}
