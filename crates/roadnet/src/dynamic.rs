//! Mutable road networks: weight updates, closures, and snapshots.
//!
//! The paper's case for the index-free algorithms (§IV) is networks that
//! "change frequently (or we cannot build an index over the whole road
//! network easily)" — live traffic, temporary closures, game maps.
//! [`DynamicNetwork`] is the mutable counterpart of [`Graph`]: cheap
//! in-place updates plus an O(|V| + |E|) [`snapshot`](DynamicNetwork::snapshot)
//! into the immutable CSR form every algorithm consumes. `Exact-max` and
//! `APX-sum` re-run on a fresh snapshot in milliseconds; the indexed
//! methods would first pay the full label/G-tree rebuild (Fig. 9b).

use crate::graph::{Graph, GraphBuilder, NodeId, Point, Weight};
use crate::lowerbound::LowerBound;
use std::collections::HashMap;

/// Errors from dynamic updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    NoSuchNode(NodeId),
    NoSuchEdge(NodeId, NodeId),
    SelfLoop(NodeId),
    /// The new weight would drop below `scale * euclid(u, v)`, breaking the
    /// admissibility of every Euclidean lower bound computed on the graph
    /// the scale was captured from — A\*/IER-kNN would silently return
    /// wrong (over-pruned) distances. `min` is the smallest admissible
    /// weight for this edge.
    Inadmissible {
        u: NodeId,
        v: NodeId,
        w: Weight,
        min: Weight,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NoSuchNode(v) => write!(f, "node {v} does not exist"),
            UpdateError::NoSuchEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            UpdateError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
            UpdateError::Inadmissible { u, v, w, min } => write!(
                f,
                "weight {w} on edge ({u}, {v}) is below the admissible floor {min} \
                 (scaled Euclidean lower bound)"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The smallest weight edge `(u, v)` may carry so that a [`LowerBound`]
/// with `scale` stays admissible, given the endpoints' Euclidean distance.
pub(crate) fn admissible_floor(scale: f64, euclid: f64) -> Weight {
    if scale <= 0.0 {
        return 1;
    }
    (scale * euclid).ceil().clamp(1.0, u32::MAX as f64) as Weight
}

/// Check `w` (already clamped >= 1) against the admissible floor.
pub(crate) fn check_admissible(
    scale: f64,
    euclid: f64,
    u: NodeId,
    v: NodeId,
    w: Weight,
) -> Result<(), UpdateError> {
    if scale > 0.0 && (w as f64) < scale * euclid {
        return Err(UpdateError::Inadmissible {
            u,
            v,
            w,
            min: admissible_floor(scale, euclid),
        });
    }
    Ok(())
}

/// An editable undirected road network.
pub struct DynamicNetwork {
    coords: Vec<Point>,
    /// Adjacency with per-neighbor weight; both directions kept in sync.
    adj: Vec<HashMap<NodeId, Weight>>,
    /// Monotone counter bumped by every mutation; lets callers know when
    /// a cached snapshot is stale.
    version: u64,
    /// Admissibility scale captured from the source graph
    /// ([`LowerBound::for_graph`]): every weight update is validated so
    /// `w >= lb_scale * euclid(u, v)` keeps holding — otherwise a cached
    /// [`LowerBound`] (A\*, IER-kNN) built on an earlier snapshot would
    /// over-estimate and silently return wrong distances. `0.0` disables
    /// the check (networks built from scratch via [`DynamicNetwork::new`]).
    lb_scale: f64,
}

impl DynamicNetwork {
    /// Start from an existing immutable graph. Captures the graph's
    /// admissibility scale; subsequent weight updates below the scaled
    /// Euclidean floor are rejected with [`UpdateError::Inadmissible`].
    pub fn from_graph(g: &Graph) -> Self {
        let mut adj: Vec<HashMap<NodeId, Weight>> = vec![HashMap::new(); g.num_nodes()];
        for (u, v, w) in g.edges() {
            adj[u as usize].insert(v, w);
            adj[v as usize].insert(u, w);
        }
        DynamicNetwork {
            coords: g.coords().to_vec(),
            adj,
            version: 0,
            lb_scale: LowerBound::for_graph(g).scale(),
        }
    }

    /// An empty network (no admissibility validation until a scale is set
    /// with [`DynamicNetwork::set_admissibility_scale`]).
    pub fn new() -> Self {
        DynamicNetwork {
            coords: Vec::new(),
            adj: Vec::new(),
            version: 0,
            lb_scale: 0.0,
        }
    }

    /// The scale every update is validated against (`0.0` = unvalidated).
    pub fn admissibility_scale(&self) -> f64 {
        self.lb_scale
    }

    /// Override the admissibility scale (e.g. to opt a scratch-built
    /// network into validation, or to relax it after a full re-anchor).
    pub fn set_admissibility_scale(&mut self, scale: f64) {
        self.lb_scale = scale.max(0.0);
    }

    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(HashMap::len).sum::<usize>() / 2
    }

    /// Mutation counter: changes iff the network changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(Point::new(x, y));
        self.adj.push(HashMap::new());
        self.version += 1;
        id
    }

    fn check_node(&self, v: NodeId) -> Result<(), UpdateError> {
        if (v as usize) < self.coords.len() {
            Ok(())
        } else {
            Err(UpdateError::NoSuchNode(v))
        }
    }

    fn euclid(&self, u: NodeId, v: NodeId) -> f64 {
        self.coords[u as usize].dist(&self.coords[v as usize])
    }

    /// Insert or overwrite an undirected edge (weight clamped to >= 1,
    /// validated against the admissibility floor).
    pub fn upsert_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(UpdateError::SelfLoop(u));
        }
        let w = w.max(1);
        check_admissible(self.lb_scale, self.euclid(u, v), u, v, w)?;
        self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        self.version += 1;
        Ok(())
    }

    /// Update the weight of an existing edge (e.g. live traffic). The new
    /// weight must stay at or above `admissibility_scale() * euclid(u, v)`
    /// — see [`UpdateError::Inadmissible`].
    pub fn set_weight(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.adj[u as usize].contains_key(&v) {
            return Err(UpdateError::NoSuchEdge(u, v));
        }
        let w = w.max(1);
        check_admissible(self.lb_scale, self.euclid(u, v), u, v, w)?;
        self.adj[u as usize].insert(v, w);
        self.adj[v as usize].insert(u, w);
        self.version += 1;
        Ok(())
    }

    /// Scale the weight of an existing edge (congestion factor).
    pub fn scale_weight(&mut self, u: NodeId, v: NodeId, factor: f64) -> Result<(), UpdateError> {
        let w = *self
            .adj
            .get(u as usize)
            .and_then(|m| m.get(&v))
            .ok_or(UpdateError::NoSuchEdge(u, v))?;
        let scaled = ((w as f64 * factor).round() as u64).clamp(1, u32::MAX as u64) as Weight;
        self.set_weight(u, v, scaled)
    }

    /// Remove an edge (road closure).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), UpdateError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if self.adj[u as usize].remove(&v).is_none() {
            return Err(UpdateError::NoSuchEdge(u, v));
        }
        self.adj[v as usize].remove(&u);
        self.version += 1;
        Ok(())
    }

    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.adj.get(u as usize).and_then(|m| m.get(&v)).copied()
    }

    /// Materialize the current state as an immutable CSR [`Graph`].
    pub fn snapshot(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.num_nodes(), self.num_edges());
        for p in &self.coords {
            b.add_node(p.x, p.y);
        }
        for (u, nbrs) in self.adj.iter().enumerate() {
            for (&v, &w) in nbrs {
                if (u as NodeId) < v {
                    b.add_edge(u as NodeId, v, w);
                }
            }
        }
        b.build()
    }
}

impl Default for DynamicNetwork {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_pair;

    fn base() -> DynamicNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 10);
        DynamicNetwork::from_graph(&b.build())
    }

    #[test]
    fn snapshot_matches_source() {
        let d = base();
        let g = d.snapshot();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(dijkstra_pair(&g, 0, 3), Some(3));
    }

    #[test]
    fn traffic_update_changes_shortest_path() {
        let mut d = base();
        // Congest the middle link: the long way around becomes optimal.
        d.set_weight(1, 2, 50).unwrap();
        let g = d.snapshot();
        assert_eq!(dijkstra_pair(&g, 0, 3), Some(10));
    }

    #[test]
    fn closure_disconnects() {
        let mut d = base();
        d.remove_edge(1, 2).unwrap();
        d.remove_edge(0, 3).unwrap();
        let g = d.snapshot();
        assert_eq!(dijkstra_pair(&g, 0, 3), None);
    }

    #[test]
    fn scale_weight_rounds_and_clamps() {
        let mut d = base();
        d.scale_weight(0, 1, 3.4).unwrap();
        assert_eq!(d.weight(0, 1), Some(3));
        d.scale_weight(0, 1, 0.0).unwrap();
        assert_eq!(d.weight(0, 1), Some(1)); // clamped to positive
    }

    #[test]
    fn version_tracks_mutations() {
        let mut d = base();
        let v0 = d.version();
        d.set_weight(0, 1, 5).unwrap();
        assert!(d.version() > v0);
        let v1 = d.version();
        assert!(d.set_weight(9, 1, 5).is_err());
        assert_eq!(d.version(), v1); // failed updates don't bump
    }

    #[test]
    fn errors_reported() {
        let mut d = base();
        assert_eq!(d.set_weight(0, 2, 1), Err(UpdateError::NoSuchEdge(0, 2)));
        assert_eq!(d.upsert_edge(0, 0, 1), Err(UpdateError::SelfLoop(0)));
        assert_eq!(d.remove_edge(0, 9), Err(UpdateError::NoSuchNode(9)));
    }

    #[test]
    fn grows_with_new_nodes_and_edges() {
        let mut d = DynamicNetwork::new();
        let a = d.add_node(0.0, 0.0);
        let b = d.add_node(1.0, 0.0);
        d.upsert_edge(a, b, 7).unwrap();
        let g = d.snapshot();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(dijkstra_pair(&g, a, b), Some(7));
    }

    /// A graph where dropping one weight below the Euclidean floor makes
    /// A\* (with the pre-update [`LowerBound`]) return a wrong distance:
    /// the direct S->T edge pops first because the heuristic at the detour
    /// node over-estimates once the detour's last hop got cheap.
    ///
    /// Nodes: S=0 at (0,0), T=1 at (10,0), A=2 at (0,200).
    /// Edges: (S,A,200), (A,T,201), (S,T,300); admissibility scale ~1.
    fn admissibility_trap() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0); // S
        b.add_node(10.0, 0.0); // T
        b.add_node(0.0, 200.0); // A
        b.add_edge(0, 2, 200);
        b.add_edge(2, 1, 201);
        b.add_edge(0, 1, 300);
        b.build()
    }

    #[test]
    fn inadmissible_weight_update_is_rejected() {
        let g = admissibility_trap();
        let mut d = DynamicNetwork::from_graph(&g);
        assert!(d.admissibility_scale() > 0.99);
        // Dropping (A, T) to 2 is far below euclid(A, T) ~ 200.25.
        let err = d.set_weight(2, 1, 2).unwrap_err();
        match err {
            UpdateError::Inadmissible { u, v, w, min } => {
                assert_eq!((u, v, w), (2, 1, 2));
                assert!(min >= 200, "floor should be ~euclid, got {min}");
            }
            other => panic!("expected Inadmissible, got {other:?}"),
        }
        // The failed update must not have touched the network.
        assert_eq!(d.weight(2, 1), Some(201));
        // An update at or above the floor is fine.
        d.set_weight(2, 1, 250).unwrap();
        assert_eq!(d.weight(2, 1), Some(250));
        // upsert of a brand-new edge is validated the same way.
        assert!(matches!(
            d.upsert_edge(1, 2, 1),
            Err(UpdateError::Inadmissible { .. })
        ));
    }

    #[test]
    fn astar_would_be_wrong_without_the_admissibility_check() {
        use crate::astar::astar_pair;

        let g = admissibility_trap();
        let lb = LowerBound::for_graph(&g);
        // Counterfactual: force the inadmissible weight in (bypassing
        // DynamicNetwork, which now rejects it) and keep the stale bound,
        // exactly what a live update used to do to a serving engine.
        let bad = g.with_patched_weights(&[(2, 1, 2)]).unwrap();
        let truth = dijkstra_pair(&bad, 0, 1).unwrap();
        assert_eq!(truth, 202); // S -> A -> T
        let astar = astar_pair(&bad, &lb, 0, 1).unwrap();
        assert_ne!(
            astar, truth,
            "the trap graph no longer demonstrates the A* wrong answer"
        );
        assert_eq!(astar, 300); // A* pops the direct edge first and stops.
    }

    #[test]
    fn scratch_built_networks_skip_validation_until_opted_in() {
        let mut d = DynamicNetwork::new();
        let a = d.add_node(0.0, 0.0);
        let b = d.add_node(100.0, 0.0);
        // No scale captured: any positive weight goes through.
        d.upsert_edge(a, b, 1).unwrap();
        d.set_admissibility_scale(1.0);
        assert_eq!(
            d.set_weight(a, b, 50),
            Err(UpdateError::Inadmissible {
                u: a,
                v: b,
                w: 50,
                min: 100
            })
        );
        d.set_weight(a, b, 100).unwrap();
    }
}
