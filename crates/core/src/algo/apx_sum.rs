//! `APX-sum` (Algorithm 3, §IV-B): constant-factor approximate sum-FANN_R.
//!
//! Candidates are the network nearest neighbors in `P` of each query point
//! (at most `|Q|` of them, found by incremental expansion — index-free);
//! the exact FANN_R routine then runs over that tiny candidate set.
//! Theorem 1 guarantees `d_alpha <= 3 d*`; Theorem 2 tightens it to
//! `2 d*` when `Q ⊆ P`. Both bounds are enforced by property tests; in
//! practice the ratio stays below 1.2 (Fig. 11).

use crate::algo::gd::gd_cancellable;
use crate::gphi::GPhi;
use crate::metrics::Recorder;
use crate::{Aggregate, FannAnswer, FannQuery};
use roadnet::cancel::{CancelCheck, Cancelled};
use roadnet::multisource::membership;
use roadnet::{DijkstraIter, Graph, NodeId, QueryScratch};

/// Nearest member of `P` (given as a mask) to `q`, by network expansion.
/// A cancelled expansion yields `None`; callers re-check the token.
fn nearest_data_point<R: Recorder, C: CancelCheck>(
    g: &Graph,
    is_data: &[bool],
    q: NodeId,
    rec: R,
    cancel: C,
) -> Option<NodeId> {
    DijkstraIter::cancellable(g, q, QueryScratch::new(), rec, cancel)
        .find(|&(v, _)| is_data[v as usize])
        .map(|(v, _)| v)
}

/// The candidate set of Algorithm 3 (deduplicated, sorted).
pub fn apx_sum_candidates(g: &Graph, query: &FannQuery) -> Vec<NodeId> {
    apx_sum_candidates_traced(g, query, ())
}

/// [`apx_sum_candidates`] with a live [`Recorder`] observing the `|Q|`
/// nearest-neighbor expansions.
pub fn apx_sum_candidates_traced<R: Recorder>(g: &Graph, query: &FannQuery, rec: R) -> Vec<NodeId> {
    candidates_cancellable(g, query, rec, ())
}

fn candidates_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    rec: R,
    cancel: C,
) -> Vec<NodeId> {
    let is_data = membership(g.num_nodes(), query.p);
    let mut cand: Vec<NodeId> = query
        .q
        .iter()
        .filter_map(|&q| nearest_data_point(g, &is_data, q, rec, cancel))
        .collect();
    cand.sort_unstable();
    cand.dedup();
    cand
}

/// Approximate sum-FANN_R with a guaranteed factor-3 bound (factor 2 when
/// `Q ⊆ P`). Returns `None` when no candidate reaches `ceil(phi |Q|)`
/// query points.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Sum`] — the proof of
/// Theorem 1 is specific to `sum`.
pub fn apx_sum(g: &Graph, query: &FannQuery, gphi: &dyn GPhi) -> Option<FannAnswer> {
    apx_sum_traced(g, query, gphi, ())
}

/// [`apx_sum`] with a live [`Recorder`]: the candidate-finding expansions
/// report their work, and data points excluded from the candidate set are
/// reported as pruned. Pass a backend built `with_recorder` to also count
/// the `g_phi` side. The `()` recorder makes this identical to the
/// untraced path.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Sum`].
pub fn apx_sum_traced<R: Recorder>(
    g: &Graph,
    query: &FannQuery,
    gphi: &dyn GPhi,
    rec: R,
) -> Option<FannAnswer> {
    match apx_sum_cancellable(g, query, gphi, rec, ()) {
        Ok(a) => a,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`apx_sum_traced`] with a live [`CancelCheck`] polled by the candidate
/// expansions and the reduced GD scan; the `()` check makes this identical
/// to the uncancellable path.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Sum`].
pub fn apx_sum_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    gphi: &dyn GPhi,
    rec: R,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    assert_eq!(
        query.agg,
        Aggregate::Sum,
        "APX-sum answers sum-FANN_R only (Theorem 1)"
    );
    let cand = candidates_cancellable(g, query, rec, cancel);
    // A cancelled expansion above silently shrinks the candidate set;
    // re-check exactly before trusting it.
    if cancel.cancelled_now() {
        return Err(Cancelled);
    }
    // Candidate reduction is the whole point of Algorithm 3: everything
    // outside the candidate set is pruned (duplicate-free P).
    rec.pruned(query.p.len().saturating_sub(cand.len()) as u64);
    if cand.is_empty() {
        return Ok(None);
    }
    let reduced = FannQuery {
        p: &cand,
        q: query.q,
        phi: query.phi,
        agg: Aggregate::Sum,
    };
    gd_cancellable(&reduced, gphi, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use crate::gphi::ine::InePhi;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 5 + y) % 7);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y * 4) % 6);
                }
            }
        }
        b.build()
    }

    #[test]
    fn ratio_within_three() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).step_by(3).collect();
        let q: Vec<u32> = vec![1, 14, 29, 44, 62];
        for phi in [0.2, 0.4, 0.8, 1.0] {
            let query = FannQuery::new(&p, &q, phi, Aggregate::Sum);
            let ine = InePhi::new(&g, &q);
            let approx = apx_sum(&g, &query, &ine).unwrap();
            let exact = brute_force(&g, &query).unwrap();
            assert!(
                approx.dist <= 3 * exact.dist,
                "ratio violated: {} vs {}",
                approx.dist,
                exact.dist
            );
            assert!(approx.dist >= exact.dist, "approx beat the optimum?!");
        }
    }

    #[test]
    fn ratio_within_two_when_q_subset_of_p() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).collect();
        let q: Vec<u32> = vec![3, 18, 33, 48, 60];
        for phi in [0.2, 0.6, 1.0] {
            let query = FannQuery::new(&p, &q, phi, Aggregate::Sum);
            let ine = InePhi::new(&g, &q);
            let approx = apx_sum(&g, &query, &ine).unwrap();
            let exact = brute_force(&g, &query).unwrap();
            assert!(
                approx.dist <= 2 * exact.dist,
                "Theorem 2 violated: {} vs {}",
                approx.dist,
                exact.dist
            );
        }
    }

    #[test]
    fn figure1_example_is_exact() {
        // §IV-B running example: candidates are {p3, p4, p5} and the true
        // optimum p3 is among them, so APX-sum returns the exact answer.
        let (g, p, q) = crate::algo::brute::tests::figure1();
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let cand = apx_sum_candidates(&g, &query);
        assert_eq!(cand, vec![2, 3, 4]); // p3, p4, p5
        let ine = InePhi::new(&g, &q);
        let a = apx_sum(&g, &query, &ine).unwrap();
        assert_eq!((a.p_star, a.dist), (2, 4));
    }

    #[test]
    fn candidates_bounded_by_q() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).step_by(2).collect();
        let q: Vec<u32> = vec![0, 1, 2, 3]; // clustered: NNs likely shared
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let cand = apx_sum_candidates(&g, &query);
        assert!(!cand.is_empty());
        assert!(cand.len() <= q.len());
        for c in &cand {
            assert!(p.contains(c));
        }
    }

    #[test]
    #[should_panic(expected = "sum-FANN_R only")]
    fn rejects_max() {
        let g = grid(3, 3);
        let p = [0u32];
        let q = [8u32];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let ine = InePhi::new(&g, &q);
        let _ = apx_sum(&g, &query, &ine);
    }

    #[test]
    fn none_when_p_unreachable() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let p = [0u32, 1];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        assert!(apx_sum(&g, &query, &ine).is_none());
    }
}
