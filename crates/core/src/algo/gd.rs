//! `GD`: the (generalized) Dijkstra-based algorithm (§III-A).
//!
//! Enumerate every `p in P`, evaluate `g_phi(p, Q)` with the supplied
//! backend, and keep the minimum. With the INE backend this is the paper's
//! `Baseline`; with other backends it is the `GD` family of Fig. 3(a).
//! Much better than the naive `C(|Q|, phi|Q|)` enumeration discussed in
//! §II-C — it fixes `p` first and derives the optimal subset, instead of
//! fixing the subset first.

use crate::gphi::GPhi;
use crate::{FannAnswer, FannQuery};
use roadnet::cancel::{CancelCheck, Cancelled};

/// Exact FANN_R by enumerating `P`. `None` when no data point reaches
/// `ceil(phi |Q|)` query points.
///
/// Ties on `d*` resolve to the smallest node id, so the reported `p*` is
/// deterministic regardless of the order of `P` (and agrees with
/// [`crate::algo::parallel::gd_parallel`] for any worker count).
pub fn gd(query: &FannQuery, gphi: &dyn GPhi) -> Option<FannAnswer> {
    match gd_cancellable(query, gphi, ()) {
        Ok(a) => a,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`gd`] with a live [`CancelCheck`] polled once per candidate; pair with
/// a `g_phi` backend built over the same token so the inner expansions are
/// cancellable too. A cancelled run reports [`Cancelled`] — never a best
/// answer derived from truncated evaluations. The `()` check makes this
/// identical to the uncancellable path.
pub fn gd_cancellable<C: CancelCheck>(
    query: &FannQuery,
    gphi: &dyn GPhi,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    let k = query.subset_size();
    let mut best: Option<FannAnswer> = None;
    for &p in query.p {
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        let Some(r) = gphi.eval(p, k, query.agg) else {
            continue;
        };
        if best
            .as_ref()
            .is_none_or(|b| (r.dist, p) < (b.dist, b.p_star))
        {
            best = Some(FannAnswer {
                p_star: p,
                subset: r.subset_nodes(),
                dist: r.dist,
            });
        }
    }
    // A cancelled backend truncates evals into `None`s, which the loop
    // above cannot distinguish from unreachability — re-check exactly
    // before trusting `best`.
    if cancel.cancelled_now() {
        return Err(Cancelled);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use crate::gphi::ine::InePhi;
    use crate::Aggregate;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (3 * x + y) % 5);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + 2 * y) % 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).step_by(3).collect();
        let q: Vec<u32> = vec![1, 8, 22, 31, 35];
        for phi in [0.2, 0.5, 0.8, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let ine = InePhi::new(&g, &q);
                let got = gd(&query, &ine).unwrap();
                let want = brute_force(&g, &query).unwrap();
                assert_eq!(got.dist, want.dist, "phi={phi} {agg}");
                assert_eq!(got.subset.len(), query.subset_size());
            }
        }
    }

    #[test]
    fn answer_is_verifiable() {
        use crate::algo::brute::brute_force_point;
        let g = grid(5, 5);
        let p: Vec<u32> = vec![0, 6, 12, 18, 24];
        let q: Vec<u32> = vec![2, 10, 22];
        let query = FannQuery::new(&p, &q, 0.67, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        let a = gd(&query, &ine).unwrap();
        // The reported distance equals the recomputed one for p_star, and
        // no other candidate beats it.
        assert_eq!(brute_force_point(&g, &query, a.p_star), Some(a.dist));
        for &c in &p {
            assert!(brute_force_point(&g, &query, c).unwrap() >= a.dist);
        }
    }

    #[test]
    fn none_when_disconnected() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let p = [0u32];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
        let ine = InePhi::new(&g, &q);
        assert!(gd(&query, &ine).is_none());
    }
}
