//! Optimal meeting point (OMP) queries as a special case of FANN_R.
//!
//! The paper (§I) observes that the OMP query of Yan et al. \[5\] — find
//! the point minimizing the aggregate distance to `Q`, with the candidate
//! set *not* given in advance — reduces to FANN_R: by \[5\], \[10\] the set
//! `V ∪ Q` always contains an optimal meeting point, so `P = V` (query
//! points are vertices in our model, §II-A). This module exploits the
//! implicit `P` for a direct `O(|Q| x Dijkstra)` evaluation instead of
//! enumerating an explicit candidate list, and also supports the flexible
//! variant (meet any `ceil(phi |Q|)` of the participants).

use crate::{Aggregate, FannAnswer, FannQuery};
use roadnet::dijkstra::dijkstra_all;
use roadnet::{Dist, Graph, NodeId, INF};

/// Classic OMP: the vertex minimizing `g(v, Q)` over **all** vertices.
/// `None` when no vertex reaches all of `Q`.
pub fn omp(g: &Graph, q: &[NodeId], agg: Aggregate) -> Option<(NodeId, Dist)> {
    assert!(!q.is_empty(), "Q must be non-empty");
    let mut acc: Vec<Dist> = vec![0; g.num_nodes()];
    for &qn in q {
        let d = dijkstra_all(g, qn);
        for (v, a) in acc.iter_mut().enumerate() {
            *a = match agg {
                Aggregate::Sum => a.saturating_add(d[v]),
                Aggregate::Max => (*a).max(d[v]),
            };
        }
    }
    acc.iter()
        .copied()
        .enumerate()
        .filter(|&(_, a)| a != INF)
        .min_by_key(|&(v, a)| (a, v))
        .map(|(v, a)| (v as NodeId, a))
}

/// Flexible OMP: the vertex minimizing the aggregate over its best
/// `ceil(phi |Q|)` participants (an FANN_R query with implicit `P = V`).
///
/// Returns the winning vertex, the chosen participants sorted by distance,
/// and the aggregate — an [`FannAnswer`] for API uniformity.
pub fn flexible_omp(g: &Graph, q: &[NodeId], phi: f64, agg: Aggregate) -> Option<FannAnswer> {
    assert!(!q.is_empty(), "Q must be non-empty");
    assert!(phi > 0.0 && phi <= 1.0, "phi must lie in (0, 1]");
    let k = ((phi * q.len() as f64).ceil() as usize).clamp(1, q.len());

    // Per-vertex bounded max-heap of the k smallest (dist, q) pairs.
    // Memory O(|V| k): fine at road-network scale for the k values OMP
    // uses; the general algorithms in this crate avoid it for huge k.
    let mut best: Vec<Vec<(Dist, NodeId)>> = vec![Vec::with_capacity(k); g.num_nodes()];
    for &qn in q {
        let d = dijkstra_all(g, qn);
        for (v, heap) in best.iter_mut().enumerate() {
            let dv = d[v];
            if dv == INF {
                continue;
            }
            if heap.len() < k {
                heap.push((dv, qn));
                if heap.len() == k {
                    heap.sort_unstable();
                }
            } else if dv < heap[k - 1].0 {
                heap[k - 1] = (dv, qn);
                heap.sort_unstable();
            }
        }
    }
    let mut winner: Option<(Dist, NodeId)> = None;
    for (v, heap) in best.iter().enumerate() {
        if heap.len() < k {
            continue;
        }
        let mut sorted = heap.clone();
        sorted.sort_unstable();
        let ds: Vec<Dist> = sorted.iter().map(|&(d, _)| d).collect();
        let a = agg.of_sorted(&ds);
        if winner.is_none_or(|(w, _)| a < w) {
            winner = Some((a, v as NodeId));
        }
    }
    let (dist, v) = winner?;
    let mut subset = best[v as usize].clone();
    subset.sort_unstable();
    Some(FannAnswer {
        p_star: v,
        subset: subset.into_iter().map(|(_, qn)| qn).collect(),
        dist,
    })
}

/// Cross-check helper: flexible OMP expressed as an explicit FANN_R query
/// with `P = V` (used by tests; quadratic-ish, not for production).
pub fn flexible_omp_reference(
    g: &Graph,
    q: &[NodeId],
    phi: f64,
    agg: Aggregate,
) -> Option<FannAnswer> {
    let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    let query = FannQuery::new(&all, q, phi, agg);
    crate::algo::brute::brute_force(g, &query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x * y) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn omp_matches_flexible_with_phi_one() {
        let g = grid(6, 5);
        let q = [0u32, 11, 23, 29];
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let (v, d) = omp(&g, &q, agg).unwrap();
            let f = flexible_omp(&g, &q, 1.0, agg).unwrap();
            assert_eq!(f.dist, d);
            assert_eq!(f.p_star, v);
        }
    }

    #[test]
    fn flexible_omp_matches_reference() {
        let g = grid(5, 5);
        let q = [2u32, 12, 20, 24];
        for phi in [0.25, 0.5, 0.75, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let fast = flexible_omp(&g, &q, phi, agg).unwrap();
                let slow = flexible_omp_reference(&g, &q, phi, agg).unwrap();
                assert_eq!(fast.dist, slow.dist, "phi={phi} {agg}");
            }
        }
    }

    #[test]
    fn omp_of_single_point_is_itself() {
        let g = grid(4, 4);
        let q = [9u32];
        assert_eq!(omp(&g, &q, Aggregate::Sum), Some((9, 0)));
        assert_eq!(omp(&g, &q, Aggregate::Max), Some((9, 0)));
    }

    #[test]
    fn meeting_point_beats_every_query_point() {
        // The optimum is at least as good as meeting at any participant.
        let g = grid(7, 7);
        let q = [0u32, 6, 42, 48];
        let (_, d) = omp(&g, &q, Aggregate::Sum).unwrap();
        for &qn in &q {
            let from_q: Dist = q
                .iter()
                .map(|&o| roadnet::dijkstra::dijkstra_all(&g, qn)[o as usize])
                .sum();
            assert!(d <= from_q);
        }
    }

    #[test]
    fn disconnected_omp_none_but_flexible_works() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let q = [0u32, 5];
        // No vertex reaches both participants...
        assert_eq!(omp(&g, &q, Aggregate::Sum), None);
        // ...but half of them can always be met (at a participant).
        let f = flexible_omp(&g, &q, 0.5, Aggregate::Sum).unwrap();
        assert_eq!(f.dist, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_q() {
        let g = grid(2, 2);
        let _ = omp(&g, &[], Aggregate::Sum);
    }
}
