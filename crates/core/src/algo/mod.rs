//! FANN_R query algorithms (§III–§V).
//!
//! | Paper name | function | exact? | g |
//! |---|---|---|---|
//! | `GD` / `Baseline` (§III-A) | [`gd::gd`] | yes | sum & max |
//! | `R-List` (§III-B) | [`rlist::r_list`] | yes | sum & max |
//! | IER-kNN (Alg. 1) | [`ier::ier_knn`] | yes | sum & max |
//! | `Exact-max` (Alg. 2) | [`exact_max::exact_max`] | yes | max only |
//! | `APX-sum` (Alg. 3) | [`apx_sum::apx_sum`] | 3-approx (2 if Q ⊆ P) | sum only |
//! | `k`-FANN_R (§V) | [`topk`] | yes | per algorithm |
//!
//! [`brute::brute_force`] is the O(|Q|·Dijkstra) reference used by tests
//! and by the approximation-quality experiments (Fig. 11). [`mod@omp`] covers
//! the optimal-meeting-point special case (§I), and [`parallel`] adds a
//! multi-threaded `GD` for large candidate sets (extension, DESIGN.md §7).

pub mod apx_sum;
pub mod brute;
pub mod exact_max;
pub mod gd;
pub mod ier;
pub mod omp;
pub mod parallel;
pub mod rlist;
pub mod topk;

pub use apx_sum::{apx_sum, apx_sum_cancellable, apx_sum_traced};
pub use brute::brute_force;
pub use exact_max::{
    exact_max, exact_max_cancellable, exact_max_on_streams, exact_max_pooled, exact_max_traced,
    exact_max_with_gphi,
};
pub use gd::{gd, gd_cancellable};
pub use ier::{ier_knn, ier_knn_cancellable, ier_knn_traced, ier_knn_with_bound, IerBound};
pub use omp::{flexible_omp, omp};
pub use parallel::gd_parallel;
pub use rlist::{r_list, r_list_cancellable, r_list_on_streams, r_list_pooled, r_list_traced};
