//! The IER-kNN framework (Algorithm 1, §III-C).
//!
//! Best-first traversal of an R-tree over `P`, ordered by the *flexible
//! Euclidean aggregate function* `g^eps_phi(e, Q)` — the aggregate of the
//! `k` smallest `mindist(mbr(e), q_i)` values, scaled into an admissible
//! network lower bound (Lemma 1). Items popped from the queue are resolved
//! with the exact `g_phi` backend; the search terminates when the head
//! bound reaches the best exact answer.
//!
//! The alternative cheaper bound of §III-C's last paragraph
//! (`mdist(b_Q, e)` for max, `phi|Q| * mdist(b_Q, e)` for sum) is available
//! as [`IerBound::MbrOfQ`] for the ablation study.

use crate::gphi::GPhi;
use crate::metrics::Recorder;
use crate::{Aggregate, FannAnswer, FannQuery};
use roadnet::cancel::{CancelCheck, Cancelled};
use roadnet::{Dist, Graph, LowerBound};
use spatial_rtree::{Entry, Mbr, Pt, RTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which Euclidean lower bound orders the priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IerBound {
    /// The tight flexible aggregate bound `g^eps_phi(e, Q)` (Lemma 1).
    Flexible,
    /// The cheap bound through the MBR of `Q` (§III-C, last paragraph).
    MbrOfQ,
}

/// Build the R-tree over `P` used by [`ier_knn`]. Exposed so benchmarks
/// can build once and query many times.
pub fn build_p_rtree(g: &Graph, p: &[roadnet::NodeId]) -> RTree<roadnet::NodeId> {
    let items = p
        .iter()
        .map(|&v| {
            let c = g.coord(v);
            (Pt::new(c.x, c.y), v)
        })
        .collect();
    RTree::bulk_load(items)
}

/// IER-kNN with the tight flexible bound.
pub fn ier_knn(
    g: &Graph,
    query: &FannQuery,
    rtree: &RTree<roadnet::NodeId>,
    gphi: &dyn GPhi,
) -> Option<FannAnswer> {
    ier_knn_with_bound(g, query, rtree, gphi, IerBound::Flexible)
}

/// IER-kNN with a selectable pruning bound (Algorithm 1).
pub fn ier_knn_with_bound(
    g: &Graph,
    query: &FannQuery,
    rtree: &RTree<roadnet::NodeId>,
    gphi: &dyn GPhi,
    bound: IerBound,
) -> Option<FannAnswer> {
    ier_knn_traced(g, query, rtree, gphi, bound, ())
}

/// [`ier_knn_with_bound`] with a live [`Recorder`]: R-tree node accesses
/// of the best-first traversal are counted, and data points never resolved
/// with `g_phi` because Lemma 1 terminated the scan are reported as
/// pruned. Pass a backend built `with_recorder` to also count the `g_phi`
/// side. The `()` recorder makes this identical to the untraced path.
pub fn ier_knn_traced<R: Recorder>(
    g: &Graph,
    query: &FannQuery,
    rtree: &RTree<roadnet::NodeId>,
    gphi: &dyn GPhi,
    bound: IerBound,
    rec: R,
) -> Option<FannAnswer> {
    match ier_knn_cancellable(g, query, rtree, gphi, bound, rec, ()) {
        Ok(a) => a,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`ier_knn_traced`] with a live [`CancelCheck`] polled once per
/// priority-queue pop; pair with a `g_phi` backend built over the same
/// token so the per-candidate resolutions are cancellable too. The `()`
/// check makes this identical to the uncancellable path.
pub fn ier_knn_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    rtree: &RTree<roadnet::NodeId>,
    gphi: &dyn GPhi,
    bound: IerBound,
    rec: R,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    let k = query.subset_size();
    let lb = LowerBound::for_graph(g);
    let q_pts: Vec<Pt> = query
        .q
        .iter()
        .map(|&v| {
            let c = g.coord(v);
            Pt::new(c.x, c.y)
        })
        .collect();
    let bq = Mbr::of_points(&q_pts);

    // Scratch for the k-smallest mindist selection.
    let mut scratch: Vec<f64> = Vec::with_capacity(q_pts.len());
    let mut bound_of = |mbr: &Mbr| -> Dist {
        match bound {
            IerBound::Flexible => {
                scratch.clear();
                scratch.extend(q_pts.iter().map(|&qp| mbr.mindist_point(qp)));
                scratch.select_nth_unstable_by(k - 1, f64::total_cmp);
                let agg = match query.agg {
                    Aggregate::Max => scratch[k - 1],
                    Aggregate::Sum => scratch[..k].iter().sum(),
                };
                lb.bound_euclid(agg)
            }
            IerBound::MbrOfQ => {
                let md = mbr.mindist_mbr(&bq);
                let agg = match query.agg {
                    Aggregate::Max => md,
                    Aggregate::Sum => k as f64 * md,
                };
                lb.bound_euclid(agg)
            }
        }
    };

    // Heap of (Reverse(bound), seq, entry); seq breaks ties deterministically.
    let mut heap: BinaryHeap<(Reverse<Dist>, u64, Entry<'_, roadnet::NodeId>)> = BinaryHeap::new();
    let mut seq = 0u64;
    let Some(root) = rtree.root() else {
        return Ok(None);
    };
    heap.push((Reverse(bound_of(&root.mbr())), seq, Entry::Node(root)));
    let mut best: Option<FannAnswer> = None;
    let mut evaluated = 0u64;

    while let Some((Reverse(b), _, entry)) = heap.pop() {
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        if let Some(cur) = &best {
            if b >= cur.dist {
                break; // Lemma 1: no remaining entry can contain a better p
            }
        }
        match entry {
            Entry::Node(node) => {
                rec.rtree_nodes(1);
                for child in node.children() {
                    seq += 1;
                    heap.push((Reverse(bound_of(&child.mbr())), seq, child));
                }
            }
            Entry::Item(item) => {
                let p = item.data;
                evaluated += 1;
                if let Some(r) = gphi.eval(p, k, query.agg) {
                    if best.as_ref().is_none_or(|cur| r.dist < cur.dist) {
                        best = Some(FannAnswer {
                            p_star: p,
                            subset: r.subset_nodes(),
                            dist: r.dist,
                        });
                    }
                }
            }
        }
    }
    // A cancelled `g_phi` eval looks unreachable, so `best` may reflect a
    // truncated scan — re-check exactly before trusting it.
    if cancel.cancelled_now() {
        return Err(Cancelled);
    }
    // Data points Lemma 1 let us skip (duplicate-free P).
    rec.pruned((rtree.len() as u64).saturating_sub(evaluated));
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use crate::gphi::ine::InePhi;
    use roadnet::GraphBuilder;

    /// Grid with weights >= Euclidean lengths so the bound is admissible.
    fn metric_grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x * 3 + y) % 6);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x + y * 2) % 5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_brute_force_both_bounds() {
        let g = metric_grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(2).collect();
        let q: Vec<u32> = vec![5, 17, 23, 31, 44, 48];
        let rtree = build_p_rtree(&g, &p);
        for phi in [0.2, 0.5, 0.84, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let ine = InePhi::new(&g, &q);
                let want = brute_force(&g, &query).unwrap();
                for bound in [IerBound::Flexible, IerBound::MbrOfQ] {
                    let got = ier_knn_with_bound(&g, &query, &rtree, &ine, bound).unwrap();
                    assert_eq!(got.dist, want.dist, "phi={phi} {agg} {bound:?}");
                }
            }
        }
    }

    #[test]
    fn single_data_point() {
        let g = metric_grid(3, 3);
        let p = [4u32];
        let q = [0u32, 8];
        let rtree = build_p_rtree(&g, &p);
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        let got = ier_knn(&g, &query, &rtree, &ine).unwrap();
        assert_eq!(got.p_star, 4);
        assert_eq!(got.dist, brute_force(&g, &query).unwrap().dist);
    }

    #[test]
    fn figure2_walkthrough_terminates_early() {
        // Mirror of the paper's running example: a tight cluster of P
        // around Q and a far-away cluster that must never be evaluated.
        let mut b = GraphBuilder::new();
        // Near cluster: 4 data nodes + 2 query nodes in a small ring.
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        // Far cluster at x = 1000.
        for i in 0..4 {
            b.add_node(1000.0 + i as f64, 0.0);
        }
        for i in 0..5 {
            b.add_edge(i, i + 1, 1);
        }
        b.add_edge(5, 6, 995);
        for i in 6..9 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let p = [0u32, 2, 4, 6, 7, 8, 9];
        let q = [1u32, 3];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let rtree = build_p_rtree(&g, &p);
        let ine = InePhi::new(&g, &q);
        let got = ier_knn(&g, &query, &rtree, &ine).unwrap();
        let want = brute_force(&g, &query).unwrap();
        assert_eq!(got.dist, want.dist);
        assert!(got.dist <= 1);
    }

    #[test]
    fn none_when_unreachable() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64 * 10.0, 0.0);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(2, 3, 10);
        let g = b.build();
        let p = [0u32];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let rtree = build_p_rtree(&g, &p);
        let ine = InePhi::new(&g, &q);
        assert!(ier_knn(&g, &query, &rtree, &ine).is_none());
    }
}
