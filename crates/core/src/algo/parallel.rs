//! Multi-threaded `GD` (extension, DESIGN.md §7).
//!
//! `GD` enumerates `P` with independent `g_phi` evaluations — trivially
//! parallel. Because backends borrow per-thread scratch state (expansion
//! queues, visited sets), each worker constructs its own backend from a
//! `Sync` factory; the underlying graph and indexes are shared immutably.

use crate::gphi::GPhi;
use crate::{FannAnswer, FannQuery};
use std::sync::Mutex;

/// Exact FANN_R by enumerating `P` across `threads` workers. Equivalent to
/// [`crate::algo::gd::gd`] bit-for-bit: ties on `d*` resolve to the
/// smallest node id in both, so `p*` does not depend on the worker count
/// or on which worker reports first.
///
/// `make_gphi` is invoked once per worker thread.
pub fn gd_parallel<'q, B, F>(
    query: &FannQuery<'q>,
    make_gphi: F,
    threads: usize,
) -> Option<FannAnswer>
where
    B: GPhi,
    F: Fn() -> B + Sync,
{
    let threads = threads.clamp(1, query.p.len().max(1));
    let k = query.subset_size();
    let best: Mutex<Option<FannAnswer>> = Mutex::new(None);
    let chunk = query.p.len().div_ceil(threads);

    std::thread::scope(|scope| {
        for part in query.p.chunks(chunk) {
            let best = &best;
            let make_gphi = &make_gphi;
            scope.spawn(move || {
                let gphi = make_gphi();
                let mut local: Option<FannAnswer> = None;
                for &p in part {
                    if let Some(r) = gphi.eval(p, k, query.agg) {
                        if local
                            .as_ref()
                            .is_none_or(|b| (r.dist, p) < (b.dist, b.p_star))
                        {
                            local = Some(FannAnswer {
                                p_star: p,
                                subset: r.subset_nodes(),
                                dist: r.dist,
                            });
                        }
                    }
                }
                if let Some(l) = local {
                    let mut guard = best.lock().expect("no poisoned workers");
                    if guard
                        .as_ref()
                        .is_none_or(|b| (l.dist, l.p_star) < (b.dist, b.p_star))
                    {
                        *guard = Some(l);
                    }
                }
            });
        }
    });
    best.into_inner().expect("scope joined all workers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::gd::gd;
    use crate::gphi::ine::InePhi;
    use crate::Aggregate;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 5 + y) % 4);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y * 3) % 5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_matches_serial() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).collect();
        let q: Vec<u32> = vec![3, 19, 37, 55, 60];
        for threads in [1usize, 2, 4, 9] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, 0.6, agg);
                let serial = gd(&query, &InePhi::new(&g, &q)).unwrap();
                let par = gd_parallel(&query, || InePhi::new(&g, &q), threads).unwrap();
                assert_eq!(par.dist, serial.dist, "threads={threads} {agg}");
                assert_eq!(par.p_star, serial.p_star, "threads={threads} {agg}");
            }
        }
    }

    #[test]
    fn more_threads_than_candidates() {
        let g = grid(4, 4);
        let p = [0u32, 15];
        let q = [5u32, 10];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let a = gd_parallel(&query, || InePhi::new(&g, &q), 16).unwrap();
        let b = gd(&query, &InePhi::new(&g, &q)).unwrap();
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let p = [0u32, 1];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        assert!(gd_parallel(&query, || InePhi::new(&g, &q), 2).is_none());
    }
}
