//! `Exact-max` (Algorithm 2, §IV-A): exact max-FANN_R with counters.
//!
//! Expansion runs *from `Q` towards `P`* — the reverse of `g_phi` — using
//! one from-near-to-far queue per query point. Every pop increments the
//! popped data point's counter; the first counter to reach `k = phi|Q|`
//! identifies `p*`: pops occur in globally non-decreasing distance order,
//! so the k sources that reported `p` are exactly its k nearest query
//! points, and the current pop distance is its max-aggregate.
//!
//! `max` only — Table II's counter-example (reproduced in the tests) shows
//! the counting argument fails for `sum`.

use crate::gphi::GPhi;
use crate::metrics::Recorder;
use crate::{Aggregate, FannAnswer, FannQuery};
use roadnet::cancel::{CancelCheck, Cancelled};
use roadnet::{Dist, Graph, NodeId, ObjectStreams, ScratchPool, StreamSet};
use std::collections::HashMap;

/// Run the counter loop; returns `(p*, hits)` where `hits` are the
/// `(query_point, dist)` pairs that fired, or `None` if the queues exhaust
/// before any counter reaches `k`. Expansion scratches are drawn from (and
/// returned to) `pool`. Data points whose counter never started before the
/// winner fired are reported to `rec` as pruned.
/// A fired counter: the winning data point plus its `k` nearest query
/// points with their distances.
type Fired = Option<(NodeId, Vec<(NodeId, Dist)>)>;

fn counter_loop<R: Recorder>(
    g: &Graph,
    query: &FannQuery,
    pool: &mut ScratchPool,
    rec: R,
) -> Fired {
    match counter_loop_cancellable(g, query, pool, rec, ()) {
        Ok(fired) => fired,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

fn counter_loop_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    pool: &mut ScratchPool,
    rec: R,
    cancel: C,
) -> Result<Fired, Cancelled> {
    let mut streams = ObjectStreams::with_pool_cancellable(g, query.q, query.p, pool, rec, cancel);
    let fired = counter_core(&mut streams, query, rec, cancel);
    streams.recycle_into(pool);
    fired
}

/// The counter loop itself, over any [`StreamSet`] — the same code path
/// whether the streams are private ([`ObjectStreams`]) or a shared-batch
/// view ([`roadnet::SharedStreams`]), so both produce identical answers.
fn counter_core<S: StreamSet, R: Recorder, C: CancelCheck>(
    streams: &mut S,
    query: &FannQuery,
    rec: R,
    cancel: C,
) -> Result<Fired, Cancelled> {
    let k = query.subset_size();
    let mut hits: HashMap<NodeId, Vec<(NodeId, Dist)>> = HashMap::new();
    let mut fired = None;
    while let Some((i, pnode, d)) = streams.min_head() {
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        let entry = hits.entry(pnode).or_default();
        entry.push((query.q[i], d));
        if entry.len() >= k {
            fired = Some((pnode, hits.remove(&pnode).expect("just inserted")));
            break;
        }
        streams.pop(i);
    }
    // Data points whose counter never started (duplicate-free P).
    let touched = hits.len() + usize::from(fired.is_some());
    rec.pruned(query.p.len().saturating_sub(touched) as u64);
    // A cancelled stream looks exhausted — `fired = None` here could mean
    // "unreachable" or "truncated". Re-check exactly before trusting it.
    if cancel.cancelled_now() {
        return Err(Cancelled);
    }
    Ok(fired)
}

/// [`exact_max`] over caller-provided streams — the shared-expansion batch
/// entry point: the engine builds one [`roadnet::SharedExpansion`] per
/// co-located group and runs each member on a view of it. Answers are
/// identical to [`exact_max`] because the streams yield identical
/// sequences and the driver is the same code.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`], or if the stream set
/// was not built over `query.q` in order.
pub fn exact_max_on_streams<S: StreamSet>(
    query: &FannQuery,
    streams: &mut S,
) -> Option<FannAnswer> {
    assert_eq!(
        query.agg,
        Aggregate::Max,
        "Exact-max answers max-FANN_R only (see the Table II counter-example)"
    );
    assert_eq!(streams.len(), query.q.len(), "one stream per query point");
    let fired = match counter_core(streams, query, (), ()) {
        Ok(f) => f,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    };
    let (p_star, hits) = fired?;
    let dist = hits.iter().map(|&(_, d)| d).max().expect("k >= 1");
    Some(FannAnswer {
        p_star,
        subset: hits.into_iter().map(|(q, _)| q).collect(),
        dist,
    })
}

/// Exact max-FANN_R. The optimal subset is recovered from the counter
/// hits directly — no `g_phi` invocation at all (an index-free variant of
/// Algorithm 2).
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max(g: &Graph, query: &FannQuery) -> Option<FannAnswer> {
    exact_max_pooled(g, query, &mut ScratchPool::new())
}

/// [`exact_max`] drawing the `|Q|` expansion scratches from `pool` — the
/// batch-engine entry point (see [`crate::algo::rlist::r_list_pooled`]).
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max_pooled(
    g: &Graph,
    query: &FannQuery,
    pool: &mut ScratchPool,
) -> Option<FannAnswer> {
    exact_max_traced(g, query, pool, ())
}

/// [`exact_max_pooled`] with a live [`Recorder`] observing the counter
/// loop's expansion work and pruned data points; the `()` recorder makes
/// this identical to the untraced path.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max_traced<R: Recorder>(
    g: &Graph,
    query: &FannQuery,
    pool: &mut ScratchPool,
    rec: R,
) -> Option<FannAnswer> {
    match exact_max_cancellable(g, query, pool, rec, ()) {
        Ok(a) => a,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`exact_max_traced`] with a live [`CancelCheck`] polled by the `|Q|`
/// expansions and the counter loop; the `()` check makes this identical to
/// the uncancellable path.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    pool: &mut ScratchPool,
    rec: R,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    assert_eq!(
        query.agg,
        Aggregate::Max,
        "Exact-max answers max-FANN_R only (see the Table II counter-example)"
    );
    let Some((p_star, hits)) = counter_loop_cancellable(g, query, pool, rec, cancel)? else {
        return Ok(None);
    };
    let dist = hits.iter().map(|&(_, d)| d).max().expect("k >= 1");
    Ok(Some(FannAnswer {
        p_star,
        subset: hits.into_iter().map(|(q, _)| q).collect(),
        dist,
    }))
}

/// Algorithm 2 exactly as printed: identify `p*` by counters, then invoke
/// the supplied `g_phi` once (line 8). Used by the Table V experiment,
/// which shows the choice of `g_phi` barely matters here.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max_with_gphi(g: &Graph, query: &FannQuery, gphi: &dyn GPhi) -> Option<FannAnswer> {
    assert_eq!(
        query.agg,
        Aggregate::Max,
        "Exact-max answers max-FANN_R only (see the Table II counter-example)"
    );
    let (p_star, _) = counter_loop(g, query, &mut ScratchPool::new(), ())?;
    let r = gphi
        .eval(p_star, query.subset_size(), Aggregate::Max)
        .expect("p* reached k query points during the counter loop");
    Some(FannAnswer {
        p_star,
        subset: r.subset_nodes(),
        dist: r.dist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use crate::gphi::ine::InePhi;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x + y * 2) % 4);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x * 2 + y) % 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_brute_force() {
        let g = grid(7, 6);
        let p: Vec<u32> = (0..42).step_by(3).collect();
        let q: Vec<u32> = vec![2, 13, 27, 38, 41];
        for phi in [0.2, 0.4, 0.6, 1.0] {
            let query = FannQuery::new(&p, &q, phi, Aggregate::Max);
            let want = brute_force(&g, &query).unwrap();
            let got = exact_max(&g, &query).unwrap();
            assert_eq!(got.dist, want.dist, "phi={phi}");
            let ine = InePhi::new(&g, &q);
            let got2 = exact_max_with_gphi(&g, &query, &ine).unwrap();
            assert_eq!(got2.dist, want.dist);
            assert_eq!(got2.p_star, got.p_star);
        }
    }

    #[test]
    fn figure1_example() {
        // §IV-A running example: phi = 50% gives p* = p3 (id 2), d* = 2,
        // Q*_phi = {q1, q2}.
        let (g, p, q) = crate::algo::brute::tests::figure1();
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
        let a = exact_max(&g, &query).unwrap();
        assert_eq!((a.p_star, a.dist), (2, 2));
        let mut subset = a.subset.clone();
        subset.sort_unstable();
        assert_eq!(subset, vec![9, 10]);
    }

    #[test]
    #[should_panic(expected = "max-FANN_R only")]
    fn rejects_sum() {
        let g = grid(3, 3);
        let p = [0u32];
        let q = [8u32];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let _ = exact_max(&g, &query);
    }

    /// Table II: the counter argument is wrong for `sum`. Construct the
    /// table's instance and verify that (a) the counter answer would be
    /// p2 with sum 14, but (b) the true optimum is p1 with sum 13.
    #[test]
    fn table2_counter_example_for_sum() {
        // Star-like construction: 5 query nodes, 5 data nodes, distances
        // per Table II realized with dedicated paths through the sources.
        // We need: d(q1,p2)=4, d(q1,p3)=12, d(q2,p1)=2, d(q2,p2)=10,
        // d(q3,p1)=11, d(q4,p4)=14, d(q5,p2)=15.
        let mut b = GraphBuilder::new();
        // ids: p1..p5 -> 0..4, q1..q5 -> 5..9
        for i in 0..10 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(5, 1, 4); // q1 - p2
        b.add_edge(6, 0, 2); // q2 - p1
        b.add_edge(7, 0, 11); // q3 - p1
        b.add_edge(8, 3, 14); // q4 - p4
        b.add_edge(9, 1, 15); // q5 - p2
                              // Link q1 and q2 so q1-p3 = 12 via q1-q2... keep it simple with a
                              // direct edge q2 - p2 making d(q2,p2)=10 and q1-p3 = 12 direct.
        b.add_edge(6, 1, 10); // q2 - p2
        b.add_edge(5, 2, 12); // q1 - p3
        let g = b.build();
        let p: Vec<u32> = (0..5).collect();
        let q: Vec<u32> = (5..10).collect();
        let query = FannQuery::new(&p, &q, 0.4, Aggregate::Sum); // k = 2
        let want = brute_force(&g, &query).unwrap();
        assert_eq!((want.p_star, want.dist), (0, 13)); // p1, 2 + 11
                                                       // The counter loop (ignoring the aggregate) would fire on p2 = id 1
                                                       // first, whose true sum distance is 14 > 13 — hence max-only.
        let max_query = FannQuery::new(&p, &q, 0.4, Aggregate::Max);
        let (fired, _) = counter_loop(&g, &max_query, &mut ScratchPool::new(), ()).unwrap();
        assert_eq!(fired, 1); // p2 fires first...
        let sum_of_fired = crate::algo::brute::brute_force_point(&g, &query, fired).unwrap();
        assert_eq!(sum_of_fired, 14); // ...but is not the sum-optimum.
    }

    #[test]
    fn none_when_unreachable() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let p = [0u32];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        assert!(exact_max(&g, &query).is_none());
    }

    #[test]
    fn subset_size_is_k() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).step_by(5).collect();
        let q: Vec<u32> = vec![1, 10, 20, 30];
        let query = FannQuery::new(&p, &q, 0.75, Aggregate::Max);
        let a = exact_max(&g, &query).unwrap();
        assert_eq!(a.subset.len(), 3);
    }
}
