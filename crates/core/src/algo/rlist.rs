//! `R-List`: the threshold-algorithm adaptation of *List* \[8\], \[9\] to road
//! networks (§III-B).
//!
//! One from-near-to-far data-object queue per query point (the switchable
//! multi-source expansion of `roadnet::multisource`). Every newly seen data
//! point is fully evaluated with `g_phi` ("random access"); the scan stops
//! when the best evaluated answer is at most the threshold
//!
//! ```text
//! tau = g( k smallest current queue-head distances )
//! ```
//!
//! which lower-bounds `g_phi` of every *unseen* data point: an unseen `p`
//! satisfies `delta(q_i, p) >= head_i` for every queue `i`, so its k
//! smallest distances pointwise dominate the k smallest heads.

use crate::gphi::GPhi;
use crate::metrics::Recorder;
use crate::{FannAnswer, FannQuery};
use roadnet::cancel::{CancelCheck, Cancelled};
use roadnet::{Dist, Graph, ObjectStreams, ScratchPool, StreamSet, INF};
use std::collections::HashSet;

/// Exact FANN_R with threshold-based early termination. Universal
/// (both `sum` and `max`).
pub fn r_list(g: &Graph, query: &FannQuery, gphi: &dyn GPhi) -> Option<FannAnswer> {
    r_list_pooled(g, query, gphi, &mut ScratchPool::new())
}

/// [`r_list`] drawing the `|Q|` expansion scratches from `pool` — the
/// batch-engine entry point: a worker keeps one pool across its whole query
/// stream, so the per-query `O(|Q||V|)` distance-array allocation happens
/// only while the pool warms up.
pub fn r_list_pooled(
    g: &Graph,
    query: &FannQuery,
    gphi: &dyn GPhi,
    pool: &mut ScratchPool,
) -> Option<FannAnswer> {
    r_list_traced(g, query, gphi, pool, ())
}

/// [`r_list_pooled`] with a live [`Recorder`]: the `|Q|` expansions report
/// their search work, and data points never evaluated because the
/// threshold fired are reported as pruned. Note the recorder only sees the
/// *expansion* side — pass a backend built `with_recorder` to also count
/// the `g_phi` side. The `()` recorder makes this identical to the
/// untraced path.
pub fn r_list_traced<R: Recorder>(
    g: &Graph,
    query: &FannQuery,
    gphi: &dyn GPhi,
    pool: &mut ScratchPool,
    rec: R,
) -> Option<FannAnswer> {
    match r_list_cancellable(g, query, gphi, pool, rec, ()) {
        Ok(a) => a,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

/// [`r_list_traced`] with a live [`CancelCheck`] polled by the `|Q|`
/// expansions and the threshold loop; pair with a `g_phi` backend built
/// over the same token. The `()` check makes this identical to the
/// uncancellable path.
pub fn r_list_cancellable<R: Recorder, C: CancelCheck>(
    g: &Graph,
    query: &FannQuery,
    gphi: &dyn GPhi,
    pool: &mut ScratchPool,
    rec: R,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    let mut streams = ObjectStreams::with_pool_cancellable(g, query.q, query.p, pool, rec, cancel);
    let best = r_list_core(&mut streams, query, gphi, rec, cancel);
    streams.recycle_into(pool);
    best
}

/// The threshold scan itself, over any [`StreamSet`] — the same code path
/// whether the streams are private ([`ObjectStreams`]) or a shared-batch
/// view ([`roadnet::SharedStreams`]), so both produce identical answers.
fn r_list_core<S: StreamSet, R: Recorder, C: CancelCheck>(
    streams: &mut S,
    query: &FannQuery,
    gphi: &dyn GPhi,
    rec: R,
    cancel: C,
) -> Result<Option<FannAnswer>, Cancelled> {
    let k = query.subset_size();
    let mut seen: HashSet<roadnet::NodeId> = HashSet::new();
    let mut best: Option<FannAnswer> = None;

    // Until every queue is exhausted (then every reachable point was seen).
    while let Some((i, pnode, _)) = streams.min_head() {
        if cancel.poll_cancelled() {
            return Err(Cancelled);
        }
        // Threshold over current heads (before popping).
        let mut heads: Vec<Dist> = streams
            .head_dists()
            .into_iter()
            .map(|h| h.unwrap_or(INF))
            .collect();
        heads.sort_unstable();
        let tau = query.agg.of_sorted(&heads[..k]);
        if let Some(b) = &best {
            if b.dist <= tau {
                break;
            }
        }
        streams.pop(i);
        if seen.insert(pnode) {
            if let Some(r) = gphi.eval(pnode, k, query.agg) {
                if best.as_ref().is_none_or(|b| r.dist < b.dist) {
                    best = Some(FannAnswer {
                        p_star: pnode,
                        subset: r.subset_nodes(),
                        dist: r.dist,
                    });
                }
            }
        }
    }
    // A cancelled stream looks exhausted and a cancelled `g_phi` eval
    // looks unreachable, either of which could have truncated the scan —
    // re-check exactly before trusting `best`.
    if cancel.cancelled_now() {
        return Err(Cancelled);
    }
    // Data points the threshold let us skip entirely (duplicate-free P).
    rec.pruned(query.p.len().saturating_sub(seen.len()) as u64);
    Ok(best)
}

/// [`r_list`] over caller-provided streams — the shared-expansion batch
/// entry point (see [`crate::algo::exact_max::exact_max_on_streams`]).
/// Answers are identical to [`r_list`] because the streams yield identical
/// sequences and the driver is the same code.
///
/// # Panics
/// If the stream set was not built over `query.q` in order.
pub fn r_list_on_streams<S: StreamSet>(
    query: &FannQuery,
    gphi: &dyn GPhi,
    streams: &mut S,
) -> Option<FannAnswer> {
    assert_eq!(streams.len(), query.q.len(), "one stream per query point");
    match r_list_core(streams, query, gphi, (), ()) {
        Ok(best) => best,
        Err(Cancelled) => unreachable!("the unit CancelCheck never cancels"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use crate::gphi::ine::InePhi;
    use crate::Aggregate;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 2 + y * 3) % 4);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y) % 5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_brute_force() {
        let g = grid(7, 6);
        let p: Vec<u32> = (0..42).step_by(4).collect();
        let q: Vec<u32> = vec![3, 11, 25, 33, 40];
        for phi in [0.2, 0.4, 0.6, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let ine = InePhi::new(&g, &q);
                let got = r_list(&g, &query, &ine).unwrap();
                let want = brute_force(&g, &query).unwrap();
                assert_eq!(got.dist, want.dist, "phi={phi} {agg}");
            }
        }
    }

    #[test]
    fn works_when_p_equals_q() {
        let g = grid(5, 5);
        let pq: Vec<u32> = vec![0, 6, 12, 18, 24];
        let query = FannQuery::new(&pq, &pq, 0.6, Aggregate::Sum);
        let ine = InePhi::new(&g, &pq);
        let got = r_list(&g, &query, &ine).unwrap();
        let want = brute_force(&g, &query).unwrap();
        assert_eq!(got.dist, want.dist);
    }

    #[test]
    fn handles_single_query_point() {
        // With |Q| = 1 and phi = 1, FANN_R degenerates to NN of q in P.
        let g = grid(4, 4);
        let p: Vec<u32> = vec![0, 5, 15];
        let q = [10u32];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let ine = InePhi::new(&g, &q);
        let got = r_list(&g, &query, &ine).unwrap();
        let want = brute_force(&g, &query).unwrap();
        assert_eq!(got.dist, want.dist);
    }

    #[test]
    fn disconnected_q_component_none() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 4, 1);
        let g = b.build();
        // P in one component, Q in the other; k = 2 unreachable.
        let p = [0u32, 1];
        let q = [2u32, 4];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        assert!(r_list(&g, &query, &ine).is_none());
    }

    #[test]
    fn partially_reachable_uses_reachable_subset() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 2); // component A: p=0, q=1
        b.add_edge(2, 3, 1); // component B: q=3 (and p=2)
        b.add_edge(3, 4, 1);
        let g = b.build();
        let p = [0u32, 2];
        let q = [1u32, 3];
        // k = 1: p=0 reaches q=1 at 2; p=2 reaches q=3 at 1 -> best p=2.
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        let got = r_list(&g, &query, &ine).unwrap();
        assert_eq!((got.p_star, got.dist), (2, 1));
    }
}
