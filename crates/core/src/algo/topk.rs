//! `k`-FANN_R (§V, Definition 3): the `k` best data points.
//!
//! Adaptations follow the paper exactly: the priority queue of partial
//! answers replaces the single best candidate, and every termination test
//! compares the bound against the *k-th smallest* distance in the queue.
//! `APX-sum` is deliberately not adapted (the paper notes it cannot be).

use crate::gphi::GPhi;
use crate::{Aggregate, FannQuery, KFannAnswer};
use roadnet::{Dist, Graph, NodeId, ObjectStreams, INF};
use spatial_rtree::{Entry, Mbr, Pt, RTree};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Bounded max-heap of the k best `(dist, node)` answers.
struct Best {
    k: usize,
    heap: BinaryHeap<(Dist, NodeId)>,
}

impl Best {
    fn new(k: usize) -> Self {
        Best {
            k,
            heap: BinaryHeap::new(),
        }
    }

    fn offer(&mut self, d: Dist, p: NodeId) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((d, p));
        } else if let Some(&(worst, _)) = self.heap.peek() {
            if d < worst {
                self.heap.pop();
                self.heap.push((d, p));
            }
        }
    }

    /// The current k-th smallest distance (INF until k answers exist).
    fn kth(&self) -> Dist {
        if self.heap.len() < self.k {
            INF
        } else {
            self.heap.peek().map_or(INF, |&(d, _)| d)
        }
    }

    fn into_answer(self) -> KFannAnswer {
        let mut v: Vec<(NodeId, Dist)> = self.heap.into_iter().map(|(d, p)| (p, d)).collect();
        v.sort_by_key(|&(p, d)| (d, p));
        v
    }
}

/// `k`-FANN_R by enumerating `P` (`GD` adaptation: "update the queue when
/// enumerating P; finally, the queue is our final result").
pub fn gd_topk(query: &FannQuery, gphi: &dyn GPhi, k_out: usize) -> KFannAnswer {
    let k = query.subset_size();
    let mut best = Best::new(k_out);
    for &p in query.p {
        if let Some(r) = gphi.eval(p, k, query.agg) {
            best.offer(r.dist, p);
        }
    }
    best.into_answer()
}

/// `k`-FANN_R with `R-List`: terminate once the threshold exceeds the
/// k-th smallest evaluated distance.
pub fn rlist_topk(g: &Graph, query: &FannQuery, gphi: &dyn GPhi, k_out: usize) -> KFannAnswer {
    let k = query.subset_size();
    let mut streams = ObjectStreams::new(g, query.q, query.p);
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut best = Best::new(k_out);
    while let Some((i, pnode, _)) = streams.min_head() {
        let mut heads: Vec<Dist> = streams
            .head_dists()
            .into_iter()
            .map(|h| h.unwrap_or(INF))
            .collect();
        heads.sort_unstable();
        let tau = query.agg.of_sorted(&heads[..k]);
        if best.kth() <= tau {
            break;
        }
        streams.pop(i);
        if seen.insert(pnode) {
            if let Some(r) = gphi.eval(pnode, k, query.agg) {
                best.offer(r.dist, pnode);
            }
        }
    }
    best.into_answer()
}

/// `k`-FANN_R with the IER-kNN framework: pop entries until the Euclidean
/// flexible bound reaches the k-th smallest evaluated distance.
pub fn ier_topk(
    g: &Graph,
    query: &FannQuery,
    rtree: &RTree<NodeId>,
    gphi: &dyn GPhi,
    k_out: usize,
) -> KFannAnswer {
    let k = query.subset_size();
    let lb = roadnet::LowerBound::for_graph(g);
    let q_pts: Vec<Pt> = query
        .q
        .iter()
        .map(|&v| {
            let c = g.coord(v);
            Pt::new(c.x, c.y)
        })
        .collect();
    let mut scratch: Vec<f64> = Vec::with_capacity(q_pts.len());
    let mut bound_of = |mbr: &Mbr| -> Dist {
        scratch.clear();
        scratch.extend(q_pts.iter().map(|&qp| mbr.mindist_point(qp)));
        scratch.select_nth_unstable_by(k - 1, f64::total_cmp);
        let agg = match query.agg {
            Aggregate::Max => scratch[k - 1],
            Aggregate::Sum => scratch[..k].iter().sum(),
        };
        lb.bound_euclid(agg)
    };

    let mut best = Best::new(k_out);
    let Some(root) = rtree.root() else {
        return best.into_answer();
    };
    let mut heap: BinaryHeap<(Reverse<Dist>, u64, Entry<'_, NodeId>)> = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push((Reverse(bound_of(&root.mbr())), seq, Entry::Node(root)));
    while let Some((Reverse(b), _, entry)) = heap.pop() {
        if b >= best.kth() {
            break;
        }
        match entry {
            Entry::Node(node) => {
                for child in node.children() {
                    seq += 1;
                    heap.push((Reverse(bound_of(&child.mbr())), seq, child));
                }
            }
            Entry::Item(item) => {
                if let Some(r) = gphi.eval(item.data, k, query.agg) {
                    best.offer(r.dist, item.data);
                }
            }
        }
    }
    best.into_answer()
}

/// `k`-FANN_R with `Exact-max`: expand until `k_out` distinct counters
/// reach `phi|Q|`; counters fire in non-decreasing max-distance order, so
/// the firing order is the answer order. `max` only.
///
/// # Panics
/// If the query aggregate is not [`Aggregate::Max`].
pub fn exact_max_topk(g: &Graph, query: &FannQuery, k_out: usize) -> KFannAnswer {
    assert_eq!(
        query.agg,
        Aggregate::Max,
        "Exact-max answers max-FANN_R only"
    );
    let k = query.subset_size();
    let mut streams = ObjectStreams::new(g, query.q, query.p);
    let mut counters: HashMap<NodeId, usize> = HashMap::new();
    let mut out: KFannAnswer = Vec::with_capacity(k_out);
    while out.len() < k_out {
        let Some((i, pnode, d)) = streams.min_head() else {
            break;
        };
        let c = counters.entry(pnode).or_insert(0);
        *c += 1;
        if *c == k {
            out.push((pnode, d));
        }
        streams.pop(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::ier::build_p_rtree;
    use crate::gphi::ine::InePhi;
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x * 2 + y) % 7);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x + y * 3) % 5);
                }
            }
        }
        b.build()
    }

    /// Brute-force k-FANN: all flexible aggregate distances, sorted.
    fn brute_topk(g: &roadnet::Graph, query: &FannQuery, k_out: usize) -> Vec<Dist> {
        let from_q: Vec<Vec<Dist>> = query.q.iter().map(|&q| dijkstra_all(g, q)).collect();
        let k = query.subset_size();
        let mut all: Vec<Dist> = query
            .p
            .iter()
            .filter_map(|&p| {
                let mut ds: Vec<Dist> = from_q.iter().map(|row| row[p as usize]).collect();
                ds.sort_unstable();
                (ds[k - 1] != INF).then(|| query.agg.of_sorted(&ds[..k]))
            })
            .collect();
        all.sort_unstable();
        all.truncate(k_out);
        all
    }

    fn dists(a: &KFannAnswer) -> Vec<Dist> {
        a.iter().map(|&(_, d)| d).collect()
    }

    #[test]
    fn all_topk_algorithms_agree() {
        let g = grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(2).collect();
        let q: Vec<u32> = vec![3, 12, 26, 37, 45];
        let rtree = build_p_rtree(&g, &p);
        for k_out in [1usize, 3, 5] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, 0.6, agg);
                let ine = InePhi::new(&g, &q);
                let want = brute_topk(&g, &query, k_out);
                assert_eq!(dists(&gd_topk(&query, &ine, k_out)), want, "gd {agg}");
                assert_eq!(
                    dists(&rlist_topk(&g, &query, &ine, k_out)),
                    want,
                    "rlist {agg}"
                );
                assert_eq!(
                    dists(&ier_topk(&g, &query, &rtree, &ine, k_out)),
                    want,
                    "ier {agg}"
                );
                if agg == Aggregate::Max {
                    assert_eq!(dists(&exact_max_topk(&g, &query, k_out)), want, "exact-max");
                }
            }
        }
    }

    #[test]
    fn k_one_equals_single_fann() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).step_by(3).collect();
        let q: Vec<u32> = vec![2, 16, 30];
        let query = FannQuery::new(&p, &q, 0.67, Aggregate::Max);
        let ine = InePhi::new(&g, &q);
        let single = crate::algo::gd::gd(&query, &ine).unwrap();
        let top1 = gd_topk(&query, &ine, 1);
        assert_eq!(top1, vec![(single.p_star, single.dist)]);
        let em1 = exact_max_topk(&g, &query, 1);
        assert_eq!(em1[0].1, single.dist);
    }

    #[test]
    fn k_larger_than_p_returns_all() {
        let g = grid(4, 4);
        let p = [0u32, 5, 15];
        let q = [2u32, 10];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        let all = gd_topk(&query, &ine, 10);
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn results_have_distinct_points() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).collect();
        let q: Vec<u32> = vec![0, 35];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let out = exact_max_topk(&g, &query, 8);
        let set: HashSet<NodeId> = out.iter().map(|&(p, _)| p).collect();
        assert_eq!(set.len(), out.len());
    }

    #[test]
    fn zero_k_is_empty() {
        let g = grid(3, 3);
        let p = [0u32];
        let q = [8u32];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        assert!(gd_topk(&query, &ine, 0).is_empty());
        assert!(rlist_topk(&g, &query, &ine, 0).is_empty());
    }
}
