//! Brute-force FANN_R reference: one full Dijkstra per query point.
//!
//! Exact and simple — `O(|Q| (|E| + |V| log |V|))` plus an
//! `O(|P| |Q| log |Q|)` selection — used as ground truth by tests and by
//! the approximation-quality experiments (Fig. 11). Not an evaluated
//! algorithm in the paper; every paper algorithm must agree with it.

use crate::gphi::select_k_smallest;
use crate::{FannAnswer, FannQuery};
use roadnet::dijkstra::dijkstra_all;
use roadnet::{Dist, Graph};

/// Exact FANN_R answer by exhaustive computation; `None` when no data point
/// can reach `ceil(phi |Q|)` query points.
pub fn brute_force(g: &Graph, query: &FannQuery) -> Option<FannAnswer> {
    let k = query.subset_size();
    // Distances from every query point (sources = Q: |Q| << |P| usually).
    let from_q: Vec<Vec<Dist>> = query.q.iter().map(|&q| dijkstra_all(g, q)).collect();
    let mut best: Option<FannAnswer> = None;
    for &p in query.p {
        let dists = query
            .q
            .iter()
            .zip(from_q.iter())
            .map(|(&qn, row)| (qn, row[p as usize]));
        let Some(knn) = select_k_smallest(dists, k) else {
            continue;
        };
        let sorted: Vec<Dist> = knn.iter().map(|&(_, d)| d).collect();
        let d = query.agg.of_sorted(&sorted);
        if best.as_ref().is_none_or(|b| d < b.dist) {
            best = Some(FannAnswer {
                p_star: p,
                subset: knn.into_iter().map(|(n, _)| n).collect(),
                dist: d,
            });
        }
    }
    best
}

/// Flexible aggregate distance of a single point, by brute force.
pub fn brute_force_point(g: &Graph, query: &FannQuery, p: roadnet::NodeId) -> Option<Dist> {
    let k = query.subset_size();
    let dists = query.q.iter().map(|&qn| {
        (
            qn,
            dijkstra_all(g, qn)[p as usize], // |Q| Dijkstras; test-only helper
        )
    });
    let knn = select_k_smallest(dists, k)?;
    let sorted: Vec<Dist> = knn.iter().map(|&(_, d)| d).collect();
    Some(query.agg.of_sorted(&sorted))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::Aggregate;
    use roadnet::GraphBuilder;

    /// Figure 1 of the paper, reconstructed.
    ///
    /// Nodes: p1..p9 are data points (ids 0..8); q1..q4 are query points.
    /// q3 = p4 and q4 = p5 share nodes; q1 and q2 get their own nodes on
    /// the edges (p2, p3) and (p3, p6). Weights follow the paper's worked
    /// answers: max-ANN(p2) = 16, sum-ANN(p2) = 52, and with phi = 50%
    /// max-FANN(p3) = 2, sum-FANN(p3) = 4.
    pub fn figure1() -> (roadnet::Graph, Vec<u32>, Vec<u32>) {
        let mut b = GraphBuilder::new();
        // Data points p1..p9 -> ids 0..8.
        for i in 0..9 {
            b.add_node(i as f64, 0.0);
        }
        // Extra nodes for q1 (id 9) and q2 (id 10).
        let _q1 = b.add_node(2.5, 0.0);
        let _q2 = b.add_node(3.5, 0.0);
        // Edges chosen so distances from p2 (id 1) to q1, q2, q3, q4 are
        // 10, 14, 12, 16 and from p3 (id 2) to q1, q2 are 2, 2.
        b.add_edge(1, 9, 10); // p2 - q1
        b.add_edge(9, 2, 2); // q1 - p3
        b.add_edge(2, 10, 2); // p3 - q2
        b.add_edge(10, 5, 9); // q2 - p6
        b.add_edge(1, 3, 12); // p2 - p4 (q3)
        b.add_edge(1, 4, 16); // p2 - p5 (q4)
        b.add_edge(0, 1, 30); // p1 - p2 (far filler)
        b.add_edge(5, 6, 25); // p6 - p7
        b.add_edge(6, 7, 25); // p7 - p8
        b.add_edge(7, 8, 25); // p8 - p9
        let g = b.build();
        let p: Vec<u32> = (0..9).collect();
        let q: Vec<u32> = vec![9, 10, 3, 4]; // q1, q2, q3(=p4), q4(=p5)
        (g, p, q)
    }

    #[test]
    fn figure1_ann_answers() {
        let (g, p, q) = figure1();
        // phi = 1 -> classic ANN: p2 (id 1) wins for both aggregates.
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let a = brute_force(&g, &query).unwrap();
        assert_eq!((a.p_star, a.dist), (1, 16));
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let a = brute_force(&g, &query).unwrap();
        assert_eq!((a.p_star, a.dist), (1, 52));
    }

    #[test]
    fn figure1_fann_answers() {
        let (g, p, q) = figure1();
        // phi = 50% -> p3 (id 2) wins: max distance 2, sum distance 4.
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
        let a = brute_force(&g, &query).unwrap();
        assert_eq!((a.p_star, a.dist), (2, 2));
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        let a = brute_force(&g, &query).unwrap();
        assert_eq!((a.p_star, a.dist), (2, 4));
        let mut subset = a.subset.clone();
        subset.sort_unstable();
        assert_eq!(subset, vec![9, 10]); // {q1, q2}
    }

    #[test]
    fn point_eval_matches_best() {
        let (g, p, q) = figure1();
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        assert_eq!(brute_force_point(&g, &query, 2), Some(4));
        assert_eq!(brute_force_point(&g, &query, 1), Some(10 + 12));
    }

    #[test]
    fn none_when_unreachable() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1); // P-component
        b.add_edge(2, 3, 1); // Q-component
        let g = b.build();
        let p = [0u32, 1];
        let q = [2u32, 3];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        assert_eq!(brute_force(&g, &query), None);
    }
}
