//! FANN_R: flexible aggregate nearest neighbor queries in road networks.
//!
//! This crate is the paper's primary contribution (Yao et al., ICDE 2018):
//!
//! * [`FannQuery`] / [`FannAnswer`] — the query quintuple
//!   `(G, P, Q, phi, g)` and answer triple `(p*, Q*_phi, d*)`
//!   (Definitions 1 and 2).
//! * [`gphi`] — the flexible aggregate function `g_phi(p, Q)` with all the
//!   backends of Table I (INE, A\*, label/"PHL", G-tree kNN, and the IER²
//!   family over an R-tree on `Q`).
//! * [`algo`] — the query algorithms: the Dijkstra-based baseline `GD`
//!   (§III-A), `R-List` (§III-B), the IER-kNN framework (Algorithm 1),
//!   `Exact-max` (Algorithm 2), `APX-sum` (Algorithm 3), and the
//!   `k`-FANN_R extensions (§V).
//!
//! All exact algorithms agree on `d*` by construction; the integration and
//! property tests cross-validate them against a brute-force reference.
//! [`engine::Engine`] wraps the §VII decision rule (indexed vs index-free,
//! exact vs approximate) behind one `query` call.

pub mod algo;
pub mod engine;
pub mod gphi;
pub mod locality;
pub mod metrics;

use roadnet::{Dist, Graph, NodeId};
use std::fmt;

/// The aggregate function `g`: either `sum` or `max` (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    Sum,
    Max,
}

impl Aggregate {
    /// Aggregate a slice of distances sorted in ascending order.
    /// Saturating for `Sum`, so `INF` stays `INF`.
    pub fn of_sorted(&self, sorted: &[Dist]) -> Dist {
        match self {
            Aggregate::Sum => sorted.iter().fold(0u64, |a, &d| a.saturating_add(d)),
            Aggregate::Max => sorted.last().copied().unwrap_or(0),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Sum => write!(f, "sum"),
            Aggregate::Max => write!(f, "max"),
        }
    }
}

/// The flexible subset size `k = ceil(phi * m)`, computed FP-robustly.
///
/// The naive `(phi * m as f64).ceil()` drifts at exact boundaries: when
/// `phi` was itself produced by a division `j / m`, the product `phi * m`
/// can land an ulp above `j` (yielding `j + 1`) or below `j - 1 + 1` —
/// e.g. `0.3 * 10` is not representable and historically rounded to `4`
/// instead of `3` on some `(phi, m)` pairs. This routine instead returns
/// the smallest `k in [1, m]` with `(k as f64) / (m as f64) >= phi`, which
/// is exact whenever `phi` is any `f64` in `((k-1)/m, k/m]` — in
/// particular `flex_k(j as f64 / m as f64, m) == j` for every `j`.
pub fn flex_k(phi: f64, m: usize) -> usize {
    assert!(m > 0, "Q must be non-empty");
    assert!(phi > 0.0 && phi <= 1.0, "phi must lie in (0, 1], got {phi}");
    let mf = m as f64;
    let mut k = ((phi * mf).ceil() as usize).clamp(1, m);
    // Snap to the true boundary: the f64 guess is off by at most one ulp,
    // so each loop runs at most once or twice.
    while k > 1 && ((k - 1) as f64) / mf >= phi {
        k -= 1;
    }
    while k < m && (k as f64) / mf < phi {
        k += 1;
    }
    k
}

/// An FANN_R query: data points `P`, query points `Q`, flexibility
/// `phi in (0, 1]`, and aggregate `g` (Definition 2). The graph is passed
/// to each algorithm separately so one query can run on many backends.
///
/// # Duplicate node ids
///
/// `P` and `Q` are **sets**: duplicate node ids carry no multiplicity.
/// [`engine::Engine`] enforces this by deduplicating both slices (first
/// occurrence kept) before dispatching, so every strategy sees the same
/// effective query. Algorithms and `g_phi` backends invoked directly assume
/// duplicate-free input — with duplicates they can legitimately disagree,
/// because expansion-based backends (INE's membership mask) collapse a
/// repeated query node into one stream while scan-based backends count each
/// occurrence toward `k = ceil(phi * |Q|)`.
#[derive(Debug, Clone)]
pub struct FannQuery<'a> {
    pub p: &'a [NodeId],
    pub q: &'a [NodeId],
    pub phi: f64,
    pub agg: Aggregate,
}

/// Validation failures for [`FannQuery::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    EmptyP,
    EmptyQ,
    PhiOutOfRange,
    NodeOutOfRange(NodeId),
    /// The query was cancelled (deadline exceeded or revoked) before an
    /// answer was established; no partial result is reported.
    Cancelled,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyP => write!(f, "P must be non-empty"),
            QueryError::EmptyQ => write!(f, "Q must be non-empty"),
            QueryError::PhiOutOfRange => write!(f, "phi must lie in (0, 1]"),
            QueryError::NodeOutOfRange(v) => write!(f, "node {v} is not in the graph"),
            QueryError::Cancelled => write!(f, "query cancelled before completion"),
        }
    }
}

impl std::error::Error for QueryError {}

impl<'a> FannQuery<'a> {
    /// Construct a query.
    ///
    /// # Panics
    /// If `phi` is outside `(0, 1]` or either set is empty; use
    /// [`FannQuery::validate`] for fallible checking against a graph.
    pub fn new(p: &'a [NodeId], q: &'a [NodeId], phi: f64, agg: Aggregate) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi must lie in (0, 1], got {phi}");
        assert!(!p.is_empty(), "P must be non-empty");
        assert!(!q.is_empty(), "Q must be non-empty");
        FannQuery { p, q, phi, agg }
    }

    /// Construct a query validated against `g` — the fallible counterpart
    /// of [`FannQuery::new`], returning every [`QueryError`] instead of
    /// panicking. All [`engine::Engine`] entry points go through this.
    pub fn checked(
        p: &'a [NodeId],
        q: &'a [NodeId],
        phi: f64,
        agg: Aggregate,
        g: &Graph,
    ) -> Result<Self, QueryError> {
        let query = FannQuery { p, q, phi, agg };
        query.validate(g)?;
        Ok(query)
    }

    /// `ceil(phi * |Q|)` — the size of the flexible subset `Q_phi`
    /// ([`flex_k`], FP-robust at `phi = j / |Q|` boundaries).
    pub fn subset_size(&self) -> usize {
        flex_k(self.phi, self.q.len())
    }

    /// Check the query against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), QueryError> {
        if self.p.is_empty() {
            return Err(QueryError::EmptyP);
        }
        if self.q.is_empty() {
            return Err(QueryError::EmptyQ);
        }
        if !(self.phi > 0.0 && self.phi <= 1.0) {
            return Err(QueryError::PhiOutOfRange);
        }
        let n = g.num_nodes() as NodeId;
        for &v in self.p.iter().chain(self.q.iter()) {
            if v >= n {
                return Err(QueryError::NodeOutOfRange(v));
            }
        }
        Ok(())
    }
}

/// An FANN_R answer `(p*, Q*_phi, d*)` (Definition 2). `subset` is sorted
/// by distance ascending and has exactly `subset_size()` members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FannAnswer {
    pub p_star: NodeId,
    pub subset: Vec<NodeId>,
    pub dist: Dist,
}

/// A `k`-FANN_R answer (Definition 3): the `k` data points with the
/// smallest flexible aggregate distances, ascending.
pub type KFannAnswer = Vec<(NodeId, Dist)>;

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    #[test]
    fn aggregate_of_sorted() {
        assert_eq!(Aggregate::Sum.of_sorted(&[1, 2, 3]), 6);
        assert_eq!(Aggregate::Max.of_sorted(&[1, 2, 3]), 3);
        assert_eq!(Aggregate::Sum.of_sorted(&[]), 0);
        assert_eq!(Aggregate::Max.of_sorted(&[]), 0);
        assert_eq!(Aggregate::Sum.of_sorted(&[u64::MAX, 1]), u64::MAX);
    }

    #[test]
    fn subset_size_rounds_up() {
        let p = [0u32];
        let q = [0u32, 1, 2, 3];
        assert_eq!(FannQuery::new(&p, &q, 0.5, Aggregate::Max).subset_size(), 2);
        assert_eq!(
            FannQuery::new(&p, &q, 0.26, Aggregate::Max).subset_size(),
            2
        );
        assert_eq!(
            FannQuery::new(&p, &q, 0.25, Aggregate::Max).subset_size(),
            1
        );
        assert_eq!(FannQuery::new(&p, &q, 1.0, Aggregate::Max).subset_size(), 4);
        assert_eq!(
            FannQuery::new(&p, &q, 0.01, Aggregate::Max).subset_size(),
            1
        );
    }

    #[test]
    fn flex_k_exact_at_all_rational_boundaries() {
        // phi = j/m must select exactly j, for every m up to 64 — the f64
        // product phi * m drifts above/below j on many of these pairs.
        for m in 1..=64usize {
            for j in 1..=m {
                let phi = j as f64 / m as f64;
                assert_eq!(flex_k(phi, m), j, "phi = {j}/{m}");
            }
        }
    }

    #[test]
    fn flex_k_just_above_boundary_rounds_up() {
        for m in 2..=64usize {
            for j in 1..m {
                let phi = (j as f64 / m as f64).next_up();
                assert_eq!(flex_k(phi, m), j + 1, "phi = {j}/{m} + ulp");
            }
        }
    }

    #[test]
    fn flex_k_monotone_in_phi() {
        for m in [1usize, 3, 7, 10, 33, 64] {
            let mut last = 0;
            for i in 1..=1000 {
                let k = flex_k(i as f64 / 1000.0, m);
                assert!(k >= last, "flex_k not monotone at phi={i}/1000, m={m}");
                last = k;
            }
            assert_eq!(last, m, "phi = 1.0 must select all of Q");
        }
    }

    #[test]
    fn flex_k_known_drift_case() {
        // (7.0/25.0) * 25.0 == 7.000000000000001 in f64; naive ceil gives 8.
        assert_eq!(flex_k(7.0 / 25.0, 25), 7);
        let p = [0u32];
        let q: Vec<u32> = (0..25).collect();
        let query = FannQuery::new(&p, &q, 7.0 / 25.0, Aggregate::Sum);
        assert_eq!(query.subset_size(), 7);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_phi_zero() {
        let p = [0u32];
        let q = [0u32];
        let _ = FannQuery::new(&p, &q, 0.0, Aggregate::Sum);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_phi_above_one() {
        let p = [0u32];
        let q = [0u32];
        let _ = FannQuery::new(&p, &q, 1.5, Aggregate::Sum);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        let p = [0u32, 5];
        let q = [1u32];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        assert_eq!(query.validate(&g), Err(QueryError::NodeOutOfRange(5)));
    }

    #[test]
    fn validate_ok() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        let p = [0u32];
        let q = [1u32];
        assert!(FannQuery::new(&p, &q, 1.0, Aggregate::Max)
            .validate(&g)
            .is_ok());
    }

    #[test]
    fn aggregate_display() {
        assert_eq!(Aggregate::Sum.to_string(), "sum");
        assert_eq!(Aggregate::Max.to_string(), "max");
    }
}
