//! FANN_R: flexible aggregate nearest neighbor queries in road networks.
//!
//! This crate is the paper's primary contribution (Yao et al., ICDE 2018):
//!
//! * [`FannQuery`] / [`FannAnswer`] — the query quintuple
//!   `(G, P, Q, phi, g)` and answer triple `(p*, Q*_phi, d*)`
//!   (Definitions 1 and 2).
//! * [`gphi`] — the flexible aggregate function `g_phi(p, Q)` with all the
//!   backends of Table I (INE, A\*, label/"PHL", G-tree kNN, and the IER²
//!   family over an R-tree on `Q`).
//! * [`algo`] — the query algorithms: the Dijkstra-based baseline `GD`
//!   (§III-A), `R-List` (§III-B), the IER-kNN framework (Algorithm 1),
//!   `Exact-max` (Algorithm 2), `APX-sum` (Algorithm 3), and the
//!   `k`-FANN_R extensions (§V).
//!
//! All exact algorithms agree on `d*` by construction; the integration and
//! property tests cross-validate them against a brute-force reference.
//! [`engine::Engine`] wraps the §VII decision rule (indexed vs index-free,
//! exact vs approximate) behind one `query` call.

pub mod algo;
pub mod engine;
pub mod gphi;

use roadnet::{Dist, Graph, NodeId};
use std::fmt;

/// The aggregate function `g`: either `sum` or `max` (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    Sum,
    Max,
}

impl Aggregate {
    /// Aggregate a slice of distances sorted in ascending order.
    /// Saturating for `Sum`, so `INF` stays `INF`.
    pub fn of_sorted(&self, sorted: &[Dist]) -> Dist {
        match self {
            Aggregate::Sum => sorted.iter().fold(0u64, |a, &d| a.saturating_add(d)),
            Aggregate::Max => sorted.last().copied().unwrap_or(0),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Sum => write!(f, "sum"),
            Aggregate::Max => write!(f, "max"),
        }
    }
}

/// An FANN_R query: data points `P`, query points `Q`, flexibility
/// `phi in (0, 1]`, and aggregate `g` (Definition 2). The graph is passed
/// to each algorithm separately so one query can run on many backends.
#[derive(Debug, Clone)]
pub struct FannQuery<'a> {
    pub p: &'a [NodeId],
    pub q: &'a [NodeId],
    pub phi: f64,
    pub agg: Aggregate,
}

/// Validation failures for [`FannQuery::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    EmptyP,
    EmptyQ,
    PhiOutOfRange,
    NodeOutOfRange(NodeId),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyP => write!(f, "P must be non-empty"),
            QueryError::EmptyQ => write!(f, "Q must be non-empty"),
            QueryError::PhiOutOfRange => write!(f, "phi must lie in (0, 1]"),
            QueryError::NodeOutOfRange(v) => write!(f, "node {v} is not in the graph"),
        }
    }
}

impl std::error::Error for QueryError {}

impl<'a> FannQuery<'a> {
    /// Construct a query.
    ///
    /// # Panics
    /// If `phi` is outside `(0, 1]` or either set is empty; use
    /// [`FannQuery::validate`] for fallible checking against a graph.
    pub fn new(p: &'a [NodeId], q: &'a [NodeId], phi: f64, agg: Aggregate) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi must lie in (0, 1], got {phi}");
        assert!(!p.is_empty(), "P must be non-empty");
        assert!(!q.is_empty(), "Q must be non-empty");
        FannQuery { p, q, phi, agg }
    }

    /// `ceil(phi * |Q|)` — the size of the flexible subset `Q_phi`.
    pub fn subset_size(&self) -> usize {
        ((self.phi * self.q.len() as f64).ceil() as usize).clamp(1, self.q.len())
    }

    /// Check the query against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), QueryError> {
        if self.p.is_empty() {
            return Err(QueryError::EmptyP);
        }
        if self.q.is_empty() {
            return Err(QueryError::EmptyQ);
        }
        if !(self.phi > 0.0 && self.phi <= 1.0) {
            return Err(QueryError::PhiOutOfRange);
        }
        let n = g.num_nodes() as NodeId;
        for &v in self.p.iter().chain(self.q.iter()) {
            if v >= n {
                return Err(QueryError::NodeOutOfRange(v));
            }
        }
        Ok(())
    }
}

/// An FANN_R answer `(p*, Q*_phi, d*)` (Definition 2). `subset` is sorted
/// by distance ascending and has exactly `subset_size()` members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FannAnswer {
    pub p_star: NodeId,
    pub subset: Vec<NodeId>,
    pub dist: Dist,
}

/// A `k`-FANN_R answer (Definition 3): the `k` data points with the
/// smallest flexible aggregate distances, ascending.
pub type KFannAnswer = Vec<(NodeId, Dist)>;

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    #[test]
    fn aggregate_of_sorted() {
        assert_eq!(Aggregate::Sum.of_sorted(&[1, 2, 3]), 6);
        assert_eq!(Aggregate::Max.of_sorted(&[1, 2, 3]), 3);
        assert_eq!(Aggregate::Sum.of_sorted(&[]), 0);
        assert_eq!(Aggregate::Max.of_sorted(&[]), 0);
        assert_eq!(Aggregate::Sum.of_sorted(&[u64::MAX, 1]), u64::MAX);
    }

    #[test]
    fn subset_size_rounds_up() {
        let p = [0u32];
        let q = [0u32, 1, 2, 3];
        assert_eq!(FannQuery::new(&p, &q, 0.5, Aggregate::Max).subset_size(), 2);
        assert_eq!(
            FannQuery::new(&p, &q, 0.26, Aggregate::Max).subset_size(),
            2
        );
        assert_eq!(
            FannQuery::new(&p, &q, 0.25, Aggregate::Max).subset_size(),
            1
        );
        assert_eq!(FannQuery::new(&p, &q, 1.0, Aggregate::Max).subset_size(), 4);
        assert_eq!(
            FannQuery::new(&p, &q, 0.01, Aggregate::Max).subset_size(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_phi_zero() {
        let p = [0u32];
        let q = [0u32];
        let _ = FannQuery::new(&p, &q, 0.0, Aggregate::Sum);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_phi_above_one() {
        let p = [0u32];
        let q = [0u32];
        let _ = FannQuery::new(&p, &q, 1.5, Aggregate::Sum);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        let p = [0u32, 5];
        let q = [1u32];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
        assert_eq!(query.validate(&g), Err(QueryError::NodeOutOfRange(5)));
    }

    #[test]
    fn validate_ok() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        let g = b.build();
        let p = [0u32];
        let q = [1u32];
        assert!(FannQuery::new(&p, &q, 1.0, Aggregate::Max)
            .validate(&g)
            .is_ok());
    }

    #[test]
    fn aggregate_display() {
        assert_eq!(Aggregate::Sum.to_string(), "sum");
        assert_eq!(Aggregate::Max.to_string(), "max");
    }
}
