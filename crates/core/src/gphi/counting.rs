//! Instrumentation decorator: count `g_phi` invocations.
//!
//! The paper's §III narrative is exactly about reducing the number of
//! `g_phi` calls: `GD` evaluates every `p ∈ P`, `R-List` stops at a
//! threshold, IER-kNN prunes whole R-tree subtrees. Wrapping a backend in
//! [`CountingPhi`] makes that measurable (see the `explain_gphi_calls`
//! harness binary).

use super::{GPhi, GPhiResult};
use crate::Aggregate;
use roadnet::NodeId;
use std::cell::Cell;

/// A transparent [`GPhi`] wrapper counting `eval` calls.
pub struct CountingPhi<B> {
    inner: B,
    calls: Cell<usize>,
}

impl<B: GPhi> CountingPhi<B> {
    pub fn new(inner: B) -> Self {
        CountingPhi {
            inner,
            calls: Cell::new(0),
        }
    }

    /// Number of `eval` calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.get()
    }

    /// Reset the counter (e.g. between algorithms).
    pub fn reset(&self) {
        self.calls.set(0);
    }
}

impl<B: GPhi> GPhi for CountingPhi<B> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        self.calls.set(self.calls.get() + 1);
        self.inner.eval(p, k, agg)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::ier::build_p_rtree;
    use crate::algo::{gd, ier_knn, r_list};
    use crate::gphi::ine::InePhi;
    use crate::FannQuery;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> roadnet::Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x * y) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn gd_calls_once_per_candidate() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).step_by(2).collect();
        let q = [0u32, 35];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Max);
        let counting = CountingPhi::new(InePhi::new(&g, &q));
        gd(&query, &counting).unwrap();
        assert_eq!(counting.calls(), p.len());
    }

    #[test]
    fn rlist_and_ier_call_fewer_times_than_gd() {
        // Q concentrated in one corner so pruning has something to prune.
        let g = grid(10, 10);
        let p: Vec<u32> = (0..100).collect();
        let q = [0u32, 1, 10, 11];
        let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
        let counting = CountingPhi::new(InePhi::new(&g, &q));

        gd(&query, &counting).unwrap();
        let gd_calls = counting.calls();
        counting.reset();

        r_list(&g, &query, &counting).unwrap();
        let rlist_calls = counting.calls();
        counting.reset();

        let rtree = build_p_rtree(&g, &p);
        ier_knn(&g, &query, &rtree, &counting).unwrap();
        let ier_calls = counting.calls();

        assert_eq!(gd_calls, 100);
        assert!(
            rlist_calls < gd_calls,
            "R-List did not prune: {rlist_calls}"
        );
        assert!(ier_calls < gd_calls, "IER-kNN did not prune: {ier_calls}");
    }

    #[test]
    fn reset_zeroes_the_counter() {
        let g = grid(3, 3);
        let q = [8u32];
        let counting = CountingPhi::new(InePhi::new(&g, &q));
        counting.eval(0, 1, Aggregate::Sum).unwrap();
        assert_eq!(counting.calls(), 1);
        counting.reset();
        assert_eq!(counting.calls(), 0);
        assert_eq!(counting.name(), "INE");
    }
}
