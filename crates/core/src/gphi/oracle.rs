//! Point-to-point shortest-path distance oracles.
//!
//! Every `g_phi` backend that is not expansion-based reduces to repeated
//! point-to-point distance queries; this module collects the oracles used
//! by the paper (Dijkstra \[12\], A\* \[13\], PHL \[16\] → hub labels, G-tree
//! \[11\]) behind one trait so [`super::scan::ScanPhi`] and
//! [`super::ier2::IerPhi`] are generic over them.

use crate::metrics::Recorder;
use ch_index::Ch;
use gtree::GTree;
use hublabel::HubLabels;
use roadnet::{
    astar_pair_recorded, astar_pair_with, bidirectional_pair, dijkstra_pair_recorded,
    AppliedUpdate, Dist, Graph, LowerBound, NodeId, QueryScratch,
};
use std::cell::RefCell;

/// An exact point-to-point network distance oracle.
pub trait DistanceOracle {
    /// Exact `delta(s, t)`; `None` when disconnected.
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist>;

    /// Name as used in figure legends.
    fn name(&self) -> &'static str;
}

/// A reference to an oracle is an oracle: lets a long-lived oracle (with
/// its recycled scratch) back many short-lived [`super::scan::ScanPhi`]s
/// across a query stream.
impl<O: DistanceOracle + ?Sized> DistanceOracle for &O {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        (**self).dist(s, t)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Plain Dijkstra with early termination. Holds a recycled
/// [`QueryScratch`], so repeated `dist` calls on one oracle are
/// allocation-free after the first. The `R` parameter is a [`Recorder`]
/// instrumentation hook; the default `()` records nothing and costs
/// nothing.
pub struct DijkstraOracle<'g, R: Recorder = ()> {
    graph: &'g Graph,
    scratch: RefCell<QueryScratch>,
    rec: R,
}

impl<'g> DijkstraOracle<'g> {
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_recorder(graph, ())
    }
}

impl<'g, R: Recorder> DijkstraOracle<'g, R> {
    /// [`DijkstraOracle::new`] with a live [`Recorder`] observing every
    /// settle/push/pop of each point-to-point search.
    pub fn with_recorder(graph: &'g Graph, rec: R) -> Self {
        DijkstraOracle {
            graph,
            scratch: RefCell::new(QueryScratch::new()),
            rec,
        }
    }
}

impl<R: Recorder> DistanceOracle for DijkstraOracle<'_, R> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        dijkstra_pair_recorded(self.graph, s, t, &mut self.scratch.borrow_mut(), self.rec)
    }
    fn name(&self) -> &'static str {
        "Dijkstra"
    }
}

/// A\* with an admissible Euclidean lower bound. Like [`DijkstraOracle`],
/// carries its own recycled [`QueryScratch`] and an optional [`Recorder`].
pub struct AStarOracle<'g, R: Recorder = ()> {
    graph: &'g Graph,
    lb: LowerBound,
    scratch: RefCell<QueryScratch>,
    rec: R,
}

impl<'g> AStarOracle<'g> {
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_lb(graph, LowerBound::for_graph(graph))
    }

    /// Reuse a precomputed lower bound (workload environments build it once).
    pub fn with_lb(graph: &'g Graph, lb: LowerBound) -> Self {
        Self::with_recorder(graph, lb, ())
    }
}

impl<'g, R: Recorder> AStarOracle<'g, R> {
    /// [`AStarOracle::with_lb`] with a live [`Recorder`] observing every
    /// settle/push/pop of each point-to-point search.
    pub fn with_recorder(graph: &'g Graph, lb: LowerBound, rec: R) -> Self {
        AStarOracle {
            graph,
            lb,
            scratch: RefCell::new(QueryScratch::new()),
            rec,
        }
    }
}

impl<R: Recorder> DistanceOracle for AStarOracle<'_, R> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        astar_pair_recorded(
            self.graph,
            &self.lb,
            s,
            t,
            &mut self.scratch.borrow_mut(),
            self.rec,
        )
    }
    fn name(&self) -> &'static str {
        "A*"
    }
}

/// Bidirectional Dijkstra (extension backend, DESIGN.md §7).
pub struct BidirOracle<'g> {
    pub graph: &'g Graph,
}

impl DistanceOracle for BidirOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        bidirectional_pair(self.graph, s, t)
    }
    fn name(&self) -> &'static str {
        "BiDijkstra"
    }
}

/// Hub-label oracle — the paper's "PHL" role (DESIGN.md §5).
pub struct LabelOracle<'l> {
    pub labels: &'l HubLabels,
}

impl DistanceOracle for LabelOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.labels.distance(s, t)
    }
    fn name(&self) -> &'static str {
        "PHL"
    }
}

/// Hub labels guarded by a set of weight updates the labels have not yet
/// absorbed — the staleness contract of the snapshot engine.
///
/// * No pending updates: plain label lookups (identical to
///   [`LabelOracle`]).
/// * Increase-only updates: the old label distance is trusted unless some
///   updated edge was *tight* on an old shortest path between the pair
///   (`d_old(s,u) + w_old + d_old(v,t) == d_old(s,t)` in either
///   orientation). Increases cannot create shorter paths, so an
///   unaffected pair's old shortest path survives with unchanged length;
///   affected pairs fall back to exact A\* on the current graph.
/// * Any decrease pending: always fall back to A\*. Decrease certificates
///   do not compose across multiple changed edges, so the oracle is
///   conservative — stale answers are *never* wrong, only slower.
///
/// The A\* fallback uses the snapshot lineage's lower bound, which stays
/// admissible across epochs because every published update is validated
/// against it.
pub struct GuardedLabelOracle<'s> {
    labels: &'s HubLabels,
    graph: &'s Graph,
    updates: &'s [AppliedUpdate],
    increase_only: bool,
    lb: LowerBound,
    scratch: RefCell<QueryScratch>,
}

impl<'s> GuardedLabelOracle<'s> {
    pub fn new(
        labels: &'s HubLabels,
        graph: &'s Graph,
        updates: &'s [AppliedUpdate],
        increase_only: bool,
        lb: LowerBound,
    ) -> Self {
        GuardedLabelOracle {
            labels,
            graph,
            updates,
            increase_only,
            lb,
            scratch: RefCell::new(QueryScratch::new()),
        }
    }
}

impl DistanceOracle for GuardedLabelOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        if self.updates.is_empty() {
            return self.labels.distance(s, t);
        }
        if self.increase_only {
            // Weight increases never change connectivity, so a `None`
            // here is a genuine disconnection in every epoch.
            let d_old = self.labels.distance(s, t)?;
            let tight = |a: NodeId, b: NodeId, w_old: Dist| match (
                self.labels.distance(s, a),
                self.labels.distance(b, t),
            ) {
                (Some(da), Some(db)) => da.saturating_add(w_old).saturating_add(db) == d_old,
                _ => false,
            };
            let affected = self.updates.iter().any(|up| {
                tight(up.u, up.v, up.w_old as Dist) || tight(up.v, up.u, up.w_old as Dist)
            });
            if !affected {
                return Some(d_old);
            }
        }
        astar_pair_with(self.graph, &self.lb, s, t, &mut self.scratch.borrow_mut())
    }

    // Same role as [`LabelOracle`] in figure legends and IER stats: the
    // fallback is an internal freshness detail, not a different method.
    fn name(&self) -> &'static str {
        "PHL"
    }
}

/// G-tree assembly-based shortest-path distance oracle.
pub struct GTreeOracle<'t, 'g> {
    pub tree: &'t GTree,
    pub graph: &'g Graph,
}

impl DistanceOracle for GTreeOracle<'_, '_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.tree.dist(self.graph, s, t)
    }
    fn name(&self) -> &'static str {
        "GTree"
    }
}

/// Contraction-hierarchy oracle (extension backend, DESIGN.md §7):
/// bidirectional upward search over the shortcut-augmented graph.
pub struct ChOracle<'c> {
    pub ch: &'c Ch,
}

impl DistanceOracle for ChOracle<'_> {
    fn dist(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.ch.distance(s, t)
    }
    fn name(&self) -> &'static str {
        "CH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{dijkstra_pair, GraphBuilder};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        b.add_node(1.0, 0.0);
        b.add_node(0.0, 1.0);
        b.add_node(1.0, 1.0);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 2);
        b.add_edge(1, 3, 2);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn all_oracles_agree() {
        let g = diamond();
        let hl = HubLabels::build(&g);
        let gt = GTree::build(&g);
        let ch = Ch::build(&g);
        let oracles: Vec<Box<dyn DistanceOracle + '_>> = vec![
            Box::new(DijkstraOracle::new(&g)),
            Box::new(AStarOracle::new(&g)),
            Box::new(BidirOracle { graph: &g }),
            Box::new(LabelOracle { labels: &hl }),
            Box::new(GTreeOracle {
                tree: &gt,
                graph: &g,
            }),
            Box::new(ChOracle { ch: &ch }),
        ];
        for s in 0..4 {
            for t in 0..4 {
                let expect = dijkstra_pair(&g, s, t);
                for o in &oracles {
                    assert_eq!(o.dist(s, t), expect, "{} wrong for {s}->{t}", o.name());
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let g = diamond();
        let hl = HubLabels::build(&g);
        let gt = GTree::build(&g);
        let ch = Ch::build(&g);
        let names = [
            DijkstraOracle::new(&g).name(),
            AStarOracle::new(&g).name(),
            BidirOracle { graph: &g }.name(),
            LabelOracle { labels: &hl }.name(),
            GTreeOracle {
                tree: &gt,
                graph: &g,
            }
            .name(),
            ChOracle { ch: &ch }.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn guarded_oracle_is_exact_across_the_staleness_window() {
        let g = diamond();
        let hl = HubLabels::build(&g);
        // No pending updates: identical to plain label lookups.
        let fresh = GuardedLabelOracle::new(&hl, &g, &[], true, LowerBound::for_graph(&g));
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(fresh.dist(s, t), dijkstra_pair(&g, s, t));
            }
        }
        // An increase the labels have not absorbed: affected pairs fall
        // back, unaffected pairs reuse labels — all answers exact on the
        // *patched* graph.
        let patched = g.with_patched_weights(&[(0, 1, 5)]).unwrap();
        let ups = [AppliedUpdate {
            u: 0,
            v: 1,
            w_old: 1,
            w_new: 5,
        }];
        let inc = GuardedLabelOracle::new(&hl, &patched, &ups, true, LowerBound::for_graph(&g));
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(inc.dist(s, t), dijkstra_pair(&patched, s, t), "{s}->{t}");
            }
        }
        // A decrease: certificates are off, everything falls back to A*,
        // still exact.
        let patched = g.with_patched_weights(&[(1, 3, 1)]).unwrap();
        let ups = [AppliedUpdate {
            u: 1,
            v: 3,
            w_old: 2,
            w_new: 1,
        }];
        let dec = GuardedLabelOracle::new(&hl, &patched, &ups, false, LowerBound::for_graph(&g));
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(dec.dist(s, t), dijkstra_pair(&patched, s, t), "{s}->{t}");
            }
        }
    }
}
