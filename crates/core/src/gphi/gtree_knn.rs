//! `g_phi` via G-tree occurrence-list kNN (the "GTree" row of Table I).
//!
//! The occurrence list (`Occ`) over `Q` is built once per query set; each
//! `g_phi(p, Q)` evaluation is then a single G-tree kNN search with
//! `k = phi|Q|` (§III-C; \[11\], \[21\]).

use super::{GPhi, GPhiResult};
use crate::metrics::Recorder;
use crate::Aggregate;
use gtree::{GTree, Occurrence};
use roadnet::{Graph, NodeId};

/// G-tree kNN backend: captures the tree, graph, and `Occ` over `Q`.
/// The `R` parameter is a [`Recorder`] instrumentation hook; the default
/// `()` records nothing and costs nothing.
pub struct GTreeKnnPhi<'t, 'g, R: Recorder = ()> {
    tree: &'t GTree,
    graph: &'g Graph,
    occ: Occurrence,
    num_query: usize,
    rec: R,
}

impl<'t, 'g> GTreeKnnPhi<'t, 'g> {
    pub fn new(tree: &'t GTree, graph: &'g Graph, q: &[NodeId]) -> Self {
        Self::with_recorder(tree, graph, q, ())
    }
}

impl<'t, 'g, R: Recorder> GTreeKnnPhi<'t, 'g, R> {
    /// [`GTreeKnnPhi::new`] with a live [`Recorder`] observing every
    /// `g_phi` evaluation (each one G-tree kNN search).
    pub fn with_recorder(tree: &'t GTree, graph: &'g Graph, q: &[NodeId], rec: R) -> Self {
        GTreeKnnPhi {
            tree,
            graph,
            occ: Occurrence::build(tree, q),
            num_query: q.len(),
            rec,
        }
    }

    /// The occurrence structure (exposed for index-cost experiments).
    pub fn occurrence(&self) -> &Occurrence {
        &self.occ
    }
}

impl<R: Recorder> GPhi for GTreeKnnPhi<'_, '_, R> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        assert!(k >= 1 && k <= self.num_query, "invalid subset size {k}");
        self.rec.gphi_eval();
        // One kNN search = one oracle-style index probe.
        self.rec.oracle_call();
        let knn = self.tree.knn(self.graph, &self.occ, p, k);
        if knn.len() < k {
            return None;
        }
        Some(GPhiResult::from_knn(knn, agg))
    }

    fn name(&self) -> &'static str {
        "GTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gphi::ine::InePhi;
    use gtree::GTreeParams;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1 + (x * 2 + y) % 3);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 1 + (x + y * 2) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_ine() {
        let g = grid(7, 6);
        let tree = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: 6,
            },
        );
        let q: Vec<u32> = vec![1, 9, 17, 25, 33, 41];
        let gt = GTreeKnnPhi::new(&tree, &g, &q);
        let ine = InePhi::new(&g, &q);
        for p in 0..42u32 {
            for k in [1usize, 3, 6] {
                for agg in [Aggregate::Sum, Aggregate::Max] {
                    assert_eq!(
                        gt.eval(p, k, agg).unwrap().dist,
                        ine.eval(p, k, agg).unwrap().dist,
                        "mismatch p={p} k={k} {agg}"
                    );
                }
            }
        }
    }

    #[test]
    fn none_when_too_few_reachable() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let tree = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 2,
            },
        );
        let q = [1u32, 3];
        let gt = GTreeKnnPhi::new(&tree, &g, &q);
        assert!(gt.eval(0, 2, Aggregate::Sum).is_none());
        assert_eq!(gt.eval(0, 1, Aggregate::Sum).unwrap().dist, 1);
    }
}
