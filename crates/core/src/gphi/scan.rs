//! `g_phi` by scanning `Q` with a point-to-point oracle.
//!
//! The "A\*" and "PHL" rows of Table I: compute `delta(p, q)` for every
//! `q in Q` with the oracle and keep the `k` smallest. Cheap per-distance
//! oracles (hub labels) make this the fastest backend; expensive ones (A\*)
//! make it the slowest — exactly the spread Fig. 3 shows.

use super::oracle::DistanceOracle;
use super::{select_k_smallest, GPhi, GPhiResult};
use crate::metrics::Recorder;
use crate::Aggregate;
use roadnet::{NodeId, INF};

/// Oracle-scanning backend over a fixed query set. The `R` parameter is a
/// [`Recorder`] instrumentation hook; the default `()` records nothing and
/// costs nothing.
pub struct ScanPhi<'q, O, R: Recorder = ()> {
    oracle: O,
    q: &'q [NodeId],
    rec: R,
    /// Whether the oracle is the hub-label ("PHL") backend, so oracle
    /// calls also count as label lookups.
    is_label: bool,
}

impl<'q, O: DistanceOracle> ScanPhi<'q, O> {
    pub fn new(oracle: O, q: &'q [NodeId]) -> Self {
        Self::with_recorder(oracle, q, ())
    }
}

impl<'q, O: DistanceOracle, R: Recorder> ScanPhi<'q, O, R> {
    /// [`ScanPhi::new`] with a live [`Recorder`] observing every oracle
    /// probe and `g_phi` evaluation.
    pub fn with_recorder(oracle: O, q: &'q [NodeId], rec: R) -> Self {
        let is_label = oracle.name() == "PHL";
        ScanPhi {
            oracle,
            q,
            rec,
            is_label,
        }
    }
}

impl<O: DistanceOracle, R: Recorder> GPhi for ScanPhi<'_, O, R> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        assert!(k >= 1 && k <= self.q.len(), "invalid subset size {k}");
        self.rec.gphi_eval();
        let dists = self.q.iter().map(|&q| {
            self.rec.oracle_call();
            if self.is_label {
                self.rec.label_lookup();
            }
            (q, self.oracle.dist(p, q).unwrap_or(INF))
        });
        let knn = select_k_smallest(dists, k)?;
        Some(GPhiResult::from_knn(knn, agg))
    }

    fn name(&self) -> &'static str {
        self.oracle.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gphi::ine::InePhi;
    use crate::gphi::oracle::{AStarOracle, DijkstraOracle, LabelOracle};
    use hublabel::HubLabels;
    use roadnet::{Graph, GraphBuilder};

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 3.0, y as f64 * 3.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 3 + (x + y) % 2);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 3 + x % 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn scan_matches_ine_for_all_backends() {
        let g = grid(5, 5);
        let q: Vec<u32> = vec![0, 6, 12, 18, 24, 3, 21];
        let hl = HubLabels::build(&g);
        let ine = InePhi::new(&g, &q);
        let scan_dij = ScanPhi::new(DijkstraOracle::new(&g), &q);
        let scan_astar = ScanPhi::new(AStarOracle::new(&g), &q);
        let scan_label = ScanPhi::new(LabelOracle { labels: &hl }, &q);
        for p in 0..25u32 {
            for k in [1usize, 3, 7] {
                for agg in [Aggregate::Sum, Aggregate::Max] {
                    let want = ine.eval(p, k, agg).unwrap().dist;
                    assert_eq!(scan_dij.eval(p, k, agg).unwrap().dist, want);
                    assert_eq!(scan_astar.eval(p, k, agg).unwrap().dist, want);
                    assert_eq!(scan_label.eval(p, k, agg).unwrap().dist, want);
                }
            }
        }
    }

    #[test]
    fn insufficient_reachable_is_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let q = [1u32, 3];
        let scan = ScanPhi::new(DijkstraOracle::new(&g), &q);
        assert!(scan.eval(0, 2, Aggregate::Sum).is_none());
        assert_eq!(scan.eval(0, 1, Aggregate::Sum).unwrap().dist, 1);
    }

    #[test]
    fn name_comes_from_oracle() {
        let g = grid(2, 2);
        let q = [0u32];
        let scan = ScanPhi::new(DijkstraOracle::new(&g), &q);
        assert_eq!(scan.name(), "Dijkstra");
    }
}
