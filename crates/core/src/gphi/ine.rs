//! `g_phi` via incremental network expansion (INE).
//!
//! As observed in §III-C ("Revisitation of `g_phi(p, Q)`"), evaluating
//! `g_phi(p, Q)` *is* an INE/kNN query with `p` as source and `Q` as the
//! object set: expand Dijkstra from `p` and stop as soon as `k = phi|Q|`
//! query points are settled. Index-free — the backend of the paper's
//! `Baseline` and the default `g_phi` of the index-free experiments
//! (Fig. 4b).

use super::{GPhi, GPhiResult};
use crate::Aggregate;
use roadnet::multisource::membership;
use roadnet::{DijkstraIter, Graph, NodeId};

/// INE backend: captures the graph and a membership mask over `Q`.
pub struct InePhi<'g> {
    graph: &'g Graph,
    is_query: Vec<bool>,
    num_query: usize,
}

impl<'g> InePhi<'g> {
    pub fn new(graph: &'g Graph, q: &[NodeId]) -> Self {
        InePhi {
            graph,
            is_query: membership(graph.num_nodes(), q),
            num_query: q.len(),
        }
    }
}

impl GPhi for InePhi<'_> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        assert!(k >= 1 && k <= self.num_query, "invalid subset size {k}");
        let mut subset = Vec::with_capacity(k);
        for (v, d) in DijkstraIter::new(self.graph, p) {
            if self.is_query[v as usize] {
                subset.push((v, d));
                if subset.len() == k {
                    return Some(GPhiResult::from_knn(subset, agg));
                }
            }
        }
        None // expansion exhausted before finding k query points
    }

    fn name(&self) -> &'static str {
        "INE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    /// Path 0-1-2-3-4, unit weights.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..4 {
            b.add_edge(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn finds_k_nearest_query_points() {
        let g = path5();
        let q = [0u32, 3, 4];
        let phi = InePhi::new(&g, &q);
        // From node 2: distances to Q are {0: 2, 3: 1, 4: 2}.
        let r = phi.eval(2, 2, Aggregate::Sum).unwrap();
        assert_eq!(r.dist, 3); // 1 + 2
        assert_eq!(r.subset[0], (3, 1));
        assert_eq!(r.subset[1].1, 2); // either node 0 or 4 at distance 2
        let r = phi.eval(2, 2, Aggregate::Max).unwrap();
        assert_eq!(r.dist, 2);
    }

    #[test]
    fn full_subset_when_k_equals_q() {
        let g = path5();
        let q = [0u32, 4];
        let phi = InePhi::new(&g, &q);
        let r = phi.eval(1, 2, Aggregate::Sum).unwrap();
        assert_eq!(r.dist, 1 + 3);
    }

    #[test]
    fn p_on_query_point_counts_at_zero() {
        let g = path5();
        let q = [2u32, 4];
        let phi = InePhi::new(&g, &q);
        let r = phi.eval(2, 1, Aggregate::Max).unwrap();
        assert_eq!(r.dist, 0);
        assert_eq!(r.subset, vec![(2, 0)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        let g = b.build();
        let q = [1u32, 2];
        let phi = InePhi::new(&g, &q);
        assert!(phi.eval(0, 2, Aggregate::Sum).is_none());
        assert!(phi.eval(0, 1, Aggregate::Sum).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid subset size")]
    fn rejects_k_zero() {
        let g = path5();
        let q = [0u32];
        let _ = InePhi::new(&g, &q).eval(1, 0, Aggregate::Sum);
    }
}
