//! `g_phi` via incremental network expansion (INE).
//!
//! As observed in §III-C ("Revisitation of `g_phi(p, Q)`"), evaluating
//! `g_phi(p, Q)` *is* an INE/kNN query with `p` as source and `Q` as the
//! object set: expand Dijkstra from `p` and stop as soon as `k = phi|Q|`
//! query points are settled. Index-free — the backend of the paper's
//! `Baseline` and the default `g_phi` of the index-free experiments
//! (Fig. 4b).

use super::{GPhi, GPhiResult, ReusableGPhi};
use crate::metrics::Recorder;
use crate::Aggregate;
use roadnet::cancel::CancelCheck;
use roadnet::multisource::membership;
use roadnet::{DijkstraIter, Graph, NodeId, QueryScratch};
use std::cell::RefCell;

/// INE backend: captures the graph and a membership mask over `Q`.
///
/// The backend owns a recycled [`QueryScratch`], so successive `eval` calls
/// (GD probes many candidate points per query) are allocation-free, and
/// [`ReusableGPhi::rebind`] repoints it at a new `Q` in `O(|Q|)` — the
/// long-lived per-worker backend of the batch engine. The `R` parameter is
/// a [`Recorder`] instrumentation hook; `C` is a [`CancelCheck`]
/// cancellation hook. The default `()` for both records/cancels nothing
/// and costs nothing.
///
/// The backend holds its own [`Graph`] handle (cheap: a CSR graph clone
/// shares its arrays), so it has no lifetime tie to the caller — workers
/// pin a snapshot's graph into a long-lived `InePhi` and keep it across a
/// whole query stream.
///
/// A cancelled `eval` returns `None`, indistinguishable here from an
/// exhausted expansion — cancellable drivers re-check the token exactly
/// before trusting any `None`.
pub struct InePhi<R: Recorder = (), C: CancelCheck = ()> {
    graph: Graph,
    is_query: Vec<bool>,
    q_nodes: Vec<NodeId>,
    scratch: RefCell<QueryScratch>,
    rec: R,
    cancel: C,
}

impl InePhi {
    pub fn new(graph: &Graph, q: &[NodeId]) -> Self {
        Self::with_recorder(graph, q, ())
    }
}

impl<R: Recorder> InePhi<R> {
    /// [`InePhi::new`] with a live [`Recorder`] observing every expansion
    /// step and `g_phi` evaluation.
    pub fn with_recorder(graph: &Graph, q: &[NodeId], rec: R) -> Self {
        Self::with_recorder_cancel(graph, q, rec, ())
    }
}

impl<R: Recorder, C: CancelCheck> InePhi<R, C> {
    /// [`InePhi::with_recorder`] with a live [`CancelCheck`] polled by
    /// every expansion; the `()` check makes this identical to the
    /// uncancellable path.
    pub fn with_recorder_cancel(graph: &Graph, q: &[NodeId], rec: R, cancel: C) -> Self {
        InePhi {
            graph: graph.clone(),
            is_query: membership(graph.num_nodes(), q),
            q_nodes: q.to_vec(),
            scratch: RefCell::new(QueryScratch::new()),
            rec,
            cancel,
        }
    }
}

impl<R: Recorder, C: CancelCheck> GPhi for InePhi<R, C> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        assert!(k >= 1 && k <= self.q_nodes.len(), "invalid subset size {k}");
        self.rec.gphi_eval();
        let mut subset = Vec::with_capacity(k);
        let mut it =
            DijkstraIter::cancellable(&self.graph, p, self.scratch.take(), self.rec, self.cancel);
        for (v, d) in it.by_ref() {
            if self.is_query[v as usize] {
                subset.push((v, d));
                if subset.len() == k {
                    break;
                }
            }
        }
        // Hand the buffers back for the next eval before returning.
        self.scratch.replace(it.into_scratch());
        if subset.len() == k {
            Some(GPhiResult::from_knn(subset, agg))
        } else {
            None // expansion exhausted before finding k query points
        }
    }

    fn name(&self) -> &'static str {
        "INE"
    }
}

impl<R: Recorder, C: CancelCheck> ReusableGPhi for InePhi<R, C> {
    fn rebind(&mut self, q: &[NodeId]) {
        for &old in &self.q_nodes {
            self.is_query[old as usize] = false;
        }
        let n = self.graph.num_nodes();
        for &p in q {
            assert!((p as usize) < n, "query node {p} out of range (n = {n})");
            self.is_query[p as usize] = true;
        }
        self.q_nodes.clear();
        self.q_nodes.extend_from_slice(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::GraphBuilder;

    /// Path 0-1-2-3-4, unit weights.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..4 {
            b.add_edge(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn finds_k_nearest_query_points() {
        let g = path5();
        let q = [0u32, 3, 4];
        let phi = InePhi::new(&g, &q);
        // From node 2: distances to Q are {0: 2, 3: 1, 4: 2}.
        let r = phi.eval(2, 2, Aggregate::Sum).unwrap();
        assert_eq!(r.dist, 3); // 1 + 2
        assert_eq!(r.subset[0], (3, 1));
        assert_eq!(r.subset[1].1, 2); // either node 0 or 4 at distance 2
        let r = phi.eval(2, 2, Aggregate::Max).unwrap();
        assert_eq!(r.dist, 2);
    }

    #[test]
    fn full_subset_when_k_equals_q() {
        let g = path5();
        let q = [0u32, 4];
        let phi = InePhi::new(&g, &q);
        let r = phi.eval(1, 2, Aggregate::Sum).unwrap();
        assert_eq!(r.dist, 1 + 3);
    }

    #[test]
    fn p_on_query_point_counts_at_zero() {
        let g = path5();
        let q = [2u32, 4];
        let phi = InePhi::new(&g, &q);
        let r = phi.eval(2, 1, Aggregate::Max).unwrap();
        assert_eq!(r.dist, 0);
        assert_eq!(r.subset, vec![(2, 0)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 1);
        let g = b.build();
        let q = [1u32, 2];
        let phi = InePhi::new(&g, &q);
        assert!(phi.eval(0, 2, Aggregate::Sum).is_none());
        assert!(phi.eval(0, 1, Aggregate::Sum).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid subset size")]
    fn rejects_k_zero() {
        let g = path5();
        let q = [0u32];
        let _ = InePhi::new(&g, &q).eval(1, 0, Aggregate::Sum);
    }

    #[test]
    fn rebind_matches_fresh_backend() {
        let g = path5();
        let mut phi = InePhi::new(&g, &[0u32, 3, 4]);
        phi.rebind(&[1, 2]);
        let fresh = InePhi::new(&g, &[1u32, 2]);
        for p in 0..5 {
            for k in 1..=2 {
                assert_eq!(
                    phi.eval(p, k, Aggregate::Sum),
                    fresh.eval(p, k, Aggregate::Sum),
                    "mismatch at p={p}, k={k}"
                );
            }
        }
    }

    #[test]
    fn repeated_evals_reuse_scratch() {
        let g = path5();
        let q = [0u32, 4];
        let phi = InePhi::new(&g, &q);
        // Same eval twice must be identical (scratch fully reset between).
        let a = phi.eval(2, 2, Aggregate::Sum);
        let b = phi.eval(2, 2, Aggregate::Sum);
        assert_eq!(a, b);
    }
}
