//! `g_phi` via Incremental Euclidean Restriction over an R-tree on `Q`.
//!
//! The `IER²` rows of Table I (`IER-A*`, `IER-GTree`, `IER-PHL` *as
//! `g_phi` methods*): query points are pulled from an R-tree on `Q` in
//! increasing Euclidean distance from `p`; each is resolved to its exact
//! network distance by a [`DistanceOracle`]; the scan stops when the scaled
//! Euclidean bound of the next candidate cannot beat the current k-th best
//! network distance. Exact, because the scaled Euclidean distance never
//! exceeds the network distance ([`LowerBound`]).

use super::oracle::DistanceOracle;
use super::{GPhi, GPhiResult};
use crate::metrics::Recorder;
use crate::Aggregate;
use roadnet::{Dist, Graph, LowerBound, NodeId, INF};
use spatial_rtree::{Pt, RTree};
use std::collections::BinaryHeap;

/// IER backend over a fixed query set, generic in the distance oracle.
/// The `R` parameter is a [`Recorder`] instrumentation hook; the default
/// `()` records nothing and costs nothing.
pub struct IerPhi<'g, O, R: Recorder = ()> {
    oracle: O,
    graph: &'g Graph,
    rtree: RTree<NodeId>,
    lb: LowerBound,
    num_query: usize,
    name: &'static str,
    rec: R,
    is_label: bool,
}

impl<'g, O: DistanceOracle> IerPhi<'g, O> {
    pub fn new(graph: &'g Graph, oracle: O, q: &[NodeId]) -> Self {
        Self::with_recorder(graph, oracle, q, ())
    }
}

impl<'g, O: DistanceOracle, R: Recorder> IerPhi<'g, O, R> {
    /// [`IerPhi::new`] with a live [`Recorder`] observing every R-tree node
    /// access, oracle probe, and `g_phi` evaluation.
    pub fn with_recorder(graph: &'g Graph, oracle: O, q: &[NodeId], rec: R) -> Self {
        let items: Vec<(Pt, NodeId)> = q
            .iter()
            .map(|&v| {
                let c = graph.coord(v);
                (Pt::new(c.x, c.y), v)
            })
            .collect();
        let name: &'static str = match oracle.name() {
            "A*" => "IER-A*",
            "PHL" => "IER-PHL",
            "GTree" => "IER-GTree",
            "Dijkstra" => "IER-Dijkstra",
            "BiDijkstra" => "IER-BiDijkstra",
            _ => "IER-?",
        };
        let is_label = oracle.name() == "PHL";
        IerPhi {
            oracle,
            graph,
            rtree: RTree::bulk_load(items),
            lb: LowerBound::for_graph(graph),
            num_query: q.len(),
            name,
            rec,
            is_label,
        }
    }
}

impl<O: DistanceOracle, R: Recorder> GPhi for IerPhi<'_, O, R> {
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult> {
        assert!(k >= 1 && k <= self.num_query, "invalid subset size {k}");
        self.rec.gphi_eval();
        let c = self.graph.coord(p);
        let mut best: BinaryHeap<(Dist, NodeId)> = BinaryHeap::new();
        let mut it = self.rtree.nearest_iter(Pt::new(c.x, c.y));
        // `while let` (not `for`) keeps `it` borrowable after the early
        // break so the node-access count can be read out.
        #[allow(clippy::while_let_on_iterator)]
        while let Some((euclid, &qnode)) = it.next() {
            let bound = self.lb.bound_euclid(euclid);
            if best.len() == k {
                let worst = best.peek().expect("heap full").0;
                if bound >= worst {
                    break; // no later candidate can improve the k-th best
                }
            }
            self.rec.oracle_call();
            if self.is_label {
                self.rec.label_lookup();
            }
            let d = self.oracle.dist(p, qnode).unwrap_or(INF);
            if d == INF {
                continue;
            }
            if best.len() < k {
                best.push((d, qnode));
            } else if let Some(&(worst, _)) = best.peek() {
                if d < worst {
                    best.pop();
                    best.push((d, qnode));
                }
            }
        }
        self.rec.rtree_nodes(it.nodes_visited());
        if best.len() < k {
            return None;
        }
        let mut knn: Vec<(NodeId, Dist)> = best.into_iter().map(|(d, n)| (n, d)).collect();
        knn.sort_by_key(|&(n, d)| (d, n));
        Some(GPhiResult::from_knn(knn, agg))
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gphi::ine::InePhi;
    use crate::gphi::oracle::{AStarOracle, DijkstraOracle, GTreeOracle, LabelOracle};
    use gtree::{GTree, GTreeParams};
    use hublabel::HubLabels;
    use roadnet::GraphBuilder;

    /// Grid where edge weights equal Euclidean lengths (scale = 1).
    fn metric_grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x + y) % 4);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x * y) % 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn ier_matches_ine_for_all_oracles() {
        let g = metric_grid(6, 5);
        let q: Vec<u32> = vec![0, 7, 14, 21, 28, 4, 25];
        let hl = HubLabels::build(&g);
        let gt = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 2,
                leaf_cap: 5,
            },
        );
        let ine = InePhi::new(&g, &q);
        let backends: Vec<Box<dyn GPhi + '_>> = vec![
            Box::new(IerPhi::new(&g, DijkstraOracle::new(&g), &q)),
            Box::new(IerPhi::new(&g, AStarOracle::new(&g), &q)),
            Box::new(IerPhi::new(&g, LabelOracle { labels: &hl }, &q)),
            Box::new(IerPhi::new(
                &g,
                GTreeOracle {
                    tree: &gt,
                    graph: &g,
                },
                &q,
            )),
        ];
        for p in 0..30u32 {
            for k in [1usize, 4, 7] {
                for agg in [Aggregate::Sum, Aggregate::Max] {
                    let want = ine.eval(p, k, agg).unwrap().dist;
                    for b in &backends {
                        assert_eq!(
                            b.eval(p, k, agg).unwrap().dist,
                            want,
                            "{} wrong at p={p} k={k} {agg}",
                            b.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn names_reflect_oracle() {
        let g = metric_grid(2, 2);
        let q = [0u32];
        assert_eq!(IerPhi::new(&g, AStarOracle::new(&g), &q).name(), "IER-A*");
        assert_eq!(
            IerPhi::new(&g, DijkstraOracle::new(&g), &q).name(),
            "IER-Dijkstra"
        );
    }

    #[test]
    fn disconnected_insufficient_is_none() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64 * 10.0, 0.0);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(2, 3, 10);
        let g = b.build();
        let q = [1u32, 3];
        let ier = IerPhi::new(&g, DijkstraOracle::new(&g), &q);
        assert!(ier.eval(0, 2, Aggregate::Sum).is_none());
        assert_eq!(ier.eval(0, 1, Aggregate::Sum).unwrap().dist, 10);
    }
}
