//! The flexible aggregate function `g_phi(p, Q)` (Definition 1) and its
//! backends (Table I).
//!
//! Key fact exploited throughout (§III-C, "Revisitation of `g_phi(p, Q)`"):
//! for both `sum` and `max`, the optimal flexible subset for a fixed `p` is
//! exactly the `k = ceil(phi |Q|)` query points nearest to `p` in network
//! distance — so every backend is a kNN routine from `p` over `Q`, followed
//! by aggregation. Backends differ in how they find those k neighbors:
//!
//! | Table I name | type | construction |
//! |---|---|---|
//! | INE        | [`ine::InePhi`]           | incremental network expansion |
//! | A\*        | [`scan::ScanPhi`] over [`oracle::AStarOracle`] | per-pair A\* |
//! | PHL        | [`scan::ScanPhi`] over [`oracle::LabelOracle`] | hub-label lookups |
//! | GTree      | [`gtree_knn::GTreeKnnPhi`] | occurrence-list kNN |
//! | IER-A\*    | [`ier2::IerPhi`] over [`oracle::AStarOracle`] | R-tree on `Q` + A\* |
//! | IER-GTree  | [`ier2::IerPhi`] over [`oracle::GTreeOracle`] | R-tree on `Q` + G-tree |
//! | IER-PHL    | [`ier2::IerPhi`] over [`oracle::LabelOracle`] | R-tree on `Q` + labels |
//!
//! A backend is constructed once per query (capturing the graph, `Q`, and
//! any index) and then evaluated for many candidate points `p`.
//! [`counting::CountingPhi`] wraps any backend to count invocations — the
//! quantity the paper's pruning arguments (§III) are about.

pub mod counting;
pub mod gtree_knn;
pub mod ier2;
pub mod ine;
pub mod oracle;
pub mod scan;

use crate::Aggregate;
use roadnet::{Dist, NodeId};

/// Result of `g_phi(p, Q)`: the flexible aggregate distance `d^p` and the
/// optimal flexible subset `Q^p_phi` with per-member distances, sorted
/// ascending by distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GPhiResult {
    pub dist: Dist,
    pub subset: Vec<(NodeId, Dist)>,
}

impl GPhiResult {
    /// Build from the k nearest query points (ascending by distance).
    pub fn from_knn(knn: Vec<(NodeId, Dist)>, agg: Aggregate) -> Self {
        let dists: Vec<Dist> = knn.iter().map(|&(_, d)| d).collect();
        GPhiResult {
            dist: agg.of_sorted(&dists),
            subset: knn,
        }
    }

    /// Member node ids only.
    pub fn subset_nodes(&self) -> Vec<NodeId> {
        self.subset.iter().map(|&(n, _)| n).collect()
    }
}

/// A backend for the flexible aggregate function.
///
/// `eval` returns `None` when fewer than `k` query points are reachable
/// from `p` (the flexible subset cannot be formed).
pub trait GPhi {
    /// Evaluate `g_phi(p, Q)` with subset size `k` and aggregate `agg`.
    fn eval(&self, p: NodeId, k: usize, agg: Aggregate) -> Option<GPhiResult>;

    /// Short backend name as used in the paper's figures ("INE", "PHL", ...).
    fn name(&self) -> &'static str;
}

/// A backend that can be *repointed* at a new query set without rebuilding
/// its internal buffers — the contract the batch engine relies on to keep
/// one long-lived backend per worker across a whole query stream.
///
/// After `rebind(q)`, the backend must answer exactly as a freshly
/// constructed backend over `q` would (the scratch-reuse soundness property
/// checked in `tests/properties.rs`).
pub trait ReusableGPhi: GPhi {
    /// Repoint at a new query set `Q`. `O(|Q_old| + |Q_new|)`; no
    /// graph-sized work.
    fn rebind(&mut self, q: &[NodeId]);
}

/// Select the `k` smallest `(node, dist)` pairs from an unsorted iterator,
/// ascending. Returns `None` if fewer than `k` finite entries exist.
pub(crate) fn select_k_smallest<I>(iter: I, k: usize) -> Option<Vec<(NodeId, Dist)>>
where
    I: IntoIterator<Item = (NodeId, Dist)>,
{
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Dist, NodeId)> = BinaryHeap::new();
    for (n, d) in iter {
        if d == roadnet::INF {
            continue;
        }
        if heap.len() < k {
            heap.push((d, n));
        } else if let Some(&(worst, _)) = heap.peek() {
            if d < worst {
                heap.pop();
                heap.push((d, n));
            }
        }
    }
    if heap.len() < k {
        return None;
    }
    let mut v: Vec<(NodeId, Dist)> = heap.into_iter().map(|(d, n)| (n, d)).collect();
    v.sort_by_key(|&(n, d)| (d, n));
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_k_smallest_basic() {
        let items = vec![(0u32, 5u64), (1, 2), (2, 9), (3, 1), (4, 7)];
        let got = select_k_smallest(items, 3).unwrap();
        assert_eq!(got, vec![(3, 1), (1, 2), (0, 5)]);
    }

    #[test]
    fn select_k_smallest_skips_inf() {
        let items = vec![(0u32, roadnet::INF), (1, 2)];
        assert_eq!(select_k_smallest(items.clone(), 1).unwrap(), vec![(1, 2)]);
        assert_eq!(select_k_smallest(items, 2), None);
    }

    #[test]
    fn select_k_smallest_insufficient() {
        let items = vec![(0u32, 1u64)];
        assert_eq!(select_k_smallest(items, 2), None);
    }

    #[test]
    fn gphi_result_from_knn() {
        let knn = vec![(7u32, 3u64), (9, 5)];
        let r = GPhiResult::from_knn(knn.clone(), Aggregate::Sum);
        assert_eq!(r.dist, 8);
        let r = GPhiResult::from_knn(knn, Aggregate::Max);
        assert_eq!(r.dist, 5);
        assert_eq!(r.subset_nodes(), vec![7, 9]);
    }
}
