//! Query-locality layer: the epoch-keyed answer cache.
//!
//! Production FANN traffic is skewed — commute corridors and event venues
//! produce many near-identical `(Q, phi, g)` queries — so the engine keeps
//! a small cache of finished answers, keyed by the *canonical* query
//! signature (sorted, duplicate-free `P` and `Q`, plus `phi`, the
//! aggregate, and the strategy that answered). Canonical keys make
//! permuted or duplicated `P`/`Q` requests hit the same entry.
//!
//! ## Layout ("Simpler is More")
//!
//! One flat open-addressed slot table (linear probing, power-of-two size)
//! plus one shared append-only id arena holding every entry's canonical
//! key and answer subset. No per-entry allocation: a slot is a fixed-size
//! record of offsets into the arena. When the table or arena fills up the
//! whole cache is reset wholesale — no eviction lists, no LRU chains.
//!
//! Invalidation tombstones a slot (`Dead`) rather than emptying it, so
//! probe chains through it stay intact. Linear probing only terminates on
//! `Empty`, so tombstones are counted and the table is compacted in place
//! (live slots re-homed, dead ones dropped) whenever `live + dead`
//! crosses the load threshold — an empty slot therefore always terminates
//! a probe, and both probe loops are additionally hard-bounded at one
//! full table scan. Same-key refreshes reuse the entry's old subset span
//! in the arena when the new subset fits, so a hot key re-inserted every
//! epoch does not grow the arena.
//!
//! ## Coherence contract (see DESIGN.md §9)
//!
//! Every entry is stamped with the graph epoch its answer was computed on,
//! and a lookup hits **only** when the entry's stamp equals the querying
//! snapshot's epoch — so a hit is bit-identical to recomputing on that
//! snapshot, by construction, and an epoch bump implicitly invalidates the
//! whole cache.
//!
//! What makes the cache useful across epochs is *promotion*: when an
//! update batch publishes epoch `e+1`, entries stamped `e` whose answer
//! provably cannot depend on any touched edge are re-stamped `e+1`
//! ([`AnswerCache::on_update`]). The proof obligation is geometric: an
//! entry records the bounding rectangle `b_Q` of its query points and a
//! certified *dependence radius* `reach` (how far from `Q` the answering
//! run could possibly have looked — see `Engine`'s per-strategy choice);
//! with admissible weights (`w(u,v) >= scale * euclid(u, v)`), any path
//! from `Q` through a touched endpoint `x` is longer than
//! `scale * mdist(b_Q, x)`, so if that lower bound exceeds `reach` for
//! every touched endpoint, the network distances the answer was derived
//! from are unchanged and the entry is promoted. Everything else is
//! invalidated. Entries whose run cannot be bounded (approximate answers,
//! `None` answers) record [`NO_REACH`] and are never promoted.

use crate::FannAnswer;
use roadnet::{Dist, NodeId};
use spatial_rtree::{Mbr, Pt};
use std::sync::Mutex;

/// Sentinel dependence radius: the entry is never promoted across an
/// epoch bump (used for approximate answers and `None` answers, whose
/// exploration cannot be bounded by a finite certified radius).
pub const NO_REACH: Dist = Dist::MAX;

/// Monotone counters describing everything the cache has done; readable
/// at any time via [`AnswerCache::stats`] (the serve layer reports them
/// under `metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (entry present at the looked-up
    /// epoch).
    pub hits: u64,
    /// Lookups that found nothing usable (absent, or stamped with a
    /// different epoch).
    pub misses: u64,
    /// Entries written (first writes and overwrites).
    pub insertions: u64,
    /// Entries dropped by an update batch because their region
    /// intersected the batch's dependence region (or their epoch had
    /// already lapsed).
    pub invalidated: u64,
    /// Entries carried across an epoch bump by the region proof.
    pub retained: u64,
    /// Entries dropped wholesale because the table or arena filled up.
    pub evicted: u64,
    /// In-place table compactions that reclaimed tombstoned slots.
    pub rebuilds: u64,
}

/// A canonical cache key: `p` and `q` must be sorted and duplicate-free
/// (the engine canonicalizes before probing), `agg`/`strategy` are the
/// engine's discriminants for the aggregate and answering strategy.
#[derive(Debug, Clone, Copy)]
pub struct CacheKey<'a> {
    pub p: &'a [NodeId],
    pub q: &'a [NodeId],
    pub phi: f64,
    pub agg: u8,
    pub strategy: u8,
}

impl CacheKey<'_> {
    fn fingerprint(&self) -> u64 {
        // FNV-1a over the full key; the table stores the fingerprint for
        // cheap probe rejection, then compares the key exactly.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.p.len() as u64);
        for &v in self.p {
            eat(v as u64);
        }
        eat(self.q.len() as u64);
        for &v in self.q {
            eat(v as u64);
        }
        eat(self.phi.to_bits());
        eat(u64::from(self.agg) << 8 | u64::from(self.strategy));
        // Never return 0: slots use fp 0 as "empty".
        h | 1
    }
}

/// A successful lookup: the cached answer (bit-identical to what the
/// engine computed when it inserted the entry) plus the entry's
/// `phi·M·mdist(b_Q, p*)`-style lower bound on `d*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHit {
    pub answer: Option<FannAnswer>,
    /// Certified lower bound on the answer distance (0 for `None`
    /// answers); `answer.dist >= bound` always holds.
    pub bound: Dist,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Live,
    Dead,
}

#[derive(Clone, Copy)]
struct Slot {
    state: SlotState,
    fp: u64,
    epoch: u64,
    // Key (ids live in the arena).
    phi_bits: u64,
    agg: u8,
    strategy: u8,
    key_off: u32,
    p_len: u32,
    q_len: u32,
    // Value (subset ids live in the arena).
    found: bool,
    p_star: NodeId,
    dist: Dist,
    sub_off: u32,
    sub_len: u32,
    bound: Dist,
    // Promotion metadata.
    mbr: Mbr,
    reach: Dist,
}

const EMPTY_SLOT: Slot = Slot {
    state: SlotState::Empty,
    fp: 0,
    epoch: 0,
    phi_bits: 0,
    agg: 0,
    strategy: 0,
    key_off: 0,
    p_len: 0,
    q_len: 0,
    found: false,
    p_star: 0,
    dist: 0,
    sub_off: 0,
    sub_len: 0,
    bound: 0,
    mbr: Mbr {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 0.0,
        max_y: 0.0,
    },
    reach: 0,
};

struct Table {
    slots: Vec<Slot>,
    arena: Vec<NodeId>,
    live: usize,
    /// Tombstoned slots ([`SlotState::Dead`]) not yet reclaimed; the
    /// compaction trigger is `live + dead` crossing the load threshold.
    dead: usize,
    stats: CacheStats,
}

/// The flat epoch-keyed answer cache (see the [module docs](self) for the
/// layout and the coherence contract). Shared by every engine clone;
/// internally synchronized, so lookups/inserts/promotions may race freely
/// — a lost insert is a future miss, never a wrong answer.
pub struct AnswerCache {
    table: Mutex<Table>,
    max_live: usize,
    arena_limit: usize,
}

impl AnswerCache {
    /// A cache holding up to `capacity` answers (minimum 1). The slot
    /// table is sized at twice the capacity (next power of two) so probe
    /// chains stay short; the id arena is budgeted proportionally.
    pub fn new(capacity: usize) -> Self {
        let max_live = capacity.max(1);
        let slots = (max_live * 2).next_power_of_two();
        AnswerCache {
            table: Mutex::new(Table {
                slots: vec![EMPTY_SLOT; slots],
                arena: Vec::new(),
                live: 0,
                dead: 0,
                stats: CacheStats::default(),
            }),
            max_live,
            // Generous per-entry id budget (canonical P + Q + subset);
            // blowing it resets the cache wholesale rather than tracking
            // per-entry frees.
            arena_limit: max_live.saturating_mul(4096).min(1 << 24),
        }
    }

    /// Maximum number of live entries.
    pub fn capacity(&self) -> usize {
        self.max_live
    }

    /// Live entries right now.
    pub fn len(&self) -> usize {
        self.table.lock().unwrap().live
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.table.lock().unwrap().stats
    }

    /// Slot occupancy `(live, dead, slots)`. `live + dead <= slots`
    /// always holds, and compaction keeps `live + dead` below the load
    /// threshold across inserts (exposed for the coherence tests).
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let t = self.table.lock().unwrap();
        (t.live, t.dead, t.slots.len())
    }

    /// Probe for `key` at `epoch` (the querying snapshot's epoch). An
    /// entry stamped with any other epoch is a miss — stale answers are
    /// unreachable by construction.
    pub fn lookup(&self, key: &CacheKey<'_>, epoch: u64) -> Option<CacheHit> {
        let fp = key.fingerprint();
        let mut t = self.table.lock().unwrap();
        let Some(idx) = find(&t, key, fp) else {
            t.stats.misses += 1;
            return None;
        };
        let s = t.slots[idx];
        if s.epoch != epoch {
            t.stats.misses += 1;
            return None;
        }
        t.stats.hits += 1;
        let answer = s.found.then(|| FannAnswer {
            p_star: s.p_star,
            dist: s.dist,
            subset: t.arena[s.sub_off as usize..(s.sub_off + s.sub_len) as usize].to_vec(),
        });
        Some(CacheHit {
            answer,
            bound: s.bound,
        })
    }

    /// Store the answer computed for `key` on the snapshot at `epoch`.
    /// `bound` is the certified lower bound on the answer distance,
    /// `q_mbr` the bounding rectangle of the (canonical) query points, and
    /// `reach` the strategy's certified dependence radius ([`NO_REACH`]
    /// to forbid promotion). Overwrites any previous entry for the key.
    pub fn insert(
        &self,
        key: &CacheKey<'_>,
        epoch: u64,
        answer: Option<&FannAnswer>,
        bound: Dist,
        q_mbr: Mbr,
        reach: Dist,
    ) {
        let fp = key.fingerprint();
        let mut t = self.table.lock().unwrap();
        let subset: &[NodeId] = answer.map_or(&[], |a| &a.subset);
        let need = key.p.len() + key.q.len() + subset.len();
        if t.arena.len() + need > self.arena_limit {
            reset(&mut t);
        }
        let (idx, key_off, old_span) = match find(&t, key, fp) {
            // Same key: reuse its arena copy, just refresh the value.
            Some(idx) => {
                let s = t.slots[idx];
                (idx, s.key_off, Some((s.sub_off, s.sub_len)))
            }
            None => {
                if t.live >= self.max_live {
                    // Full: wholesale reset (flat cache, no LRU chains).
                    reset(&mut t);
                } else if t.live + t.dead >= t.slots.len() / 2 {
                    // Tombstones crowd the probe chains: compact in place
                    // so an empty slot always terminates a probe.
                    rebuild(&mut t);
                }
                let idx = match find_insert_slot(&t, fp) {
                    Some(idx) => idx,
                    // Unreachable after the occupancy maintenance above;
                    // backstop so a counter bug degrades to an eviction,
                    // never an unbounded probe.
                    None => {
                        reset(&mut t);
                        find_insert_slot(&t, fp).expect("empty table has a free slot")
                    }
                };
                if t.slots[idx].state == SlotState::Dead {
                    t.dead -= 1;
                }
                let key_off = t.arena.len() as u32;
                t.arena.extend_from_slice(key.p);
                t.arena.extend_from_slice(key.q);
                t.live += 1;
                (idx, key_off, None)
            }
        };
        // A same-key refresh overwrites the old subset span when the new
        // subset fits (a hot key re-inserted every epoch no longer grows
        // the arena until a wholesale reset); otherwise append.
        let sub_off = match old_span {
            Some((old_off, old_len)) if subset.len() <= old_len as usize => {
                let off = old_off as usize;
                t.arena[off..off + subset.len()].copy_from_slice(subset);
                old_off
            }
            _ => {
                let off = t.arena.len() as u32;
                t.arena.extend_from_slice(subset);
                off
            }
        };
        t.slots[idx] = Slot {
            state: SlotState::Live,
            fp,
            epoch,
            phi_bits: key.phi.to_bits(),
            agg: key.agg,
            strategy: key.strategy,
            key_off,
            p_len: key.p.len() as u32,
            q_len: key.q.len() as u32,
            found: answer.is_some(),
            p_star: answer.map_or(0, |a| a.p_star),
            dist: answer.map_or(0, |a| a.dist),
            sub_off,
            sub_len: subset.len() as u32,
            bound,
            mbr: q_mbr,
            reach,
        };
        t.stats.insertions += 1;
    }

    /// An update batch published `new_epoch`, replacing `prev_epoch`, and
    /// touched the edge endpoints in `touched` (both endpoints of every
    /// re-weighted edge). Entries stamped `prev_epoch` are promoted to
    /// `new_epoch` when the admissibility bound proves every touched
    /// endpoint lies strictly beyond their dependence radius:
    /// `scale * mdist(b_Q, x) > reach` for all `x`. Everything else from
    /// `prev_epoch` — and any older stragglers — is invalidated.
    ///
    /// The engine calls this under its writer lock, so batches apply in
    /// publication order and a promoted entry has survived every batch
    /// between its birth epoch and `new_epoch`.
    pub fn on_update(&self, prev_epoch: u64, new_epoch: u64, touched: &[Pt], scale: f64) {
        let mut t = self.table.lock().unwrap();
        for i in 0..t.slots.len() {
            let s = &t.slots[i];
            if s.state != SlotState::Live || s.epoch == new_epoch {
                // Entries already at the new epoch were computed on the
                // new snapshot by a racing reader; leave them.
                continue;
            }
            let promote = s.epoch == prev_epoch
                && s.reach != NO_REACH
                && touched
                    .iter()
                    .all(|&x| scale * s.mbr.mindist_point(x) > s.reach as f64);
            if promote {
                t.slots[i].epoch = new_epoch;
                t.stats.retained += 1;
            } else {
                t.slots[i].state = SlotState::Dead;
                t.live -= 1;
                t.dead += 1;
                t.stats.invalidated += 1;
            }
        }
    }

    /// Drop every entry (counted as invalidated).
    pub fn invalidate_all(&self) {
        let mut t = self.table.lock().unwrap();
        let live = t.live as u64;
        t.stats.invalidated += live;
        t.slots.fill(EMPTY_SLOT);
        t.arena.clear();
        t.live = 0;
        t.dead = 0;
    }
}

/// Linear-probe for the slot holding `key`, if any. Probes at most one
/// full table scan: compaction keeps an empty slot on every chain, but
/// the bound is the hard backstop against a table with no `Empty` slot
/// (tombstone saturation used to spin here forever).
fn find(t: &Table, key: &CacheKey<'_>, fp: u64) -> Option<usize> {
    let mask = t.slots.len() - 1;
    let mut idx = (fp as usize) & mask;
    for _ in 0..t.slots.len() {
        let s = &t.slots[idx];
        match s.state {
            SlotState::Empty => return None,
            SlotState::Live if s.fp == fp && key_matches(t, s, key) => return Some(idx),
            _ => idx = (idx + 1) & mask,
        }
    }
    None
}

fn key_matches(t: &Table, s: &Slot, key: &CacheKey<'_>) -> bool {
    if s.phi_bits != key.phi.to_bits()
        || s.agg != key.agg
        || s.strategy != key.strategy
        || s.p_len as usize != key.p.len()
        || s.q_len as usize != key.q.len()
    {
        return false;
    }
    let off = s.key_off as usize;
    let p_end = off + s.p_len as usize;
    let q_end = p_end + s.q_len as usize;
    t.arena[off..p_end] == *key.p && t.arena[p_end..q_end] == *key.q
}

/// First empty or dead slot on `fp`'s probe chain, bounded at one full
/// table scan (`None` only if every slot is live, which occupancy
/// maintenance prevents).
fn find_insert_slot(t: &Table, fp: u64) -> Option<usize> {
    let mask = t.slots.len() - 1;
    let mut idx = (fp as usize) & mask;
    for _ in 0..t.slots.len() {
        match t.slots[idx].state {
            SlotState::Empty | SlotState::Dead => return Some(idx),
            SlotState::Live => idx = (idx + 1) & mask,
        }
    }
    None
}

/// Re-home every live slot into a tombstone-free table of the same size.
/// Linear probing only terminates on `Empty`, so tombstones must be
/// reclaimed before they saturate every probe chain; the arena is left
/// as-is (its growth is bounded separately by `arena_limit`).
fn rebuild(t: &mut Table) {
    let fresh = vec![EMPTY_SLOT; t.slots.len()];
    let old = std::mem::replace(&mut t.slots, fresh);
    t.dead = 0;
    for s in old {
        if s.state == SlotState::Live {
            let idx = find_insert_slot(t, s.fp).expect("live slots fit after dropping tombstones");
            t.slots[idx] = s;
        }
    }
    t.stats.rebuilds += 1;
}

fn reset(t: &mut Table) {
    t.stats.evicted += t.live as u64;
    t.slots.fill(EMPTY_SLOT);
    t.arena.clear();
    t.live = 0;
    t.dead = 0;
}

/// Bounding rectangle of a set of graph coordinates — the cached `b_Q`.
pub fn mbr_of(coords: impl IntoIterator<Item = (f64, f64)>) -> Mbr {
    let mut mbr = Mbr::empty();
    for (x, y) in coords {
        mbr.extend(Pt::new(x, y));
    }
    mbr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key<'a>(p: &'a [NodeId], q: &'a [NodeId], phi: f64) -> CacheKey<'a> {
        CacheKey {
            p,
            q,
            phi,
            agg: 0,
            strategy: 1,
        }
    }

    fn answer(p_star: NodeId, dist: Dist) -> FannAnswer {
        FannAnswer {
            p_star,
            subset: vec![7, 9],
            dist,
        }
    }

    fn unit_mbr() -> Mbr {
        Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 1.0,
            max_y: 1.0,
        }
    }

    #[test]
    fn miss_then_hit_roundtrips_answer() {
        let cache = AnswerCache::new(8);
        let k = key(&[1, 2, 3], &[4, 5], 0.5);
        assert!(cache.lookup(&k, 0).is_none());
        let a = answer(2, 42);
        cache.insert(&k, 0, Some(&a), 40, unit_mbr(), 42);
        let hit = cache.lookup(&k, 0).expect("hit");
        assert_eq!(hit.answer.as_ref(), Some(&a));
        assert_eq!(hit.bound, 40);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn epoch_mismatch_is_a_miss() {
        let cache = AnswerCache::new(8);
        let k = key(&[1], &[2], 1.0);
        cache.insert(&k, 3, Some(&answer(1, 9)), 0, unit_mbr(), 9);
        assert!(cache.lookup(&k, 4).is_none(), "future epoch");
        assert!(cache.lookup(&k, 2).is_none(), "past epoch");
        assert!(cache.lookup(&k, 3).is_some());
    }

    #[test]
    fn none_answers_are_cacheable() {
        let cache = AnswerCache::new(8);
        let k = key(&[1], &[2], 1.0);
        cache.insert(&k, 0, None, 0, unit_mbr(), NO_REACH);
        let hit = cache.lookup(&k, 0).expect("hit");
        assert_eq!(hit.answer, None);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = AnswerCache::new(8);
        let a = answer(1, 10);
        cache.insert(&key(&[1, 2], &[3], 0.5), 0, Some(&a), 0, unit_mbr(), 10);
        assert!(cache.lookup(&key(&[1, 2], &[4], 0.5), 0).is_none());
        assert!(cache.lookup(&key(&[1], &[3], 0.5), 0).is_none());
        assert!(cache.lookup(&key(&[1, 2], &[3], 0.75), 0).is_none());
        let mut k2 = key(&[1, 2], &[3], 0.5);
        k2.agg = 1;
        assert!(cache.lookup(&k2, 0).is_none());
        let mut k3 = key(&[1, 2], &[3], 0.5);
        k3.strategy = 2;
        assert!(cache.lookup(&k3, 0).is_none());
        assert!(cache.lookup(&key(&[1, 2], &[3], 0.5), 0).is_some());
    }

    #[test]
    fn promotion_carries_far_entries_and_drops_near_ones() {
        let cache = AnswerCache::new(8);
        // Entry around the origin with dependence radius 10.
        let near = key(&[1], &[2], 1.0);
        cache.insert(&near, 0, Some(&answer(1, 10)), 0, unit_mbr(), 10);
        // Entry with reach NO_REACH: never promoted.
        let pinned = key(&[1], &[3], 1.0);
        cache.insert(&pinned, 0, None, 0, unit_mbr(), NO_REACH);
        // Touched endpoint at x = 100: scale 1.0 * mdist(~99) > 10 —
        // promote the first entry; the second is invalidated.
        cache.on_update(0, 1, &[Pt::new(100.0, 0.0)], 1.0);
        assert!(cache.lookup(&near, 1).is_some(), "promoted");
        assert!(cache.lookup(&pinned, 1).is_none(), "not promotable");
        let s = cache.stats();
        assert_eq!((s.retained, s.invalidated), (1, 1));
        // A touched endpoint inside the radius invalidates.
        cache.on_update(1, 2, &[Pt::new(5.0, 0.0)], 1.0);
        assert!(cache.lookup(&near, 2).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn promotion_requires_strict_clearance() {
        let cache = AnswerCache::new(8);
        let k = key(&[1], &[2], 1.0);
        cache.insert(&k, 0, Some(&answer(1, 10)), 0, unit_mbr(), 10);
        // mdist from the unit box to x=11 is exactly 10: not strictly
        // beyond reach 10 — must invalidate.
        cache.on_update(0, 1, &[Pt::new(11.0, 0.0)], 1.0);
        assert!(cache.lookup(&k, 1).is_none());
    }

    #[test]
    fn lapsed_epochs_are_invalidated_not_promoted() {
        let cache = AnswerCache::new(8);
        let k = key(&[1], &[2], 1.0);
        // Stamped epoch 0, but the current bump replaces epoch 5: the
        // entry missed intermediate batches (stale-stamped insert) and
        // must not be promoted no matter how far the touched region is.
        cache.insert(&k, 0, Some(&answer(1, 1)), 0, unit_mbr(), 1);
        cache.on_update(5, 6, &[Pt::new(1e9, 0.0)], 1.0);
        assert!(cache.lookup(&k, 6).is_none());
    }

    #[test]
    fn overwrite_same_key_updates_value() {
        let cache = AnswerCache::new(8);
        let k = key(&[1, 2], &[3, 4], 0.5);
        cache.insert(&k, 0, Some(&answer(1, 10)), 0, unit_mbr(), 10);
        cache.insert(&k, 1, Some(&answer(2, 20)), 0, unit_mbr(), 20);
        assert!(cache.lookup(&k, 0).is_none(), "old epoch gone");
        let hit = cache.lookup(&k, 1).expect("hit");
        assert_eq!(hit.answer.unwrap().p_star, 2);
        assert_eq!(cache.len(), 1, "overwrite, not a second entry");
    }

    #[test]
    fn capacity_overflow_resets_wholesale() {
        let cache = AnswerCache::new(2);
        let a = answer(1, 1);
        let qs: Vec<[NodeId; 1]> = (0..3).map(|i| [i as NodeId]).collect();
        for q in &qs {
            cache.insert(&key(&[1], q, 1.0), 0, Some(&a), 0, unit_mbr(), 1);
        }
        // Third insert reset the table first: only the newest survives.
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(&[1], &qs[2], 1.0), 0).is_some());
        assert!(cache.stats().evicted >= 2);
    }

    #[test]
    fn tombstone_churn_never_saturates_the_table() {
        // Epoch churn invalidates every entry each round; the dead slots
        // must be compacted away so absent-key probes keep terminating on
        // an Empty slot (this pattern used to saturate the table and spin
        // `find` forever).
        let cache = AnswerCache::new(4); // slots = 8
        let mut id: NodeId = 0;
        for round in 0..100 {
            for _ in 0..3 {
                id += 1;
                let q = [id];
                cache.insert(&key(&[0], &q, 1.0), round, None, 0, unit_mbr(), NO_REACH);
            }
            cache.on_update(round, round + 1, &[Pt::new(0.0, 0.0)], 1.0);
            let (live, dead, slots) = cache.occupancy();
            assert!(live + dead <= slots, "{live} + {dead} > {slots}");
        }
        assert!(cache.lookup(&key(&[0], &[u32::MAX], 1.0), 100).is_none());
        let s = cache.stats();
        assert!(s.rebuilds > 0, "compaction never ran");
        assert_eq!(s.evicted, 0, "capacity was never exceeded");
    }

    #[test]
    fn same_key_refresh_does_not_grow_arena() {
        // capacity 1 => arena_limit 4096 ids. Refreshing one hot key many
        // times used to append a fresh subset span per insert and force
        // periodic wholesale resets once the arena filled.
        let cache = AnswerCache::new(1);
        let k = key(&[1, 2], &[3, 4], 0.5);
        for epoch in 0..10_000 {
            cache.insert(&k, epoch, Some(&answer(1, 7)), 0, unit_mbr(), 7);
        }
        assert_eq!(cache.stats().evicted, 0, "arena leak forced a reset");
        let hit = cache.lookup(&k, 9_999).expect("hit");
        assert_eq!(hit.answer.unwrap().subset, vec![7, 9]);
    }

    #[test]
    fn refresh_with_shorter_subset_reuses_span() {
        let cache = AnswerCache::new(4);
        let k = key(&[1, 2, 3], &[4], 1.0);
        let long = FannAnswer {
            p_star: 1,
            subset: vec![1, 2, 3],
            dist: 5,
        };
        let short = FannAnswer {
            p_star: 2,
            subset: vec![9],
            dist: 3,
        };
        cache.insert(&k, 0, Some(&long), 0, unit_mbr(), 5);
        cache.insert(&k, 1, Some(&short), 0, unit_mbr(), 3);
        let hit = cache.lookup(&k, 1).expect("hit");
        assert_eq!(hit.answer.unwrap().subset, vec![9]);
    }

    #[test]
    fn invalidate_all_clears() {
        let cache = AnswerCache::new(8);
        let k = key(&[1], &[2], 1.0);
        cache.insert(&k, 0, Some(&answer(1, 1)), 0, unit_mbr(), 1);
        cache.invalidate_all();
        assert!(cache.lookup(&k, 0).is_none());
        assert_eq!(cache.len(), 0);
    }
}
