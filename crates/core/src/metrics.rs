//! Query observability: machine-independent work counters and latency
//! histograms.
//!
//! The paper's §VI compares methods by *how much work* they do, not just by
//! wall clock; related road-network kNN work (COL-Trees, "Simpler is More")
//! reports node/matrix accesses for the same reason. This module provides:
//!
//! * [`SearchStats`] — a plain counter snapshot (nodes settled, heap
//!   pushes/pops, edges relaxed, `g_phi` evaluations, distance-oracle
//!   calls, label lookups, R-tree node accesses, candidates pruned).
//! * [`StatsSink`] — the live recording handle. `&StatsSink` implements
//!   [`roadnet::SearchRecorder`] and [`Recorder`], so one sink per query
//!   can be threaded by value through every layer of a search.
//! * [`Recorder`] — extends the roadnet hook set with the query-layer
//!   events (`g_phi` evals, oracle calls, pruning). The unit recorder `()`
//!   is a no-op for every hook, so untraced paths monomorphize to exactly
//!   the uninstrumented code.
//! * [`LatencyHistogram`] — fixed log2-bucket latency histogram with
//!   approximate p50/p90/p99, mergeable across batch workers.

use roadnet::SearchRecorder;
use std::cell::Cell;
use std::fmt;

/// Query-layer instrumentation hooks, on top of the search-layer hooks of
/// [`SearchRecorder`]. Every method defaults to an empty inlined body; the
/// unit type `()` implements both traits as a full no-op.
pub trait Recorder: SearchRecorder {
    /// One `g_phi(p, Q)` evaluation was performed.
    #[inline(always)]
    fn gphi_eval(self) {}

    /// One point-to-point distance-oracle call was made.
    #[inline(always)]
    fn oracle_call(self) {}

    /// One hub-label (PHL) lookup was made.
    #[inline(always)]
    fn label_lookup(self) {}

    /// `n` R-tree nodes were accessed during best-first traversal.
    #[inline(always)]
    fn rtree_nodes(self, _n: u64) {}

    /// `n` candidate data points were pruned without a `g_phi` evaluation
    /// (Lemma-1 Euclidean bound, R-List threshold, APX-sum candidate set).
    #[inline(always)]
    fn pruned(self, _n: u64) {}
}

/// The no-op recorder: compiles to nothing.
impl Recorder for () {}

/// A snapshot of per-query (or per-batch) search work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled across all graph expansions (Dijkstra/A*/INE).
    pub nodes_settled: u64,
    /// Priority-queue pushes across all graph expansions.
    pub heap_pushes: u64,
    /// Priority-queue pops (settled or stale) across all graph expansions.
    pub heap_pops: u64,
    /// Outgoing edges examined during relaxation.
    pub edges_relaxed: u64,
    /// `g_phi(p, Q)` evaluations.
    pub gphi_evals: u64,
    /// Point-to-point distance-oracle calls.
    pub oracle_calls: u64,
    /// Hub-label (PHL) lookups.
    pub label_lookups: u64,
    /// R-tree nodes accessed during best-first traversal.
    pub rtree_nodes: u64,
    /// Candidates pruned without a `g_phi` evaluation.
    pub candidates_pruned: u64,
}

impl SearchStats {
    /// Accumulate another snapshot into this one (saturating).
    pub fn add(&mut self, other: &SearchStats) {
        self.nodes_settled = self.nodes_settled.saturating_add(other.nodes_settled);
        self.heap_pushes = self.heap_pushes.saturating_add(other.heap_pushes);
        self.heap_pops = self.heap_pops.saturating_add(other.heap_pops);
        self.edges_relaxed = self.edges_relaxed.saturating_add(other.edges_relaxed);
        self.gphi_evals = self.gphi_evals.saturating_add(other.gphi_evals);
        self.oracle_calls = self.oracle_calls.saturating_add(other.oracle_calls);
        self.label_lookups = self.label_lookups.saturating_add(other.label_lookups);
        self.rtree_nodes = self.rtree_nodes.saturating_add(other.rtree_nodes);
        self.candidates_pruned = self
            .candidates_pruned
            .saturating_add(other.candidates_pruned);
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == SearchStats::default()
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "settled {} | pushes {} | pops {} | edges {} | g_phi {} | oracle {} | labels {} | rtree {} | pruned {}",
            self.nodes_settled,
            self.heap_pushes,
            self.heap_pops,
            self.edges_relaxed,
            self.gphi_evals,
            self.oracle_calls,
            self.label_lookups,
            self.rtree_nodes,
            self.candidates_pruned,
        )
    }
}

/// A live counter sink for one worker/query. Record through `&StatsSink`
/// (which is `Copy` and implements [`SearchRecorder`] + [`Recorder`]);
/// read the totals out with [`StatsSink::snapshot`].
///
/// Uses `Cell` fields rather than atomics: a sink is owned by one worker,
/// and the whole point of the design is that tracing costs a handful of
/// register bumps, not synchronized memory traffic.
#[derive(Debug, Default)]
pub struct StatsSink {
    nodes_settled: Cell<u64>,
    heap_pushes: Cell<u64>,
    heap_pops: Cell<u64>,
    edges_relaxed: Cell<u64>,
    gphi_evals: Cell<u64>,
    oracle_calls: Cell<u64>,
    label_lookups: Cell<u64>,
    rtree_nodes: Cell<u64>,
    candidates_pruned: Cell<u64>,
}

impl StatsSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counter totals.
    pub fn snapshot(&self) -> SearchStats {
        SearchStats {
            nodes_settled: self.nodes_settled.get(),
            heap_pushes: self.heap_pushes.get(),
            heap_pops: self.heap_pops.get(),
            edges_relaxed: self.edges_relaxed.get(),
            gphi_evals: self.gphi_evals.get(),
            oracle_calls: self.oracle_calls.get(),
            label_lookups: self.label_lookups.get(),
            rtree_nodes: self.rtree_nodes.get(),
            candidates_pruned: self.candidates_pruned.get(),
        }
    }

    /// Zero all counters (e.g. between queries when reusing one sink).
    pub fn reset(&self) {
        self.nodes_settled.set(0);
        self.heap_pushes.set(0);
        self.heap_pops.set(0);
        self.edges_relaxed.set(0);
        self.gphi_evals.set(0);
        self.oracle_calls.set(0);
        self.label_lookups.set(0);
        self.rtree_nodes.set(0);
        self.candidates_pruned.set(0);
    }
}

#[inline(always)]
fn bump(c: &Cell<u64>) {
    c.set(c.get().wrapping_add(1));
}

impl SearchRecorder for &StatsSink {
    #[inline]
    fn node_settled(self) {
        bump(&self.nodes_settled);
    }
    #[inline]
    fn heap_push(self) {
        bump(&self.heap_pushes);
    }
    #[inline]
    fn heap_pop(self) {
        bump(&self.heap_pops);
    }
    #[inline]
    fn edge_relaxed(self) {
        bump(&self.edges_relaxed);
    }
}

impl Recorder for &StatsSink {
    #[inline]
    fn gphi_eval(self) {
        bump(&self.gphi_evals);
    }
    #[inline]
    fn oracle_call(self) {
        bump(&self.oracle_calls);
    }
    #[inline]
    fn label_lookup(self) {
        bump(&self.label_lookups);
    }
    #[inline]
    fn rtree_nodes(self, n: u64) {
        self.rtree_nodes.set(self.rtree_nodes.get().wrapping_add(n));
    }
    #[inline]
    fn pruned(self, n: u64) {
        self.candidates_pruned
            .set(self.candidates_pruned.get().wrapping_add(n));
    }
}

/// Number of log2 latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` nanoseconds, with the last bucket open-ended.
/// 40 buckets cover up to ~18 minutes per query.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-bucket (log2 of nanoseconds) latency histogram.
///
/// Constant-size, allocation-free to record into, and mergeable across
/// batch workers; quantiles are approximate (bucket upper bound), which is
/// the right trade for "is p99 10x p50?" observability questions.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(ns: u64) -> usize {
        // floor(log2(ns)) for ns >= 1; 0ns shares bucket 0 with 1ns.
        let b = 63 - ns.max(1).leading_zeros() as usize;
        b.min(LATENCY_BUCKETS - 1)
    }

    /// Record one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one sample from a `std::time::Duration`.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram into this one (for merging worker-local
    /// histograms after a batch).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.total).unwrap_or(0)
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate quantile in nanoseconds: the upper bound of the bucket
    /// containing the `q`-quantile sample (capped at the observed max).
    /// Returns 0 when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n {} | mean {:.1}us | p50 {:.1}us | p90 {:.1}us | p99 {:.1}us | max {:.1}us",
            self.total,
            self.mean_ns() as f64 / 1e3,
            self.p50_ns() as f64 / 1e3,
            self.p90_ns() as f64 / 1e3,
            self.p99_ns() as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_all_counters() {
        let sink = StatsSink::new();
        let r = &sink;
        r.node_settled();
        r.node_settled();
        r.heap_push();
        r.heap_pop();
        r.edge_relaxed();
        r.gphi_eval();
        r.oracle_call();
        r.label_lookup();
        r.rtree_nodes(3);
        r.pruned(5);
        let s = sink.snapshot();
        assert_eq!(s.nodes_settled, 2);
        assert_eq!(s.heap_pushes, 1);
        assert_eq!(s.heap_pops, 1);
        assert_eq!(s.edges_relaxed, 1);
        assert_eq!(s.gphi_evals, 1);
        assert_eq!(s.oracle_calls, 1);
        assert_eq!(s.label_lookups, 1);
        assert_eq!(s.rtree_nodes, 3);
        assert_eq!(s.candidates_pruned, 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn stats_add_accumulates() {
        let mut a = SearchStats {
            nodes_settled: 1,
            gphi_evals: 2,
            ..Default::default()
        };
        let b = SearchStats {
            nodes_settled: 10,
            candidates_pruned: 4,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.nodes_settled, 11);
        assert_eq!(a.gphi_evals, 2);
        assert_eq!(a.candidates_pruned, 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record_ns(1_000); // bucket [512, 1024)... log2(1000)=9
        }
        h.record_ns(1_000_000);
        h.record_ns(2_000_000);
        assert_eq!(h.count(), 100);
        // p50 falls in the 1000ns bucket: upper bound 1024.
        assert_eq!(h.p50_ns(), 1024);
        assert!(h.p99_ns() >= 1_000_000, "p99 = {}", h.p99_ns());
        assert_eq!(h.max_ns(), 2_000_000);
        assert!(h.mean_ns() > 1_000 && h.mean_ns() < 100_000);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..50u64 {
            a.record_ns(i * 100);
            both.record_ns(i * 100);
        }
        for i in 0..50u64 {
            b.record_ns(i * 10_000);
            both.record_ns(i * 10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.p50_ns(), both.p50_ns());
        assert_eq!(a.p99_ns(), both.p99_ns());
        assert_eq!(a.max_ns(), both.max_ns());
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn histogram_extreme_samples_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.p99_ns() > 0);
    }
}
