//! High-level engine: one handle over a network and its indexes.
//!
//! The paper's conclusion (§VII) is a decision rule: use the universal
//! indexed methods (IER-kNN over PHL-class oracles) when indexes exist,
//! and the specific index-free methods (`Exact-max`, `APX-sum`) when they
//! don't. [`Engine`] packages that rule behind a single `query` call so
//! downstream users don't need to know the taxonomy:
//!
//! ```
//! use fann_core::engine::Engine;
//! use fann_core::Aggregate;
//! # use roadnet::GraphBuilder;
//! # let mut b = GraphBuilder::new();
//! # for i in 0..6 { b.add_node(i as f64, 0.0); }
//! # for i in 0..5 { b.add_edge(i, i + 1, 10); }
//! # let graph = b.build();
//! let engine = Engine::new(&graph).with_labels(); // build once
//! let answer = engine
//!     .query(&[0, 2, 4], &[1, 5], 0.5, Aggregate::Max)
//!     .expect("valid query")
//!     .expect("reachable");
//! assert_eq!(answer.dist, 10);
//! ```

use crate::algo::ier::build_p_rtree;
use crate::algo::{apx_sum, exact_max, ier_knn, r_list};
use crate::algo::topk::{exact_max_topk, ier_topk, rlist_topk};
use crate::gphi::ier2::IerPhi;
use crate::gphi::ine::InePhi;
use crate::gphi::oracle::LabelOracle;
use crate::gphi::GPhi;
use crate::{Aggregate, FannAnswer, FannQuery, KFannAnswer, QueryError};
use hublabel::HubLabels;
use roadnet::{Graph, NodeId};

/// Which strategy [`Engine::query`] selected (observable for logging and
/// for the engine tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Indexed: IER-kNN over an R-tree on `P` with an IER-PHL backend.
    IerKnnLabels,
    /// Index-free exact max: `Exact-max`.
    ExactMax,
    /// Index-free exact sum: `R-List` with INE.
    RListIne,
    /// Index-free approximate sum: `APX-sum` with INE.
    ApxSumIne,
}

/// A road network plus optional indexes, with automatic algorithm choice.
pub struct Engine<'g> {
    graph: &'g Graph,
    labels: Option<HubLabels>,
    /// Accept approximate sum answers when no index is available
    /// (3-approximation; off by default).
    allow_approx_sum: bool,
}

impl<'g> Engine<'g> {
    /// An index-free engine (the "road networks change frequently"
    /// scenario of §IV).
    pub fn new(graph: &'g Graph) -> Self {
        Engine {
            graph,
            labels: None,
            allow_approx_sum: false,
        }
    }

    /// Build and attach the hub-label oracle (expensive; do it once).
    pub fn with_labels(mut self) -> Self {
        self.labels = Some(HubLabels::build(self.graph));
        self
    }

    /// Attach previously built labels (e.g. from
    /// [`HubLabels::from_bytes`]).
    pub fn with_prebuilt_labels(mut self, labels: HubLabels) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Allow `APX-sum` (guaranteed 3-approximation) for index-free sum
    /// queries instead of the exact-but-slower `R-List`.
    pub fn allow_approx_sum(mut self, yes: bool) -> Self {
        self.allow_approx_sum = yes;
        self
    }

    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// The strategy `query` would use for this aggregate.
    pub fn strategy_for(&self, agg: Aggregate) -> Strategy {
        if self.labels.is_some() {
            Strategy::IerKnnLabels
        } else {
            match agg {
                Aggregate::Max => Strategy::ExactMax,
                Aggregate::Sum if self.allow_approx_sum => Strategy::ApxSumIne,
                Aggregate::Sum => Strategy::RListIne,
            }
        }
    }

    /// Answer an FANN_R query with the §VII decision rule. `Ok(None)`
    /// when no data point reaches `ceil(phi |Q|)` query points.
    pub fn query(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let query = FannQuery { p, q, phi, agg };
        query.validate(self.graph)?;
        let answer = match self.strategy_for(agg) {
            Strategy::IerKnnLabels => {
                let labels = self.labels.as_ref().expect("strategy implies labels");
                let rtree = build_p_rtree(self.graph, p);
                let gphi = IerPhi::new(self.graph, LabelOracle { labels }, q);
                ier_knn(self.graph, &query, &rtree, &gphi)
            }
            Strategy::ExactMax => exact_max(self.graph, &query),
            Strategy::RListIne => {
                let gphi = InePhi::new(self.graph, q);
                r_list(self.graph, &query, &gphi)
            }
            Strategy::ApxSumIne => {
                let gphi = InePhi::new(self.graph, q);
                apx_sum(self.graph, &query, &gphi)
            }
        };
        Ok(answer)
    }

    /// Answer a `k`-FANN_R query (§V). Always exact; `APX-sum` has no
    /// top-k adaptation (per the paper), so index-free sum uses `R-List`.
    pub fn query_topk(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        k: usize,
    ) -> Result<KFannAnswer, QueryError> {
        let query = FannQuery { p, q, phi, agg };
        query.validate(self.graph)?;
        let answer = match (self.labels.as_ref(), agg) {
            (Some(labels), _) => {
                let rtree = build_p_rtree(self.graph, p);
                let gphi = IerPhi::new(self.graph, LabelOracle { labels }, q);
                ier_topk(self.graph, &query, &rtree, &gphi, k)
            }
            (None, Aggregate::Max) => exact_max_topk(self.graph, &query, k),
            (None, Aggregate::Sum) => {
                let gphi = InePhi::new(self.graph, q);
                rlist_topk(self.graph, &query, &gphi, k)
            }
        };
        Ok(answer)
    }

    /// Evaluate `g_phi(p, Q)` directly with the best available backend
    /// (Definition 1 as a public operation).
    pub fn g_phi(
        &self,
        p: NodeId,
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Option<crate::gphi::GPhiResult> {
        let k = ((phi * q.len() as f64).ceil() as usize).clamp(1, q.len());
        match self.labels.as_ref() {
            Some(labels) => {
                IerPhi::new(self.graph, LabelOracle { labels }, q).eval(p, k, agg)
            }
            None => InePhi::new(self.graph, q).eval(p, k, agg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x + y) % 5);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x * 2 + y) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn indexed_and_index_free_agree_with_truth() {
        let g = grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(3).collect();
        let q: Vec<u32> = vec![4, 18, 30, 44];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for phi in [0.25, 0.5, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let truth = brute_force(&g, &query).unwrap();
                let a = bare.query(&p, &q, phi, agg).unwrap().unwrap();
                let b = indexed.query(&p, &q, phi, agg).unwrap().unwrap();
                assert_eq!(a.dist, truth.dist, "bare phi={phi} {agg}");
                assert_eq!(b.dist, truth.dist, "indexed phi={phi} {agg}");
            }
        }
    }

    #[test]
    fn strategies_selected_as_documented() {
        let g = grid(3, 3);
        let bare = Engine::new(&g);
        assert_eq!(bare.strategy_for(Aggregate::Max), Strategy::ExactMax);
        assert_eq!(bare.strategy_for(Aggregate::Sum), Strategy::RListIne);
        let approx = Engine::new(&g).allow_approx_sum(true);
        assert_eq!(approx.strategy_for(Aggregate::Sum), Strategy::ApxSumIne);
        let indexed = Engine::new(&g).with_labels();
        assert!(indexed.has_labels());
        assert_eq!(indexed.strategy_for(Aggregate::Max), Strategy::IerKnnLabels);
    }

    #[test]
    fn approx_sum_within_bound() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).step_by(2).collect();
        let q: Vec<u32> = vec![0, 9, 27, 45, 63];
        let engine = Engine::new(&g).allow_approx_sum(true);
        let query = FannQuery::new(&p, &q, 0.6, Aggregate::Sum);
        let truth = brute_force(&g, &query).unwrap();
        let a = engine.query(&p, &q, 0.6, Aggregate::Sum).unwrap().unwrap();
        assert!(a.dist >= truth.dist);
        assert!(a.dist <= 3 * truth.dist);
    }

    #[test]
    fn topk_consistent_between_modes() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).collect();
        let q: Vec<u32> = vec![0, 20, 35];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let a = bare.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let b = indexed.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let da: Vec<u64> = a.iter().map(|&(_, d)| d).collect();
            let db: Vec<u64> = b.iter().map(|&(_, d)| d).collect();
            assert_eq!(da, db, "{agg}");
        }
    }

    #[test]
    fn validation_errors_propagate() {
        let g = grid(2, 2);
        let engine = Engine::new(&g);
        assert!(matches!(
            engine.query(&[99], &[0], 0.5, Aggregate::Max),
            Err(QueryError::NodeOutOfRange(99))
        ));
        assert!(matches!(
            engine.query(&[], &[0], 0.5, Aggregate::Max),
            Err(QueryError::EmptyP)
        ));
    }

    #[test]
    fn g_phi_is_consistent_between_backends() {
        let g = grid(5, 5);
        let q: Vec<u32> = vec![0, 12, 24];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for v in 0..25 {
            let a = bare.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap();
            let b = indexed.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap();
            assert_eq!(a.dist, b.dist);
        }
    }
}
