//! High-level engine: one handle over a network and its indexes.
//!
//! The paper's conclusion (§VII) is a decision rule: use the universal
//! indexed methods (IER-kNN over PHL-class oracles) when indexes exist,
//! and the specific index-free methods (`Exact-max`, `APX-sum`) when they
//! don't. [`Engine`] packages that rule behind a single `query` call so
//! downstream users don't need to know the taxonomy:
//!
//! ```
//! use fann_core::engine::Engine;
//! use fann_core::Aggregate;
//! # use roadnet::GraphBuilder;
//! # let mut b = GraphBuilder::new();
//! # for i in 0..6 { b.add_node(i as f64, 0.0); }
//! # for i in 0..5 { b.add_edge(i, i + 1, 10); }
//! # let graph = b.build();
//! let engine = Engine::new(&graph).with_labels(); // build once
//! let answer = engine
//!     .query(&[0, 2, 4], &[1, 5], 0.5, Aggregate::Max)
//!     .expect("valid query")
//!     .expect("reachable");
//! assert_eq!(answer.dist, 10);
//! ```
//!
//! # Snapshots, epochs, and live updates
//!
//! The engine is *snapshot-centric* ("road networks change frequently",
//! §IV): its state is an immutable [`EngineSnapshot`] — an epoch-versioned
//! [`NetworkSnapshot`] plus the indexes built for it — published through a
//! lock-free [`SnapshotCell`]. Every query pins exactly one snapshot for
//! its whole lifetime, so concurrent [`Engine::apply_updates`] calls never
//! tear an in-flight answer: each answer is consistent with exactly one
//! epoch. Updates are copy-on-write (only the weight array is copied) and
//! mark hub labels *stale* rather than rebuilding them inline; stale
//! labels degrade to exact A\* for affected pairs (never a wrong answer)
//! until [`Engine::repair_indexes`] — usually via
//! [`Engine::repair_in_background`] — rebuilds them. `Engine` is `Clone +
//! Send + Sync + 'static`: handles share state, so a server can hand one
//! to every worker thread and another to an updater.

use crate::algo::ier::build_p_rtree;
use crate::algo::topk::{exact_max_topk, ier_topk, rlist_topk};
use crate::algo::{
    apx_sum, apx_sum_cancellable, apx_sum_traced, exact_max, exact_max_cancellable,
    exact_max_pooled, exact_max_traced, ier_knn, ier_knn_cancellable, ier_knn_traced, r_list,
    r_list_cancellable, r_list_pooled, r_list_traced, IerBound,
};
use crate::algo::{exact_max_on_streams, r_list_on_streams};
use crate::gphi::ier2::IerPhi;
use crate::gphi::ine::InePhi;
use crate::gphi::oracle::GuardedLabelOracle;
use crate::gphi::{GPhi, ReusableGPhi};
use crate::locality::{AnswerCache, CacheKey, CacheStats, NO_REACH};
use crate::metrics::{LatencyHistogram, SearchStats, StatsSink};
use crate::{flex_k, Aggregate, FannAnswer, FannQuery, KFannAnswer, QueryError};
use hublabel::HubLabels;
use roadnet::cancel::{CancelCheck, CancelToken, Cancelled};
use roadnet::{
    AppliedUpdate, Dist, Graph, NetworkSnapshot, NodeId, RepairScope, ScratchPool, SharedExpansion,
    SnapshotCell, UpdateError, WeightUpdate,
};
use spatial_rtree::{Mbr, Pt};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Which strategy [`Engine::query`] selected (observable for logging and
/// for the engine tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Indexed: IER-kNN over an R-tree on `P` with an IER-PHL backend.
    IerKnnLabels,
    /// Index-free exact max: `Exact-max`.
    ExactMax,
    /// Index-free exact sum: `R-List` with INE.
    RListIne,
    /// Index-free approximate sum: `APX-sum` with INE.
    ApxSumIne,
}

impl Strategy {
    /// All strategies, in [`Strategy::index`] order.
    pub const ALL: [Strategy; 4] = [
        Strategy::IerKnnLabels,
        Strategy::ExactMax,
        Strategy::RListIne,
        Strategy::ApxSumIne,
    ];

    /// Name as used in reports and figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::IerKnnLabels => "IER-kNN/PHL",
            Strategy::ExactMax => "Exact-max",
            Strategy::RListIne => "R-List/INE",
            Strategy::ApxSumIne => "APX-sum/INE",
        }
    }

    /// Dense index into [`Strategy::ALL`] (for per-strategy accumulators).
    pub fn index(&self) -> usize {
        match self {
            Strategy::IerKnnLabels => 0,
            Strategy::ExactMax => 1,
            Strategy::RListIne => 2,
            Strategy::ApxSumIne => 3,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Canonical (sorted, duplicate-free) copy of `ids`, or `None` when `ids`
/// is already canonical. `P` and `Q` are sets (see [`FannQuery`]); the
/// engine canonicalizes both before dispatch so every strategy sees the
/// same effective query, any permutation of the same set produces the
/// bit-identical answer (making the answer cache's canonical keys sound,
/// see [`crate::locality`]) — and the common already-canonical case stays
/// allocation-free.
fn canonical(ids: &[NodeId]) -> Option<Vec<NodeId>> {
    if ids.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    Some(sorted)
}

/// How a `query_cached*` call was answered (observable for the serving
/// metrics and the coherence tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the answer cache at the pinned epoch.
    Hit,
    /// Computed and inserted into the cache.
    Miss,
    /// No cache attached; computed directly.
    Bypass,
}

/// The cache key for a canonicalized query on the current snapshot.
fn cache_key<'a>(
    p: &'a [NodeId],
    q: &'a [NodeId],
    phi: f64,
    agg: Aggregate,
    strategy: Strategy,
) -> CacheKey<'a> {
    CacheKey {
        p,
        q,
        phi,
        agg: match agg {
            Aggregate::Sum => 0,
            Aggregate::Max => 1,
        },
        strategy: strategy.index() as u8,
    }
}

/// Store a freshly computed answer: derive the entry's `b_Q` rectangle,
/// its admissible `phi·M`-scaled lower bound on `d*`, and the strategy's
/// certified dependence radius used for cross-epoch promotion
/// (see DESIGN.md §9 for the per-strategy proofs).
fn cache_store(
    cache: &AnswerCache,
    snap: &EngineSnapshot,
    key: &CacheKey<'_>,
    agg: Aggregate,
    answer: Option<&FannAnswer>,
    strategy: Strategy,
) {
    let graph = snap.graph();
    let mut mbr = Mbr::empty();
    for &v in key.q {
        let c = graph.coord(v);
        mbr.extend(Pt::new(c.x, c.y));
    }
    let scale = snap.network().admissibility_scale();
    let (bound, reach) = match answer {
        None => (0, NO_REACH),
        Some(a) => {
            // phi·M·mdist-style bound: each of the k = ceil(phi·|Q|)
            // subset members q satisfies d(p*, q) >= scale·euclid(p*, q)
            // >= scale·mdist(b_Q, p*).
            let c = graph.coord(a.p_star);
            let per_term = scale * mbr.mindist_point(Pt::new(c.x, c.y));
            let bound_f = match agg {
                Aggregate::Max => per_term,
                Aggregate::Sum => per_term * flex_k(key.phi, key.q.len()) as f64,
            };
            let bound = if bound_f.is_finite() {
                (bound_f.max(0.0).floor() as Dist).min(a.dist)
            } else {
                0
            };
            // Dependence radius: how far from Q the answering run could
            // have looked. Exact-max and IER-kNN are bounded by d*;
            // R-List's random-access evals reach up to 2·d*; APX-sum's
            // candidate probes are unbounded, so it is never promoted.
            let reach = match strategy {
                Strategy::ExactMax | Strategy::IerKnnLabels => a.dist,
                Strategy::RListIne => a.dist.saturating_mul(2),
                Strategy::ApxSumIne => NO_REACH,
            };
            (bound, reach)
        }
    };
    cache.insert(key, snap.epoch(), answer, bound, mbr, reach);
}

/// Weight updates applied since the current hub labels were built, merged
/// per edge: the labels' staleness ledger. Empty ⇔ the labels are exact
/// for the current graph.
#[derive(Debug, Clone)]
pub struct StaleSet {
    scope: RepairScope,
}

impl StaleSet {
    fn fresh() -> Self {
        StaleSet {
            scope: RepairScope::new(),
        }
    }

    /// No pending updates: the labels match the current graph exactly.
    pub fn is_fresh(&self) -> bool {
        self.scope.is_empty()
    }

    /// Net per-edge changes: `w_old` is the weight the labels were built
    /// with, `w_new` the current weight.
    pub fn updates(&self) -> &[AppliedUpdate] {
        self.scope.edges()
    }

    /// Every net change is an increase — the per-pair certificate in
    /// [`GuardedLabelOracle`] applies. Decrease certificates do not
    /// compose across edges, so any net decrease disables them all.
    pub fn increase_only(&self) -> bool {
        self.scope.increase_only()
    }

    /// The ledger as a [`RepairScope`]: exactly the touched edges a
    /// scoped repair must cover to bring the labels back to the current
    /// graph.
    pub fn scope(&self) -> &RepairScope {
        &self.scope
    }

    fn absorb(&mut self, applied: &[AppliedUpdate]) {
        self.scope.absorb(applied);
    }
}

/// One pinned, immutable view of the engine: a [`NetworkSnapshot`] plus
/// the indexes (and their staleness ledger) that answer on it. Obtained
/// from [`Engine::snapshot`]; holding the `Arc` keeps this exact epoch
/// alive regardless of concurrent updates.
pub struct EngineSnapshot {
    net: NetworkSnapshot,
    labels: Option<Arc<HubLabels>>,
    stale: StaleSet,
}

impl EngineSnapshot {
    pub fn network(&self) -> &NetworkSnapshot {
        &self.net
    }

    pub fn graph(&self) -> &Graph {
        self.net.graph()
    }

    pub fn epoch(&self) -> u64 {
        self.net.epoch()
    }

    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// The labels' staleness ledger (empty when no labels are attached or
    /// they are fresh).
    pub fn stale(&self) -> &StaleSet {
        &self.stale
    }

    /// Labels exist but have not absorbed every published update.
    pub fn is_stale(&self) -> bool {
        self.labels.is_some() && !self.stale.is_fresh()
    }

    /// The attached hub labels, if any (e.g. for persisting a repaired
    /// labeling or comparing it against a from-scratch build).
    pub fn hub_labels(&self) -> Option<&Arc<HubLabels>> {
        self.labels.as_ref()
    }

    /// The point-to-point oracle for this snapshot: hub labels guarded by
    /// the staleness ledger (exact even mid-repair), or `None` when the
    /// snapshot is index-free.
    pub fn oracle(&self) -> Option<GuardedLabelOracle<'_>> {
        let labels = self.labels.as_deref()?;
        Some(GuardedLabelOracle::new(
            labels,
            self.net.graph(),
            self.stale.updates(),
            self.stale.increase_only(),
            self.net.lower_bound(),
        ))
    }
}

/// A maintained G-tree: the current tree, its phase-1 assembly cache
/// (what [`gtree::GTree::repair_scoped`] advances in place), and the
/// epoch of the graph the tree matches.
struct GtreeMaint {
    tree: gtree::GTree,
    cache: gtree::RepairCache,
    workers: usize,
    epoch: u64,
}

/// Footprint and cost of the most recent index repair, split by index.
/// A full label rebuild reports `labels_repaired == labels_total`; a
/// scoped repair reports the (usually far smaller) replayed-hub count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Epoch the repaired indexes match.
    pub epoch: u64,
    /// Hub roots whose pruned search was re-run.
    pub labels_repaired: u64,
    /// Hub roots a from-scratch rebuild would run.
    pub labels_total: u64,
    /// Wall time of the label repair, milliseconds.
    pub label_wall_ms: u64,
    /// G-tree leaves whose border matrices were reassembled.
    pub scoped_leaves: u64,
    /// G-tree nodes (leaves + internals) recomputed in either phase.
    pub gtree_nodes_recomputed: u64,
    /// G-tree matrix entries rewritten.
    pub gtree_entries_repaired: u64,
    /// Total G-tree matrix entries (what a full rebuild rewrites).
    pub gtree_entries_total: u64,
    /// Wall time of the G-tree fold, milliseconds.
    pub gtree_wall_ms: u64,
}

impl RepairReport {
    /// Combined wall time of the last repair, milliseconds.
    pub fn wall_ms(&self) -> u64 {
        self.label_wall_ms + self.gtree_wall_ms
    }
}

/// Shared mutable state behind every clone of one [`Engine`].
///
/// Lock order (when nested): `gtree_state` → `writer` → `gtree_pending`
/// → `report`. `apply_updates` takes `writer` → `gtree_pending`; the
/// G-tree fold holds `gtree_state` across its repair and briefly nests
/// the other two.
struct EngineShared {
    cell: SnapshotCell<EngineSnapshot>,
    /// Serializes publication (updates, label installs); readers never
    /// take it.
    writer: Mutex<()>,
    /// A background repair thread is running (see
    /// [`Engine::repair_in_background`]).
    repairing: AtomicBool,
    /// Bumped by every published update batch. The background repair
    /// loop compares it across a repair pass to close the orphaned-
    /// repair window: a batch landing anywhere inside the pass is
    /// detected even if its staleness was already absorbed.
    update_gen: AtomicU64,
    /// G-tree maintenance is on: `apply_updates` folds each batch into
    /// `gtree_pending` and repair passes advance `gtree_state`.
    gtree_on: AtomicBool,
    /// Touched edges not yet folded into the maintained G-tree, plus a
    /// generation counter bumped on every absorb (so the fold can clear
    /// exactly the scope it repaired).
    gtree_pending: Mutex<(RepairScope, u64)>,
    /// The maintained G-tree, when enabled.
    gtree_state: Mutex<Option<GtreeMaint>>,
    /// The last repair's footprint, for the serving metrics.
    report: Mutex<Option<RepairReport>>,
    /// The epoch-keyed answer cache, when attached
    /// ([`Engine::with_answer_cache`]). Shared by every clone so the
    /// serving workers and the updater see one coherent cache.
    cache: OnceLock<Arc<AnswerCache>>,
}

/// Options for [`Engine::from_index_dir_with`].
#[derive(Debug, Clone)]
pub struct IndexDirOptions {
    /// Backing for the flat-container loads. Defaults to
    /// [`roadnet::LoadMode::Auto`]: mmap with one-read fallback.
    pub load_mode: roadnet::LoadMode,
    /// When `labels.v2` is missing, build hub labels (and a missing
    /// `gtree.v2`) on a background thread and publish them through the
    /// snapshot swap; until then queries answer exactly via the
    /// index-free strategies. Off by default.
    pub background_build: bool,
    /// Worker threads for the background builds (0 = all cores).
    pub workers: usize,
    /// Write background-built artifacts back into the directory
    /// (atomically, via temp + rename) so the next cold start finds a
    /// complete index. On by default.
    pub persist: bool,
    /// Partitioning parameters for a background-built G-tree.
    pub gtree_params: gtree::GTreeParams,
    /// Keep the G-tree live across weight updates: load (or build) it
    /// with a repair cache and fold every update batch into it via
    /// [`gtree::GTree::repair_scoped`] during repair passes. Off by
    /// default.
    pub maintain_gtree: bool,
}

impl Default for IndexDirOptions {
    fn default() -> Self {
        IndexDirOptions {
            load_mode: roadnet::LoadMode::Auto,
            background_build: false,
            workers: 0,
            persist: true,
            gtree_params: gtree::GTreeParams::default(),
            maintain_gtree: false,
        }
    }
}

/// Write an index artifact atomically: build it as `<name>.tmp` in the
/// same directory, then rename over the final name, so a reader never
/// opens a half-written file.
fn persist_atomic(
    dir: &std::path::Path,
    name: &str,
    write: impl FnOnce(&std::path::Path) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    write(&tmp)?;
    std::fs::rename(&tmp, dir.join(name))
}

/// A road network plus optional indexes, with automatic algorithm choice
/// and lock-free live updates (see the [module docs](self) for the
/// snapshot/epoch model).
#[derive(Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
    /// Accept approximate sum answers when no index is available
    /// (3-approximation; off by default).
    allow_approx_sum: bool,
}

impl Engine {
    /// An index-free engine (the "road networks change frequently"
    /// scenario of §IV). Cheap: the graph handle is cloned, not the CSR
    /// arrays.
    pub fn new(graph: &Graph) -> Self {
        Engine::from_snapshot(NetworkSnapshot::new(graph.clone()))
    }

    /// An index-free engine over an existing snapshot (preserving its
    /// epoch and admissibility scale).
    pub fn from_snapshot(net: NetworkSnapshot) -> Self {
        Engine {
            shared: Arc::new(EngineShared {
                cell: SnapshotCell::new(Arc::new(EngineSnapshot {
                    net,
                    labels: None,
                    stale: StaleSet::fresh(),
                })),
                writer: Mutex::new(()),
                repairing: AtomicBool::new(false),
                update_gen: AtomicU64::new(0),
                gtree_on: AtomicBool::new(false),
                gtree_pending: Mutex::new((RepairScope::new(), 0)),
                gtree_state: Mutex::new(None),
                report: Mutex::new(None),
                cache: OnceLock::new(),
            }),
            allow_approx_sum: false,
        }
    }

    /// Build and attach the hub-label oracle (expensive; do it once).
    pub fn with_labels(self) -> Self {
        self.publish_labels(false);
        self
    }

    /// Attach previously built labels (e.g. from
    /// [`HubLabels::from_bytes`]). The caller asserts the labels were
    /// built for this engine's *current* graph.
    pub fn with_prebuilt_labels(self, labels: HubLabels) -> Self {
        {
            let _guard = self.shared.writer.lock().unwrap();
            let cur = self.shared.cell.load();
            self.shared.cell.store(Arc::new(EngineSnapshot {
                net: cur.net.clone(),
                labels: Some(Arc::new(labels)),
                stale: StaleSet::fresh(),
            }));
        }
        self
    }

    /// Cold-start an engine from a flat index directory written by
    /// `fannr build-index`: `graph.v2` (required) plus `labels.v2`
    /// (attached when present). Both load zero-copy behind one aligned
    /// buffer — mapped read-only when possible so a continental index
    /// pages in lazily, one `read` otherwise — with typed views over it
    /// and allocations O(sections), so start-up cost is I/O-bound rather
    /// than deserialization-bound.
    pub fn from_index_dir(dir: &std::path::Path) -> Result<Self, roadnet::flat::FlatError> {
        Self::from_index_dir_with(dir, &IndexDirOptions::default())
    }

    /// [`Engine::from_index_dir`] with explicit [`IndexDirOptions`]. With
    /// `background_build` set, a directory holding only `graph.v2` is
    /// enough: the engine starts serving immediately (exactly, via the
    /// index-free strategies) while hub labels and the G-tree build on a
    /// background thread and publish through the snapshot swap.
    pub fn from_index_dir_with(
        dir: &std::path::Path,
        opts: &IndexDirOptions,
    ) -> Result<Self, roadnet::flat::FlatError> {
        let graph = Graph::read_flat_with(&dir.join("graph.v2"), opts.load_mode)?;
        let mut engine = Engine::new(&graph);
        let labels_path = dir.join("labels.v2");
        let have_labels = labels_path.exists();
        if have_labels {
            let labels = HubLabels::read_flat_with(&labels_path, opts.load_mode)?;
            roadnet::flat::ensure(
                labels.num_nodes() == graph.num_nodes(),
                "labels node count matches graph",
            )?;
            engine = engine.with_prebuilt_labels(labels);
        }
        let gtree_path = dir.join("gtree.v2");
        let mut have_gtree = true;
        if opts.maintain_gtree {
            if gtree_path.exists() {
                let tree = gtree::GTree::read_flat_with(&gtree_path, opts.load_mode)?;
                engine.enable_gtree_maintenance_prebuilt(tree, opts.workers);
            } else {
                have_gtree = false;
            }
        }
        if opts.background_build && (!have_labels || !have_gtree) {
            engine.complete_index_in_background(dir, opts);
        } else if !have_gtree {
            // Maintenance requested without a background builder: pay for
            // the tree synchronously so the maintained index exists on
            // return.
            engine.install_gtree_maintenance(opts.gtree_params, opts.workers);
        }
        Ok(engine)
    }

    /// Build whatever the index directory is missing, on one background
    /// thread with the parallel builders: hub labels first (published
    /// through the same snapshot swap as [`Engine::repair_indexes`] —
    /// queries keep answering exactly via the index-free strategies until
    /// the swap lands), then a missing `gtree.v2`. Artifacts are built
    /// against the snapshot pinned at call time (for a freshly cold-
    /// started engine, exactly the `graph.v2` on disk) and written
    /// atomically via temp + rename, so a concurrent cold start never
    /// sees a torn file. Returns `false` when a build or repair thread is
    /// already running.
    pub fn complete_index_in_background(
        &self,
        dir: &std::path::Path,
        opts: &IndexDirOptions,
    ) -> bool {
        if self.shared.repairing.swap(true, Ordering::SeqCst) {
            return false;
        }
        let engine = self.clone();
        let dir = dir.to_path_buf();
        let opts = opts.clone();
        let disk = self.snapshot();
        std::thread::spawn(move || {
            if !disk.has_labels() {
                let labels = Arc::new(HubLabels::build_parallel(disk.graph(), opts.workers));
                if opts.persist {
                    let _ = persist_atomic(&dir, "labels.v2", |p| labels.write_flat(p));
                }
                // Publish only while the live epoch still matches the
                // build snapshot: after an update batch these labels no
                // longer describe the live weights (the persisted copy
                // stays valid — it matches graph.v2, not the live graph).
                let guard = engine.shared.writer.lock().unwrap();
                let cur = engine.shared.cell.load();
                if cur.epoch() == disk.epoch() && !cur.has_labels() {
                    engine.shared.cell.store(Arc::new(EngineSnapshot {
                        net: cur.net.clone(),
                        labels: Some(labels),
                        stale: StaleSet::fresh(),
                    }));
                }
                drop(guard);
            }
            let need_file = opts.persist && !dir.join("gtree.v2").exists();
            let need_maint = opts.maintain_gtree && !engine.gtree_maintenance_enabled();
            if need_file || need_maint {
                let (tree, cache) =
                    gtree::GTree::build_with_cache(disk.graph(), opts.gtree_params, opts.workers);
                if need_file {
                    let _ = persist_atomic(&dir, "gtree.v2", |p| tree.write_flat(p));
                }
                if need_maint
                    && !engine.install_gtree_prebuilt(tree, cache, disk.epoch(), opts.workers)
                {
                    // The epoch moved past the disk graph mid-build; the
                    // persisted tree still matches graph.v2, but the
                    // maintained one must match the live weights.
                    engine.install_gtree_maintenance(opts.gtree_params, opts.workers);
                }
            }
            engine.shared.repairing.store(false, Ordering::SeqCst);
            if engine.needs_repair() {
                // Updates that landed mid-build saw `repairing` set and
                // skipped their own repair kick; pick them up.
                engine.repair_in_background();
            } else if !engine.has_labels() {
                // The epoch moved before the swap: the disk-graph labels
                // were persisted but never published. Build labels for
                // the live graph (restarting on further moves).
                engine.publish_labels(false);
            }
        });
        true
    }

    /// Allow `APX-sum` (guaranteed 3-approximation) for index-free sum
    /// queries instead of the exact-but-slower `R-List`.
    pub fn allow_approx_sum(mut self, yes: bool) -> Self {
        self.allow_approx_sum = yes;
        self
    }

    /// Attach an epoch-keyed answer cache holding up to `capacity`
    /// answers (see [`crate::locality`] for the coherence contract).
    /// Cached answers are bit-identical to recomputation by construction;
    /// [`Engine::apply_updates`] invalidates affected entries and
    /// promotes provably-unaffected ones. Shared by all clones of this
    /// engine; the first attachment wins.
    pub fn with_answer_cache(self, capacity: usize) -> Self {
        let _ = self.shared.cache.set(Arc::new(AnswerCache::new(capacity)));
        self
    }

    /// Whether an answer cache is attached.
    pub fn has_answer_cache(&self) -> bool {
        self.shared.cache.get().is_some()
    }

    /// Counter snapshot of the attached answer cache, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.get().map(|c| c.stats())
    }

    /// Pin the current snapshot. Wait-free; the returned `Arc` keeps that
    /// exact epoch (graph + indexes + staleness) alive for as long as the
    /// caller holds it. Every `query*` method pins exactly once, so each
    /// answer is consistent with exactly one epoch.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared.cell.load()
    }

    /// The currently published epoch (0 for a fresh engine; +1 per
    /// [`Engine::apply_updates`] batch).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Whether the current labels lag the current graph (queries stay
    /// exact either way; see [`GuardedLabelOracle`]).
    pub fn is_stale(&self) -> bool {
        self.snapshot().is_stale()
    }

    pub fn has_labels(&self) -> bool {
        self.snapshot().has_labels()
    }

    /// Apply a batch of weight updates and publish the next epoch without
    /// blocking readers: in-flight queries finish on the snapshot they
    /// pinned; subsequent queries see the new weights immediately (hub
    /// labels go stale and fall back to exact search for affected pairs
    /// until repaired). All-or-nothing: on any validation error
    /// ([`UpdateError`]) nothing is published.
    ///
    /// Returns the new epoch. Concurrent callers serialize on a writer
    /// lock; call [`Engine::repair_in_background`] afterwards to restore
    /// full label speed.
    pub fn apply_updates(&self, updates: &[WeightUpdate]) -> Result<u64, UpdateError> {
        let _guard = self.shared.writer.lock().unwrap();
        let cur = self.shared.cell.load();
        let prev_epoch = cur.epoch();
        let (net, applied) = cur.net.apply(updates)?;
        let epoch = net.epoch();
        let scale = net.admissibility_scale();
        let mut stale = cur.stale.clone();
        if cur.labels.is_some() {
            stale.absorb(&applied);
        }
        if self.shared.gtree_on.load(Ordering::SeqCst) {
            // Fold the batch into the G-tree's pending scope *before*
            // publishing the snapshot: any reader that sees the new epoch
            // is then guaranteed to see a pending scope covering it.
            let mut pending = self.shared.gtree_pending.lock().unwrap();
            pending.0.absorb(&applied);
            pending.1 = pending.1.wrapping_add(1);
        }
        self.shared.update_gen.fetch_add(1, Ordering::SeqCst);
        self.shared.cell.store(Arc::new(EngineSnapshot {
            net,
            labels: cur.labels.clone(),
            stale,
        }));
        if let Some(cache) = self.shared.cache.get() {
            // Region-based cache maintenance, still under the writer lock
            // so batches reach the cache in publication order: entries
            // whose dependence region provably avoids every touched edge
            // endpoint carry over to the new epoch, the rest drop
            // (coordinates are epoch-invariant, so `cur`'s graph serves).
            let graph = cur.graph();
            let touched: Vec<Pt> = applied
                .iter()
                .flat_map(|a| {
                    let cu = graph.coord(a.u);
                    let cv = graph.coord(a.v);
                    [Pt::new(cu.x, cu.y), Pt::new(cv.x, cv.y)]
                })
                .collect();
            cache.on_update(prev_epoch, epoch, &touched, scale);
        }
        Ok(epoch)
    }

    /// Repair every stale index on the current graph and publish,
    /// synchronously: scoped label repair (replay only the hubs whose
    /// certificates cross a touched edge) plus, when G-tree maintenance
    /// is on, a scoped G-tree fold. Queries keep running (and stay
    /// exact) throughout; if updates land while repairing, the repair
    /// restarts on the newer graph. No-op when everything is already
    /// fresh. Returns the epoch whose labels are fresh on return.
    pub fn repair_indexes(&self) -> u64 {
        let epoch = self.publish_labels(true);
        self.fold_gtree();
        epoch
    }

    /// Anything for a repair pass to do: stale labels, or a maintained
    /// G-tree with unfolded updates. Serving tiers surface this as the
    /// health `stale` flag so clients can wait for full convergence.
    pub fn needs_repair(&self) -> bool {
        if self.is_stale() {
            return true;
        }
        self.shared.gtree_on.load(Ordering::SeqCst)
            && !self.shared.gtree_pending.lock().unwrap().0.is_empty()
    }

    /// [`Engine::repair_indexes`] on a background thread. Returns `false`
    /// if a repair thread is already running (the running thread will
    /// pick up any newer updates before exiting). Fire-and-forget: the
    /// serving layer calls this after each update batch.
    pub fn repair_in_background(&self) -> bool {
        if self.shared.repairing.swap(true, Ordering::SeqCst) {
            return false;
        }
        let engine = self.clone();
        std::thread::spawn(move || loop {
            let gen = engine.shared.update_gen.load(Ordering::SeqCst);
            engine.repair_indexes();
            engine.shared.repairing.store(false, Ordering::SeqCst);
            // Close the orphaned-repair window: any batch published
            // inside this pass saw `repairing` set and skipped its own
            // kick, so re-check after clearing the flag. The generation
            // counter catches even batches whose staleness the pass
            // already absorbed (e.g. one landing between the staleness
            // check and the publish); a batch landing after this check
            // sees the cleared flag and kicks its own repair.
            let missed =
                engine.shared.update_gen.load(Ordering::SeqCst) != gen || engine.needs_repair();
            if missed && !engine.shared.repairing.swap(true, Ordering::SeqCst) {
                continue;
            }
            break;
        });
        true
    }

    /// The footprint of the most recent index repair (scoped or full),
    /// or `None` if no repair has run yet.
    pub fn last_repair_report(&self) -> Option<RepairReport> {
        *self.shared.report.lock().unwrap()
    }

    /// Build labels for the current graph and publish them fresh,
    /// restarting if the graph moves mid-build. With `only_if_stale`,
    /// exit early when there is nothing to repair. A snapshot that
    /// already carries labels plus a non-empty staleness ledger takes
    /// the scoped-repair path: only hubs whose tight-edge certificates
    /// cross a touched edge are replayed, bit-identical to a rebuild.
    fn publish_labels(&self, only_if_stale: bool) -> u64 {
        loop {
            let pinned = self.snapshot();
            if only_if_stale && !pinned.is_stale() {
                return pinned.epoch();
            }
            let t0 = Instant::now();
            let (labels, repaired, total) = match &pinned.labels {
                Some(old) if !pinned.stale.is_fresh() => {
                    let touched: Vec<(NodeId, NodeId)> =
                        pinned.stale.scope().touched_pairs().collect();
                    let (next, stats) = old.repair_scoped(pinned.graph(), &touched);
                    (
                        Arc::new(next),
                        stats.roots_searched as u64,
                        stats.roots_total as u64,
                    )
                }
                _ => {
                    let n = pinned.graph().num_nodes() as u64;
                    (Arc::new(HubLabels::build(pinned.graph())), n, n)
                }
            };
            let guard = self.shared.writer.lock().unwrap();
            let cur = self.shared.cell.load();
            if cur.epoch() == pinned.epoch() {
                self.shared.cell.store(Arc::new(EngineSnapshot {
                    net: cur.net.clone(),
                    labels: Some(labels),
                    stale: StaleSet::fresh(),
                }));
                drop(guard);
                let mut report = self.shared.report.lock().unwrap();
                let r = report.get_or_insert_with(RepairReport::default);
                r.epoch = pinned.epoch();
                r.labels_repaired = repaired;
                r.labels_total = total;
                r.label_wall_ms = t0.elapsed().as_millis() as u64;
                return pinned.epoch();
            }
            drop(guard); // weights moved while building; rebuild on the newer graph
        }
    }

    /// Enable G-tree maintenance by building the tree (plus its repair
    /// cache) for the current graph. Subsequent update batches
    /// accumulate a pending [`RepairScope`] that repair passes fold into
    /// the tree via [`gtree::GTree::repair_scoped`].
    pub fn with_gtree_maintenance(self, params: gtree::GTreeParams, workers: usize) -> Self {
        self.install_gtree_maintenance(params, workers);
        self
    }

    /// [`Engine::with_gtree_maintenance`] on an engine reference.
    pub fn install_gtree_maintenance(&self, params: gtree::GTreeParams, workers: usize) {
        loop {
            let pinned = self.snapshot();
            let (tree, cache) = gtree::GTree::build_with_cache(pinned.graph(), params, workers);
            if self.install_gtree_prebuilt(tree, cache, pinned.epoch(), workers) {
                return;
            }
            // Weights moved mid-build; rebuild on the newer graph.
        }
    }

    /// Enable G-tree maintenance from a previously built tree. The
    /// caller asserts the tree was built for this engine's *current*
    /// graph (same contract as [`Engine::with_prebuilt_labels`]); the
    /// repair cache is reconstructed from the tree's own partition. If
    /// the epoch moves mid-reconstruction the tree is rebuilt from
    /// scratch on the live graph.
    pub fn enable_gtree_maintenance_prebuilt(&self, tree: gtree::GTree, workers: usize) {
        let params = tree.params();
        let pinned = self.snapshot();
        let cache = gtree::RepairCache::for_tree(&tree, pinned.graph(), workers);
        if !self.install_gtree_prebuilt(tree, cache, pinned.epoch(), workers) {
            self.install_gtree_maintenance(params, workers);
        }
    }

    /// Whether G-tree maintenance is enabled.
    pub fn gtree_maintenance_enabled(&self) -> bool {
        self.shared.gtree_on.load(Ordering::SeqCst)
    }

    /// A handle to the maintained G-tree (cheap: the backing arrays are
    /// shared), or `None` when maintenance is off. The tree matches the
    /// epoch of the last completed repair pass, not necessarily the
    /// live epoch.
    pub fn maintained_gtree(&self) -> Option<gtree::GTree> {
        let state = self.shared.gtree_state.lock().unwrap();
        state.as_ref().map(|m| m.tree.clone())
    }

    /// Install a (tree, cache) pair built for `epoch` and switch
    /// maintenance on; fails (returning `false`) when the live epoch has
    /// already moved past `epoch`.
    fn install_gtree_prebuilt(
        &self,
        tree: gtree::GTree,
        cache: gtree::RepairCache,
        epoch: u64,
        workers: usize,
    ) -> bool {
        let mut state = self.shared.gtree_state.lock().unwrap();
        let guard = self.shared.writer.lock().unwrap();
        if self.shared.cell.load().epoch() != epoch {
            return false;
        }
        self.shared.gtree_pending.lock().unwrap().0 = RepairScope::new();
        *state = Some(GtreeMaint {
            tree,
            cache,
            workers,
            epoch,
        });
        self.shared.gtree_on.store(true, Ordering::SeqCst);
        drop(guard);
        true
    }

    /// Fold every pending touched edge into the maintained G-tree with
    /// a scoped repair, looping until the tree has caught up with a
    /// consistent (snapshot, pending-scope) pair. No-op when
    /// maintenance is off or nothing is pending.
    fn fold_gtree(&self) {
        if !self.shared.gtree_on.load(Ordering::SeqCst) {
            return;
        }
        let mut state = self.shared.gtree_state.lock().unwrap();
        let Some(maint) = state.as_mut() else { return };
        loop {
            // Pin the snapshot and clone the pending scope under the
            // writer lock: `apply_updates` publishes both atomically, so
            // the clone covers exactly the diff from the tree's base
            // graph to the pinned epoch (a superset — round-tripped
            // edges — is safe).
            let (pinned, scope, gen) = {
                let _guard = self.shared.writer.lock().unwrap();
                let pinned = self.shared.cell.load();
                let pending = self.shared.gtree_pending.lock().unwrap();
                (pinned, pending.0.clone(), pending.1)
            };
            let epoch = pinned.epoch();
            if scope.is_empty() && maint.epoch == epoch {
                return;
            }
            let t0 = Instant::now();
            let touched: Vec<(NodeId, NodeId)> = scope.touched_pairs().collect();
            let (tree, stats) =
                maint
                    .tree
                    .repair_scoped(pinned.graph(), &mut maint.cache, &touched, maint.workers);
            maint.tree = tree;
            maint.epoch = epoch;
            {
                let mut report = self.shared.report.lock().unwrap();
                let r = report.get_or_insert_with(RepairReport::default);
                r.epoch = epoch;
                r.scoped_leaves = stats.scoped_leaves;
                r.gtree_nodes_recomputed = stats.nodes_recomputed;
                r.gtree_entries_repaired = stats.entries_repaired;
                r.gtree_entries_total = stats.entries_total;
                r.gtree_wall_ms = t0.elapsed().as_millis() as u64;
            }
            // Clear the pending scope only if nothing was absorbed since
            // the clone (generation unchanged ⇒ no batch published ⇒ the
            // live epoch is still the one the tree now matches).
            let caught_up = {
                let _guard = self.shared.writer.lock().unwrap();
                let mut pending = self.shared.gtree_pending.lock().unwrap();
                if pending.1 == gen {
                    pending.0 = RepairScope::new();
                    true
                } else {
                    false
                }
            };
            if caught_up {
                return;
            }
        }
    }

    /// The strategy `query` would use for this aggregate (on the current
    /// snapshot).
    pub fn strategy_for(&self, agg: Aggregate) -> Strategy {
        self.strategy_on(&self.snapshot(), agg)
    }

    fn strategy_on(&self, snap: &EngineSnapshot, agg: Aggregate) -> Strategy {
        if snap.has_labels() {
            Strategy::IerKnnLabels
        } else {
            match agg {
                Aggregate::Max => Strategy::ExactMax,
                Aggregate::Sum if self.allow_approx_sum => Strategy::ApxSumIne,
                Aggregate::Sum => Strategy::RListIne,
            }
        }
    }

    /// Answer an FANN_R query with the §VII decision rule. `Ok(None)`
    /// when no data point reaches `ceil(phi |Q|)` query points.
    ///
    /// `P` and `Q` are treated as sets: duplicate ids are dropped (first
    /// occurrence kept) before validation and dispatch, so every strategy
    /// sees the same duplicate-free query.
    pub fn query(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<FannAnswer>, QueryError> {
        self.query_on(&self.snapshot(), p, q, phi, agg)
    }

    fn query_on(
        &self,
        snap: &EngineSnapshot,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let query = FannQuery::checked(p, q, phi, agg, graph)?;
        let answer = match self.strategy_on(snap, agg) {
            Strategy::IerKnnLabels => {
                let oracle = snap.oracle().expect("strategy implies labels");
                let rtree = build_p_rtree(graph, p);
                let gphi = IerPhi::new(graph, oracle, q);
                ier_knn(graph, &query, &rtree, &gphi)
            }
            Strategy::ExactMax => exact_max(graph, &query),
            Strategy::RListIne => {
                let gphi = InePhi::new(graph, q);
                r_list(graph, &query, &gphi)
            }
            Strategy::ApxSumIne => {
                let gphi = InePhi::new(graph, q);
                apx_sum(graph, &query, &gphi)
            }
        };
        Ok(answer)
    }

    /// [`Engine::query`] with live instrumentation: returns the identical
    /// answer plus a [`SearchStats`] snapshot of the work performed
    /// (graph-expansion effort, `g_phi`/oracle/label activity, R-tree node
    /// accesses, pruned candidates).
    ///
    /// The untraced [`Engine::query`] path pays nothing for this: tracing
    /// is a separate monomorphization over `&StatsSink`.
    pub fn query_traced(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<(Option<FannAnswer>, SearchStats), QueryError> {
        self.query_traced_on(&self.snapshot(), p, q, phi, agg)
    }

    fn query_traced_on(
        &self,
        snap: &EngineSnapshot,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<(Option<FannAnswer>, SearchStats), QueryError> {
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let query = FannQuery::checked(p, q, phi, agg, graph)?;
        let sink = StatsSink::new();
        let answer = match self.strategy_on(snap, agg) {
            Strategy::IerKnnLabels => {
                let oracle = snap.oracle().expect("strategy implies labels");
                let rtree = build_p_rtree(graph, p);
                let gphi = IerPhi::with_recorder(graph, oracle, q, &sink);
                ier_knn_traced(graph, &query, &rtree, &gphi, IerBound::Flexible, &sink)
            }
            Strategy::ExactMax => exact_max_traced(graph, &query, &mut ScratchPool::new(), &sink),
            Strategy::RListIne => {
                let gphi = InePhi::with_recorder(graph, q, &sink);
                r_list_traced(graph, &query, &gphi, &mut ScratchPool::new(), &sink)
            }
            Strategy::ApxSumIne => {
                let gphi = InePhi::with_recorder(graph, q, &sink);
                apx_sum_traced(graph, &query, &gphi, &sink)
            }
        };
        Ok((answer, sink.snapshot()))
    }

    /// Answer a `k`-FANN_R query (§V). Always exact; `APX-sum` has no
    /// top-k adaptation (per the paper), so index-free sum uses `R-List`.
    pub fn query_topk(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        k: usize,
    ) -> Result<KFannAnswer, QueryError> {
        let snap = self.snapshot();
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let query = FannQuery::checked(p, q, phi, agg, graph)?;
        let answer = match (snap.oracle(), agg) {
            (Some(oracle), _) => {
                let rtree = build_p_rtree(graph, p);
                let gphi = IerPhi::new(graph, oracle, q);
                ier_topk(graph, &query, &rtree, &gphi, k)
            }
            (None, Aggregate::Max) => exact_max_topk(graph, &query, k),
            (None, Aggregate::Sum) => {
                let gphi = InePhi::new(graph, q);
                rlist_topk(graph, &query, &gphi, k)
            }
        };
        Ok(answer)
    }

    /// Answer a stream of queries over a fixed worker pool, recycling
    /// per-worker search state across the stream. Results come back in
    /// input order, each bit-identical to what [`Engine::query`] returns
    /// for the same query. The whole batch pins one snapshot, so every
    /// answer reflects the same epoch even under concurrent updates.
    ///
    /// `workers = 0` means "use the machine's available parallelism".
    pub fn query_batch(
        &self,
        queries: &[BatchQuery],
        workers: usize,
    ) -> Vec<Result<Option<FannAnswer>, QueryError>> {
        self.batch_runner(workers).run(queries)
    }

    /// [`Engine::query_batch`] with instrumentation: identical answers plus
    /// a per-strategy [`BatchReport`] (work counters and a latency
    /// histogram per strategy, merged across workers).
    pub fn query_batch_traced(
        &self,
        queries: &[BatchQuery],
        workers: usize,
    ) -> (Vec<Result<Option<FannAnswer>, QueryError>>, BatchReport) {
        self.batch_runner(workers).run_traced(queries)
    }

    /// A reusable handle for running query batches (see
    /// [`Engine::query_batch`]).
    pub fn batch_runner(&self, workers: usize) -> BatchRunner {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        BatchRunner {
            engine: self.clone(),
            workers,
        }
    }

    /// One query of a batch, answered with this worker's recycled state on
    /// the batch's pinned snapshot. Dispatch mirrors [`Engine::query`]
    /// strategy-for-strategy, so the answers are identical; only the
    /// allocation behavior differs.
    fn query_on_with_state(
        &self,
        snap: &EngineSnapshot,
        bq: &BatchQuery,
        state: &mut WorkerState,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let graph = snap.graph();
        let p_canon = canonical(&bq.p);
        let p = p_canon.as_deref().unwrap_or(&bq.p);
        let q_canon = canonical(&bq.q);
        let q = q_canon.as_deref().unwrap_or(&bq.q);
        let query = FannQuery::checked(p, q, bq.phi, bq.agg, graph)?;
        let WorkerState { pool, ine } = state;
        let answer = match self.strategy_on(snap, bq.agg) {
            Strategy::IerKnnLabels => {
                let oracle = snap.oracle().expect("strategy implies labels");
                let rtree = build_p_rtree(graph, p);
                let gphi = IerPhi::new(graph, oracle, q);
                ier_knn(graph, &query, &rtree, &gphi)
            }
            Strategy::ExactMax => exact_max_pooled(graph, &query, pool),
            Strategy::RListIne => r_list_pooled(graph, &query, rebind_ine(ine, graph, q, ()), pool),
            Strategy::ApxSumIne => apx_sum(graph, &query, rebind_ine(ine, graph, q, ())),
        };
        Ok(answer)
    }

    /// [`Engine::query`] under a [`CancelToken`]: the search cooperatively
    /// polls the token and returns [`QueryError::Cancelled`] — never a
    /// partial or wrong answer — once the token's deadline passes or
    /// [`CancelToken::cancel`] is called. With a live (unexpired,
    /// uncancelled) token the answer is identical to [`Engine::query`].
    ///
    /// For a stream of requests, prefer [`Engine::session`], which keeps
    /// the search scratch state across queries.
    pub fn query_cancellable(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        token: &CancelToken,
    ) -> Result<Option<FannAnswer>, QueryError> {
        self.session(token).query(p, q, phi, agg)
    }

    /// [`Engine::query_cancellable`] with live instrumentation: the
    /// cancellable answer plus a [`SearchStats`] snapshot, composing the
    /// [`Engine::query_traced`] recorder with the cooperative token. The
    /// serving layer uses this so `/metricsz`-style dumps can aggregate
    /// search effort across requests.
    pub fn query_traced_cancellable(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        token: &CancelToken,
    ) -> Result<(Option<FannAnswer>, SearchStats), QueryError> {
        self.query_traced_cancellable_on(&self.snapshot(), p, q, phi, agg, token)
    }

    fn query_traced_cancellable_on(
        &self,
        snap: &EngineSnapshot,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        token: &CancelToken,
    ) -> Result<(Option<FannAnswer>, SearchStats), QueryError> {
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let query = FannQuery::checked(p, q, phi, agg, graph)?;
        let sink = StatsSink::new();
        let answer = match self.strategy_on(snap, agg) {
            Strategy::IerKnnLabels => {
                let oracle = snap.oracle().expect("strategy implies labels");
                let rtree = build_p_rtree(graph, p);
                let gphi = IerPhi::with_recorder(graph, oracle, q, &sink);
                ier_knn_cancellable(
                    graph,
                    &query,
                    &rtree,
                    &gphi,
                    IerBound::Flexible,
                    &sink,
                    token,
                )
            }
            Strategy::ExactMax => {
                exact_max_cancellable(graph, &query, &mut ScratchPool::new(), &sink, token)
            }
            Strategy::RListIne => {
                let gphi = InePhi::with_recorder_cancel(graph, q, &sink, token);
                r_list_cancellable(graph, &query, &gphi, &mut ScratchPool::new(), &sink, token)
            }
            Strategy::ApxSumIne => {
                let gphi = InePhi::with_recorder_cancel(graph, q, &sink, token);
                apx_sum_cancellable(graph, &query, &gphi, &sink, token)
            }
        };
        match answer {
            Ok(a) => Ok((a, sink.snapshot())),
            Err(Cancelled) => Err(QueryError::Cancelled),
        }
    }

    /// [`Engine::query`] through the answer cache: probe first, compute
    /// and insert on a miss. The returned answer is bit-identical to
    /// [`Engine::query`] either way (a hit replays an answer computed on a
    /// snapshot with the same epoch — see [`crate::locality`]). Also
    /// returns the pinned epoch, so coherence tests can validate the
    /// answer against that exact graph. Without an attached cache this is
    /// plain [`Engine::query`] with [`CacheOutcome::Bypass`].
    pub fn query_cached(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<(Option<FannAnswer>, CacheOutcome, u64), QueryError> {
        let snap = self.snapshot();
        let epoch = snap.epoch();
        let Some(cache) = self.shared.cache.get() else {
            let answer = self.query_on(&snap, p, q, phi, agg)?;
            return Ok((answer, CacheOutcome::Bypass, epoch));
        };
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        FannQuery::checked(p, q, phi, agg, graph)?;
        let strategy = self.strategy_on(&snap, agg);
        let key = cache_key(p, q, phi, agg, strategy);
        if let Some(hit) = cache.lookup(&key, epoch) {
            return Ok((hit.answer, CacheOutcome::Hit, epoch));
        }
        let answer = self.query_on(&snap, p, q, phi, agg)?;
        cache_store(cache, &snap, &key, agg, answer.as_ref(), strategy);
        Ok((answer, CacheOutcome::Miss, epoch))
    }

    /// The serving-path combination: [`Engine::query_cached`] semantics
    /// with the instrumentation and cooperative cancellation of
    /// [`Engine::query_traced_cancellable`]. A hit costs no search work
    /// (empty [`SearchStats`]); a cancelled computation inserts nothing.
    pub fn query_cached_traced_cancellable(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        token: &CancelToken,
    ) -> Result<(Option<FannAnswer>, SearchStats, CacheOutcome), QueryError> {
        let snap = self.snapshot();
        let Some(cache) = self.shared.cache.get() else {
            let (answer, stats) = self.query_traced_cancellable_on(&snap, p, q, phi, agg, token)?;
            return Ok((answer, stats, CacheOutcome::Bypass));
        };
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        FannQuery::checked(p, q, phi, agg, graph)?;
        let strategy = self.strategy_on(&snap, agg);
        let key = cache_key(p, q, phi, agg, strategy);
        if let Some(hit) = cache.lookup(&key, snap.epoch()) {
            return Ok((hit.answer, SearchStats::default(), CacheOutcome::Hit));
        }
        let (answer, stats) = self.query_traced_cancellable_on(&snap, p, q, phi, agg, token)?;
        cache_store(cache, &snap, &key, agg, answer.as_ref(), strategy);
        Ok((answer, stats, CacheOutcome::Miss))
    }

    /// Answer a batch of (typically co-located) queries on **one** pinned
    /// snapshot, computing every cache miss that shares a canonical `Q`
    /// from one [`SharedExpansion`]: the `|Q|` Dijkstra frontiers are
    /// expanded at most once per distinct `Q` and each query replays them
    /// through its own filtered object view. Answers are bit-identical to
    /// per-query [`Engine::query`] because the per-strategy drivers are
    /// the same code over provably identical settle sequences; strategies
    /// that are not stream-driven (IER-kNN, APX-sum) fall back to the
    /// per-query path within the same pinned snapshot. With a cache
    /// attached, hits are served first and misses are inserted.
    pub fn query_colocated(
        &self,
        queries: &[BatchQuery],
    ) -> Vec<Result<Option<FannAnswer>, QueryError>> {
        let snap = self.snapshot();
        let graph = snap.graph();
        let epoch = snap.epoch();
        let cache = self.shared.cache.get();
        let n = queries.len();
        let mut results: Vec<Option<Result<Option<FannAnswer>, QueryError>>> =
            (0..n).map(|_| None).collect();
        struct Prep {
            p: Vec<NodeId>,
            q: Vec<NodeId>,
            strategy: Strategy,
        }
        // Canonicalize, validate, and probe the cache.
        let mut preps: Vec<Option<Prep>> = (0..n).map(|_| None).collect();
        for (i, bq) in queries.iter().enumerate() {
            let p = canonical(&bq.p).unwrap_or_else(|| bq.p.clone());
            let q = canonical(&bq.q).unwrap_or_else(|| bq.q.clone());
            if let Err(e) = FannQuery::checked(&p, &q, bq.phi, bq.agg, graph) {
                results[i] = Some(Err(e));
                continue;
            }
            let strategy = self.strategy_on(&snap, bq.agg);
            if let Some(c) = cache {
                let key = cache_key(&p, &q, bq.phi, bq.agg, strategy);
                if let Some(hit) = c.lookup(&key, epoch) {
                    results[i] = Some(Ok(hit.answer));
                    continue;
                }
            }
            preps[i] = Some(Prep { p, q, strategy });
        }
        // Group stream-driven misses by their exact canonical Q (max and
        // sum share: both drivers consume the same per-source frontiers);
        // everything else goes through the per-query path.
        let mut groups: HashMap<Vec<NodeId>, Vec<usize>> = HashMap::new();
        let mut singles: Vec<usize> = Vec::new();
        for (i, prep) in preps.iter().enumerate() {
            let Some(prep) = prep else { continue };
            match prep.strategy {
                Strategy::ExactMax | Strategy::RListIne => {
                    groups.entry(prep.q.clone()).or_default().push(i);
                }
                _ => singles.push(i),
            }
        }
        let mut pool = ScratchPool::new();
        for (qvec, mut idxs) in groups {
            if idxs.len() == 1 {
                // No sharing to be had; the per-query path recycles its
                // scratches more cheaply.
                singles.append(&mut idxs);
                continue;
            }
            let mut shared = SharedExpansion::with_pool(graph, &qvec, &mut pool);
            for &i in &idxs {
                let prep = preps[i].as_ref().expect("grouped index was prepared");
                let bq = &queries[i];
                let query = FannQuery::new(&prep.p, &prep.q, bq.phi, bq.agg);
                let mut view = shared.view(&prep.p);
                let answer = match prep.strategy {
                    Strategy::ExactMax => exact_max_on_streams(&query, &mut view),
                    Strategy::RListIne => {
                        let gphi = InePhi::new(graph, &prep.q);
                        r_list_on_streams(&query, &gphi, &mut view)
                    }
                    _ => unreachable!("grouped strategies are stream-driven"),
                };
                if let Some(c) = cache {
                    let key = cache_key(&prep.p, &prep.q, bq.phi, bq.agg, prep.strategy);
                    cache_store(c, &snap, &key, bq.agg, answer.as_ref(), prep.strategy);
                }
                results[i] = Some(Ok(answer));
            }
            shared.recycle_into(&mut pool);
        }
        let mut state = WorkerState { pool, ine: None };
        for i in singles {
            let prep = preps[i].take().expect("single index was prepared");
            let bq = &queries[i];
            let cbq = BatchQuery::new(prep.p.clone(), prep.q.clone(), bq.phi, bq.agg);
            let answer = self.query_on_with_state(&snap, &cbq, &mut state);
            if let (Some(c), Ok(a)) = (cache, &answer) {
                let key = cache_key(&prep.p, &prep.q, bq.phi, bq.agg, prep.strategy);
                cache_store(c, &snap, &key, bq.agg, a.as_ref(), prep.strategy);
            }
            results[i] = Some(answer);
        }
        results
            .into_iter()
            .map(|r| r.expect("every query answered exactly once"))
            .collect()
    }

    /// A long-lived handle for answering a stream of cancellable queries:
    /// one recycled scratch pool and INE backend (like the batch layer's
    /// per-worker state), plus a borrowed [`CancelToken`] polled by every
    /// search. The serving worker re-arms the token per request
    /// ([`CancelToken::arm`]) and keeps the session for its lifetime.
    ///
    /// Each query pins the then-current snapshot, so a session transparently
    /// follows epoch swaps mid-stream.
    pub fn session<'t>(&self, token: &'t CancelToken) -> QuerySession<'t> {
        QuerySession {
            engine: self.clone(),
            token,
            pool: ScratchPool::new(),
            ine: None,
            ine_epoch: 0,
        }
    }

    /// Evaluate `g_phi(p, Q)` directly with the best available backend
    /// (Definition 1 as a public operation). The inputs pass through the
    /// same validation as [`Engine::query`] — `phi = 0`, `phi = NaN`, an
    /// empty `Q`, or out-of-range node ids are a [`QueryError`], never a
    /// panic. `Ok(None)` means `p` cannot reach `ceil(phi |Q|)` query
    /// points.
    pub fn g_phi(
        &self,
        p: NodeId,
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<crate::gphi::GPhiResult>, QueryError> {
        let snap = self.snapshot();
        let graph = snap.graph();
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let p_slice = [p];
        let query = FannQuery::checked(&p_slice, q, phi, agg, graph)?;
        let k = query.subset_size();
        Ok(match snap.oracle() {
            Some(oracle) => IerPhi::new(graph, oracle, q).eval(p, k, agg),
            None => InePhi::new(graph, q).eval(p, k, agg),
        })
    }
}

/// One query of a batch stream: an owned `(P, Q, phi, g)` quadruple
/// (the graph is the engine's).
#[derive(Debug, Clone)]
pub struct BatchQuery {
    pub p: Vec<NodeId>,
    pub q: Vec<NodeId>,
    pub phi: f64,
    pub agg: Aggregate,
}

impl BatchQuery {
    pub fn new(p: Vec<NodeId>, q: Vec<NodeId>, phi: f64, agg: Aggregate) -> Self {
        BatchQuery { p, q, phi, agg }
    }
}

/// Aggregated observability for one strategy across a traced batch:
/// how many queries it answered, their summed work counters, and their
/// latency distribution.
#[derive(Debug, Clone, Default)]
pub struct StrategyReport {
    /// Queries answered by this strategy (errors excluded).
    pub queries: u64,
    /// Work counters summed over those queries.
    pub stats: SearchStats,
    /// Per-query latency distribution (p50/p90/p99 via
    /// [`LatencyHistogram::quantile_ns`]).
    pub latency: LatencyHistogram,
}

/// Per-strategy breakdown of a traced batch, returned by
/// [`BatchRunner::run_traced`]. Indexed by [`Strategy::index`].
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    per_strategy: [StrategyReport; 4],
}

impl BatchReport {
    /// The report slot for one strategy.
    pub fn strategy(&self, s: Strategy) -> &StrategyReport {
        &self.per_strategy[s.index()]
    }

    /// Strategies that answered at least one query, with their reports.
    pub fn active(&self) -> impl Iterator<Item = (Strategy, &StrategyReport)> {
        Strategy::ALL
            .iter()
            .copied()
            .zip(self.per_strategy.iter())
            .filter(|(_, r)| r.queries > 0)
    }

    /// Work counters summed over every strategy.
    pub fn total_stats(&self) -> SearchStats {
        let mut total = SearchStats::default();
        for r in &self.per_strategy {
            total.add(&r.stats);
        }
        total
    }

    /// Queries answered across all strategies (errors excluded).
    pub fn total_queries(&self) -> u64 {
        self.per_strategy.iter().map(|r| r.queries).sum()
    }

    fn record(&mut self, s: Strategy, stats: &SearchStats, elapsed: std::time::Duration) {
        let slot = &mut self.per_strategy[s.index()];
        slot.queries += 1;
        slot.stats.add(stats);
        slot.latency.record(elapsed);
    }

    fn merge(&mut self, other: &BatchReport) {
        for (a, b) in self.per_strategy.iter_mut().zip(other.per_strategy.iter()) {
            a.queries += b.queries;
            a.stats.add(&b.stats);
            a.latency.merge(&b.latency);
        }
    }
}

/// Per-worker recycled state: a scratch pool for the multi-expansion
/// algorithms and one long-lived INE backend, rebound per query.
struct WorkerState {
    pool: ScratchPool,
    ine: Option<InePhi>,
}

/// Rebind the worker's long-lived INE backend to `q` (constructing it on
/// first use), returning it ready for evaluation.
fn rebind_ine<'s, C: CancelCheck>(
    ine: &'s mut Option<InePhi<(), C>>,
    graph: &Graph,
    q: &[NodeId],
    cancel: C,
) -> &'s InePhi<(), C> {
    match ine {
        Some(backend) => backend.rebind(q),
        None => *ine = Some(InePhi::with_recorder_cancel(graph, q, (), cancel)),
    }
    ine.as_ref().expect("just ensured")
}

/// A serving-oriented query handle: [`Engine::query`] semantics plus
/// cooperative cancellation and recycled per-session search state
/// (obtained from [`Engine::session`]).
///
/// The session borrows one [`CancelToken`] for its lifetime; the owner
/// re-arms it between requests. Every search dispatched through
/// [`QuerySession::query`] polls that token and the whole query resolves
/// to [`QueryError::Cancelled`] if it fires — by construction a session
/// never reports an answer derived from a truncated search.
pub struct QuerySession<'t> {
    engine: Engine,
    token: &'t CancelToken,
    pool: ScratchPool,
    ine: Option<InePhi<(), &'t CancelToken>>,
    /// Epoch the cached INE backend's graph belongs to; a swap drops it.
    ine_epoch: u64,
}

impl QuerySession<'_> {
    /// The token every search of this session polls.
    pub fn token(&self) -> &CancelToken {
        self.token
    }

    /// Answer one query under the session's token, pinning the current
    /// snapshot. Strategy dispatch mirrors [`Engine::query`] exactly; with
    /// a live token the answer is identical, otherwise
    /// [`QueryError::Cancelled`].
    pub fn query(
        &mut self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let snap = self.engine.snapshot();
        if self.ine.is_some() && self.ine_epoch != snap.epoch() {
            // The cached backend expands a previous epoch's graph.
            self.ine = None;
        }
        self.ine_epoch = snap.epoch();
        let graph = snap.graph();
        let p_canon = canonical(p);
        let p = p_canon.as_deref().unwrap_or(p);
        let q_canon = canonical(q);
        let q = q_canon.as_deref().unwrap_or(q);
        let query = FannQuery::checked(p, q, phi, agg, graph)?;
        let answer = match self.engine.strategy_on(&snap, agg) {
            Strategy::IerKnnLabels => {
                let oracle = snap.oracle().expect("strategy implies labels");
                let rtree = build_p_rtree(graph, p);
                // Each IerPhi eval is a bounded |Q|-label scan, so polling
                // between evals (inside ier_knn_cancellable) is enough.
                let gphi = IerPhi::new(graph, oracle, q);
                ier_knn_cancellable(
                    graph,
                    &query,
                    &rtree,
                    &gphi,
                    IerBound::Flexible,
                    (),
                    self.token,
                )
            }
            Strategy::ExactMax => {
                exact_max_cancellable(graph, &query, &mut self.pool, (), self.token)
            }
            Strategy::RListIne => {
                let gphi = rebind_ine(&mut self.ine, graph, q, self.token);
                r_list_cancellable(graph, &query, gphi, &mut self.pool, (), self.token)
            }
            Strategy::ApxSumIne => {
                let gphi = rebind_ine(&mut self.ine, graph, q, self.token);
                apx_sum_cancellable(graph, &query, gphi, (), self.token)
            }
        };
        answer.map_err(|Cancelled| QueryError::Cancelled)
    }
}

/// Drives a stream of queries over a fixed pool of worker threads, one
/// long-lived backend + scratch pool per worker (the batch/throughput
/// layer; obtained from [`Engine::batch_runner`]).
///
/// Queries are pulled from a shared atomic cursor, so workers self-balance
/// on skewed workloads; results are returned in input order. Each `run`
/// pins one snapshot for the whole batch.
pub struct BatchRunner {
    engine: Engine,
    workers: usize,
}

impl BatchRunner {
    /// Worker threads this runner will spawn (before clamping to the
    /// batch size).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Answer every query; `results[i]` corresponds to `queries[i]` and is
    /// exactly what [`Engine::query`] would return for it.
    pub fn run(&self, queries: &[BatchQuery]) -> Vec<Result<Option<FannAnswer>, QueryError>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let pinned = self.engine.snapshot();
        let workers = self.workers.clamp(1, n);
        if workers == 1 {
            // Single worker: answer inline, no thread overhead.
            let mut state = WorkerState {
                pool: ScratchPool::new(),
                ine: None,
            };
            return queries
                .iter()
                .map(|bq| self.engine.query_on_with_state(&pinned, bq, &mut state))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<Option<FannAnswer>, QueryError>>> = vec![None; n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let pinned = &pinned;
                    scope.spawn(move || {
                        let mut state = WorkerState {
                            pool: ScratchPool::new(),
                            ine: None,
                        };
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((
                                i,
                                self.engine
                                    .query_on_with_state(pinned, &queries[i], &mut state),
                            ));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }

    /// [`BatchRunner::run`] with instrumentation: each query goes through
    /// the traced path and is timed; counters and latencies are
    /// aggregated per strategy, worker-locally, then merged. Answers are
    /// identical to the untraced batch (and to [`Engine::query`]).
    pub fn run_traced(
        &self,
        queries: &[BatchQuery],
    ) -> (Vec<Result<Option<FannAnswer>, QueryError>>, BatchReport) {
        let n = queries.len();
        if n == 0 {
            return (Vec::new(), BatchReport::default());
        }
        let pinned = self.engine.snapshot();
        let trace_one = |bq: &BatchQuery, report: &mut BatchReport| {
            let strategy = self.engine.strategy_on(&pinned, bq.agg);
            let t0 = Instant::now();
            let res = self
                .engine
                .query_traced_on(&pinned, &bq.p, &bq.q, bq.phi, bq.agg);
            let elapsed = t0.elapsed();
            res.map(|(answer, stats)| {
                report.record(strategy, &stats, elapsed);
                answer
            })
        };
        let workers = self.workers.clamp(1, n);
        if workers == 1 {
            let mut report = BatchReport::default();
            let results = queries
                .iter()
                .map(|bq| trace_one(bq, &mut report))
                .collect();
            return (results, report);
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<Option<FannAnswer>, QueryError>>> = vec![None; n];
        let mut report = BatchReport::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let trace_one = &trace_one;
                    scope.spawn(move || {
                        let mut local = BatchReport::default();
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, trace_one(&queries[i], &mut local)));
                        }
                        (out, local)
                    })
                })
                .collect();
            for h in handles {
                let (out, local) = h.join().expect("traced batch worker panicked");
                for (i, r) in out {
                    results[i] = Some(r);
                }
                report.merge(&local);
            }
        });
        let results = results
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect();
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x + y) % 5);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x * 2 + y) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn indexed_and_index_free_agree_with_truth() {
        let g = grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(3).collect();
        let q: Vec<u32> = vec![4, 18, 30, 44];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for phi in [0.25, 0.5, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let truth = brute_force(&g, &query).unwrap();
                let a = bare.query(&p, &q, phi, agg).unwrap().unwrap();
                let b = indexed.query(&p, &q, phi, agg).unwrap().unwrap();
                assert_eq!(a.dist, truth.dist, "bare phi={phi} {agg}");
                assert_eq!(b.dist, truth.dist, "indexed phi={phi} {agg}");
            }
        }
    }

    #[test]
    fn strategies_selected_as_documented() {
        let g = grid(3, 3);
        let bare = Engine::new(&g);
        assert_eq!(bare.strategy_for(Aggregate::Max), Strategy::ExactMax);
        assert_eq!(bare.strategy_for(Aggregate::Sum), Strategy::RListIne);
        let approx = Engine::new(&g).allow_approx_sum(true);
        assert_eq!(approx.strategy_for(Aggregate::Sum), Strategy::ApxSumIne);
        let indexed = Engine::new(&g).with_labels();
        assert!(indexed.has_labels());
        assert_eq!(indexed.strategy_for(Aggregate::Max), Strategy::IerKnnLabels);
    }

    #[test]
    fn approx_sum_within_bound() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).step_by(2).collect();
        let q: Vec<u32> = vec![0, 9, 27, 45, 63];
        let engine = Engine::new(&g).allow_approx_sum(true);
        let query = FannQuery::new(&p, &q, 0.6, Aggregate::Sum);
        let truth = brute_force(&g, &query).unwrap();
        let a = engine.query(&p, &q, 0.6, Aggregate::Sum).unwrap().unwrap();
        assert!(a.dist >= truth.dist);
        assert!(a.dist <= 3 * truth.dist);
    }

    #[test]
    fn topk_consistent_between_modes() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).collect();
        let q: Vec<u32> = vec![0, 20, 35];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let a = bare.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let b = indexed.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let da: Vec<u64> = a.iter().map(|&(_, d)| d).collect();
            let db: Vec<u64> = b.iter().map(|&(_, d)| d).collect();
            assert_eq!(da, db, "{agg}");
        }
    }

    fn mixed_batch(n: usize) -> Vec<BatchQuery> {
        // Deterministic workload mixing aggregates, phi, and query sets.
        (0..n)
            .map(|i| {
                let p: Vec<u32> = (0..49).step_by(2 + i % 3).collect();
                let q: Vec<u32> = vec![
                    (i % 49) as u32,
                    ((i * 7 + 11) % 49) as u32,
                    ((i * 13 + 23) % 49) as u32,
                ];
                let agg = if i % 2 == 0 {
                    Aggregate::Max
                } else {
                    Aggregate::Sum
                };
                BatchQuery::new(p, q, 0.34 + 0.33 * (i % 3) as f64, agg)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let g = grid(7, 7);
        let batch = mixed_batch(12);
        for engine in [Engine::new(&g), Engine::new(&g).with_labels()] {
            let sequential: Vec<_> = batch
                .iter()
                .map(|b| engine.query(&b.p, &b.q, b.phi, b.agg).unwrap().unwrap())
                .collect();
            for workers in [1usize, 3] {
                let got = engine.query_batch(&batch, workers);
                for (i, (got, want)) in got.iter().zip(&sequential).enumerate() {
                    let got = got.as_ref().unwrap().as_ref().unwrap();
                    assert_eq!(got.dist, want.dist, "query {i}, workers={workers}");
                    assert_eq!(got.p_star, want.p_star, "query {i}, workers={workers}");
                }
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_singleton_streams() {
        let g = grid(4, 4);
        let engine = Engine::new(&g);
        for workers in [0usize, 1, 2, 8] {
            assert!(engine.query_batch(&[], workers).is_empty());
            let one = vec![BatchQuery::new(
                vec![0, 5, 15],
                vec![10],
                1.0,
                Aggregate::Max,
            )];
            let got = engine.query_batch(&one, workers);
            assert_eq!(got.len(), 1);
            let want = engine
                .query(&[0, 5, 15], &[10], 1.0, Aggregate::Max)
                .unwrap();
            assert_eq!(
                got[0].as_ref().unwrap().as_ref().map(|a| a.dist),
                want.as_ref().map(|a| a.dist)
            );
        }
    }

    #[test]
    fn batch_propagates_per_query_errors() {
        let g = grid(3, 3);
        let engine = Engine::new(&g);
        let batch = vec![
            BatchQuery::new(vec![0, 4], vec![8], 1.0, Aggregate::Max),
            BatchQuery::new(vec![99], vec![0], 0.5, Aggregate::Max),
            BatchQuery::new(vec![2], vec![6], 2.0, Aggregate::Sum),
        ];
        let got = engine.query_batch(&batch, 2);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(QueryError::NodeOutOfRange(99))));
        assert!(matches!(got[2], Err(QueryError::PhiOutOfRange)));
    }

    #[test]
    fn validation_errors_propagate() {
        let g = grid(2, 2);
        let engine = Engine::new(&g);
        assert!(matches!(
            engine.query(&[99], &[0], 0.5, Aggregate::Max),
            Err(QueryError::NodeOutOfRange(99))
        ));
        assert!(matches!(
            engine.query(&[], &[0], 0.5, Aggregate::Max),
            Err(QueryError::EmptyP)
        ));
    }

    #[test]
    fn g_phi_is_consistent_between_backends() {
        let g = grid(5, 5);
        let q: Vec<u32> = vec![0, 12, 24];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for v in 0..25 {
            let a = bare.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap().unwrap();
            let b = indexed.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap().unwrap();
            assert_eq!(a.dist, b.dist);
        }
    }

    #[test]
    fn g_phi_validates_instead_of_panicking() {
        let g = grid(3, 3);
        let engine = Engine::new(&g);
        assert!(matches!(
            engine.g_phi(0, &[], 0.5, Aggregate::Sum),
            Err(QueryError::EmptyQ)
        ));
        assert!(matches!(
            engine.g_phi(0, &[1, 2], 0.0, Aggregate::Sum),
            Err(QueryError::PhiOutOfRange)
        ));
        assert!(matches!(
            engine.g_phi(0, &[1, 2], f64::NAN, Aggregate::Max),
            Err(QueryError::PhiOutOfRange)
        ));
        assert!(matches!(
            engine.g_phi(99, &[1, 2], 0.5, Aggregate::Max),
            Err(QueryError::NodeOutOfRange(99))
        ));
        assert!(matches!(
            engine.g_phi(0, &[99], 0.5, Aggregate::Max),
            Err(QueryError::NodeOutOfRange(99))
        ));
    }

    #[test]
    fn query_rejects_zero_and_nan_phi() {
        let g = grid(3, 3);
        let engine = Engine::new(&g);
        for phi in [0.0, -0.5, f64::NAN, 1.5] {
            assert!(matches!(
                engine.query(&[0, 4], &[8], phi, Aggregate::Max),
                Err(QueryError::PhiOutOfRange)
            ));
            assert!(matches!(
                engine.query_topk(&[0, 4], &[8], phi, Aggregate::Max, 2),
                Err(QueryError::PhiOutOfRange)
            ));
        }
        assert!(matches!(
            engine.query(&[0, 4], &[], 0.5, Aggregate::Max),
            Err(QueryError::EmptyQ)
        ));
    }

    #[test]
    fn duplicates_in_p_and_q_answer_like_the_deduped_query() {
        let g = grid(6, 6);
        let p = vec![0u32, 7, 14, 7, 21, 0, 28];
        let q = vec![3u32, 33, 3, 18];
        let p_set = vec![0u32, 7, 14, 21, 28];
        let q_set = vec![3u32, 33, 18];
        for engine in [Engine::new(&g), Engine::new(&g).with_labels()] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                // phi interacts with |Q|: dup-laden Q must use the deduped
                // cardinality, or k differs.
                for phi in [0.34, 0.67, 1.0] {
                    let got = engine.query(&p, &q, phi, agg).unwrap().unwrap();
                    let want = engine.query(&p_set, &q_set, phi, agg).unwrap().unwrap();
                    assert_eq!(got.dist, want.dist, "{agg} phi={phi}");
                    assert_eq!(got.p_star, want.p_star, "{agg} phi={phi}");
                    assert_eq!(got.subset.len(), want.subset.len(), "{agg} phi={phi}");
                }
            }
        }
    }

    #[test]
    fn sum_with_unreachable_query_point_saturates_instead_of_wrapping() {
        // One isolated query node keeps its expansion head at INF, so the
        // R-List threshold is a *saturated* sum. An unsaturated sum would
        // wrap around to a tiny threshold and terminate the scan with a
        // bogus answer (or return Some for an infeasible query).
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 7);
        b.add_edge(1, 2, 9);
        // Node 4 is isolated.
        let g = b.build();
        let engine = Engine::new(&g);
        // phi = 1 requires all of Q; q = 4 is unreachable -> no answer.
        assert_eq!(
            engine.query(&[0, 2], &[1, 4], 1.0, Aggregate::Sum).unwrap(),
            None
        );
        // phi = 0.5 needs k = 1: the reachable query point answers.
        let a = engine
            .query(&[0, 2], &[1, 4], 0.5, Aggregate::Sum)
            .unwrap()
            .unwrap();
        assert_eq!((a.p_star, a.dist), (0, 7));
    }

    #[test]
    fn sum_of_near_max_weights_stays_exact() {
        // Three maximum-weight edges: the sum exceeds u32 but fits u64
        // exactly — no saturation, no wrap.
        const W: u32 = u32::MAX;
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, W);
        b.add_edge(0, 2, W);
        b.add_edge(0, 3, W);
        let g = b.build();
        let engine = Engine::new(&g);
        let a = engine
            .query(&[0], &[1, 2, 3], 1.0, Aggregate::Sum)
            .unwrap()
            .unwrap();
        assert_eq!(a.dist, 3 * W as u64);
    }

    #[test]
    fn traced_matches_untraced_and_counts_work() {
        let g = grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(3).collect();
        let q: Vec<u32> = vec![4, 18, 30, 44];
        let engines = [
            Engine::new(&g),
            Engine::new(&g).allow_approx_sum(true),
            Engine::new(&g).with_labels(),
        ];
        for engine in &engines {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let want = engine.query(&p, &q, 0.5, agg).unwrap().unwrap();
                let (got, stats) = engine.query_traced(&p, &q, 0.5, agg).unwrap();
                let got = got.unwrap();
                assert_eq!(got.dist, want.dist, "{}", engine.strategy_for(agg));
                assert_eq!(got.p_star, want.p_star, "{}", engine.strategy_for(agg));
                assert!(
                    !stats.is_empty(),
                    "{} recorded no work",
                    engine.strategy_for(agg)
                );
            }
        }
    }

    #[test]
    fn traced_batch_matches_untraced_batch_and_reports_per_strategy() {
        let g = grid(7, 7);
        let batch = mixed_batch(10);
        let engine = Engine::new(&g);
        for workers in [1usize, 3] {
            let plain = engine.query_batch(&batch, workers);
            let (traced, report) = engine.query_batch_traced(&batch, workers);
            assert_eq!(plain.len(), traced.len());
            for (a, b) in plain.iter().zip(traced.iter()) {
                let a = a.as_ref().unwrap().as_ref().unwrap();
                let b = b.as_ref().unwrap().as_ref().unwrap();
                assert_eq!(a.dist, b.dist);
                assert_eq!(a.p_star, b.p_star);
            }
            // The mixed workload alternates max/sum, so both index-free
            // strategies must show up with work and latency samples.
            assert_eq!(report.total_queries(), batch.len() as u64);
            let active: Vec<Strategy> = report.active().map(|(s, _)| s).collect();
            assert_eq!(active, vec![Strategy::ExactMax, Strategy::RListIne]);
            for (s, r) in report.active() {
                assert!(!r.stats.is_empty(), "{s} recorded no work");
                assert_eq!(r.latency.count(), r.queries);
            }
            assert!(!report.total_stats().is_empty());
        }
    }

    #[test]
    fn engine_is_clone_send_sync_and_static() {
        fn assert_traits<T: Clone + Send + Sync + 'static>() {}
        assert_traits::<Engine>();
        assert_traits::<Arc<EngineSnapshot>>();
    }

    #[test]
    fn apply_updates_bumps_epoch_and_reroutes_queries() {
        let g = grid(5, 5);
        let engine = Engine::new(&g);
        assert_eq!(engine.epoch(), 0);
        let before = engine.snapshot();
        let p: Vec<u32> = (0..25).step_by(3).collect();
        let q = vec![2u32, 22];
        let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
        let a0 = engine.query(&p, &q, 1.0, Aggregate::Sum).unwrap().unwrap();
        engine
            .apply_updates(&[
                WeightUpdate { u: 2, v: 7, w: 90 },
                WeightUpdate { u: 7, v: 12, w: 80 },
            ])
            .unwrap();
        assert_eq!(engine.epoch(), 1);
        assert!(!engine.is_stale(), "no labels to go stale");
        let snap = engine.snapshot();
        let truth = brute_force(snap.graph(), &query).unwrap();
        let a1 = engine.query(&p, &q, 1.0, Aggregate::Sum).unwrap().unwrap();
        assert_eq!(a1.dist, truth.dist);
        // The pre-update answer matches the pinned pre-update snapshot.
        let old_truth = brute_force(before.graph(), &query).unwrap();
        assert_eq!(a0.dist, old_truth.dist);
        assert_ne!(a1.dist, a0.dist, "update should have rerouted the query");
        // Rejected batches publish nothing.
        assert!(engine
            .apply_updates(&[WeightUpdate { u: 0, v: 9, w: 50 }])
            .is_err());
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn stale_labels_fall_back_to_exact_answers() {
        let g = grid(6, 6);
        let engine = Engine::new(&g).with_labels();
        let p: Vec<u32> = (0..36).step_by(2).collect();
        let q: Vec<u32> = vec![3, 17, 33];
        let exact_everywhere = |snap: &EngineSnapshot| {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                for phi in [0.34, 0.67, 1.0] {
                    let query = FannQuery::new(&p, &q, phi, agg);
                    let truth = brute_force(snap.graph(), &query).unwrap();
                    let got = engine.query(&p, &q, phi, agg).unwrap().unwrap();
                    assert_eq!(got.dist, truth.dist, "{agg} phi={phi}");
                }
            }
        };
        // Increase-only window: per-pair certificates active.
        engine
            .apply_updates(&[
                WeightUpdate { u: 0, v: 1, w: 80 },
                WeightUpdate {
                    u: 14,
                    v: 15,
                    w: 44,
                },
            ])
            .unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert!(snap.is_stale());
        assert!(snap.stale().increase_only());
        exact_everywhere(&snap);
        // A decrease joins the set: certificates off, full A* fallback.
        engine
            .apply_updates(&[WeightUpdate { u: 2, v: 3, w: 11 }])
            .unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 2);
        assert!(snap.is_stale());
        assert!(!snap.stale().increase_only());
        exact_everywhere(&snap);
        // Repair restores fresh labels at the same epoch; still exact.
        assert_eq!(engine.repair_indexes(), 2);
        assert!(!engine.is_stale());
        exact_everywhere(&engine.snapshot());
    }

    #[test]
    fn stale_set_merges_repeated_updates_per_edge() {
        let g = grid(4, 4);
        let engine = Engine::new(&g).with_labels();
        engine
            .apply_updates(&[WeightUpdate { u: 0, v: 1, w: 50 }])
            .unwrap();
        engine
            .apply_updates(&[WeightUpdate { u: 1, v: 0, w: 70 }])
            .unwrap();
        let snap = engine.snapshot();
        let ups = snap.stale().updates();
        assert_eq!(ups.len(), 1, "same edge merged, not appended");
        // First w_old (the labels' weight) is kept; latest w_new wins.
        assert_eq!((ups[0].w_old, ups[0].w_new), (10, 70));
        assert!(snap.stale().increase_only());
        // Bare engines never track staleness.
        let bare = Engine::new(&g);
        bare.apply_updates(&[WeightUpdate { u: 0, v: 1, w: 50 }])
            .unwrap();
        assert!(!bare.is_stale());
        assert!(bare.snapshot().stale().is_fresh());
    }

    #[test]
    fn background_repair_converges_to_fresh_labels() {
        let g = grid(5, 5);
        let engine = Engine::new(&g).with_labels();
        engine
            .apply_updates(&[WeightUpdate { u: 0, v: 1, w: 60 }])
            .unwrap();
        assert!(engine.is_stale());
        assert!(engine.repair_in_background());
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        while engine.is_stale() {
            assert!(Instant::now() < deadline, "background repair never landed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let p: Vec<u32> = (0..25).step_by(2).collect();
        let q = vec![0u32, 12, 24];
        let query = FannQuery::new(&p, &q, 0.67, Aggregate::Max);
        let snap = engine.snapshot();
        let truth = brute_force(snap.graph(), &query).unwrap();
        let a = engine.query(&p, &q, 0.67, Aggregate::Max).unwrap().unwrap();
        assert_eq!(a.dist, truth.dist);
    }

    #[test]
    fn scoped_repair_publishes_labels_identical_to_rebuild() {
        let g = grid(6, 6);
        let engine = Engine::new(&g).with_labels();
        engine
            .apply_updates(&[
                WeightUpdate { u: 7, v: 8, w: 90 },
                WeightUpdate {
                    u: 20,
                    v: 26,
                    w: 10,
                },
            ])
            .unwrap();
        assert_eq!(engine.repair_indexes(), 1);
        assert!(!engine.is_stale());
        let repaired = engine.snapshot().hub_labels().unwrap().clone();
        let fresh = HubLabels::build(engine.snapshot().graph());
        assert!(*repaired == fresh, "scoped repair must be bit-identical");
        let report = engine.last_repair_report().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.labels_total, 36);
        assert!(report.labels_repaired >= 1);
    }

    #[test]
    fn maintained_gtree_tracks_updates_through_repairs() {
        let g = grid(6, 6);
        let engine = Engine::new(&g).with_labels().with_gtree_maintenance(
            gtree::GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
            2,
        );
        assert!(engine.gtree_maintenance_enabled());
        let base = engine.maintained_gtree().unwrap();
        let fresh0 = gtree::GTree::build_with_params_parallel(
            &g,
            gtree::GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
            2,
        );
        assert!(base == fresh0, "initial maintained tree matches a build");
        for (round, batch) in [
            vec![WeightUpdate { u: 0, v: 1, w: 70 }],
            vec![
                WeightUpdate {
                    u: 14,
                    v: 20,
                    w: 10,
                },
                WeightUpdate {
                    u: 34,
                    v: 35,
                    w: 55,
                },
            ],
        ]
        .into_iter()
        .enumerate()
        {
            engine.apply_updates(&batch).unwrap();
            engine.repair_indexes();
            let maintained = engine.maintained_gtree().unwrap();
            let fresh = gtree::GTree::build_with_params_parallel(
                engine.snapshot().graph(),
                gtree::GTreeParams {
                    fanout: 2,
                    leaf_cap: 4,
                },
                2,
            );
            assert!(maintained == fresh, "round {round}: folded tree diverged");
        }
        let report = engine.last_repair_report().unwrap();
        assert_eq!(report.epoch, 2);
        assert!(report.gtree_entries_total > 0);
        assert!(report.gtree_entries_repaired <= report.gtree_entries_total);
    }

    #[test]
    fn background_repair_folds_gtree_updates() {
        let g = grid(5, 5);
        let engine = Engine::new(&g).with_labels().with_gtree_maintenance(
            gtree::GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
            1,
        );
        engine
            .apply_updates(&[WeightUpdate { u: 6, v: 11, w: 44 }])
            .unwrap();
        assert!(engine.repair_in_background());
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        while engine.needs_repair() || engine.shared.repairing.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "background fold never landed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let fresh = gtree::GTree::build_with_params_parallel(
            engine.snapshot().graph(),
            gtree::GTreeParams {
                fanout: 2,
                leaf_cap: 4,
            },
            1,
        );
        assert!(engine.maintained_gtree().unwrap() == fresh);
    }

    #[test]
    fn session_follows_epoch_swaps_mid_stream() {
        let g = grid(5, 5);
        let token = CancelToken::new();
        for engine in [Engine::new(&g), Engine::new(&g).with_labels()] {
            let mut session = engine.session(&token);
            let p: Vec<u32> = (0..25).step_by(2).collect();
            let q = vec![1u32, 23];
            for round in 0..3 {
                for agg in [Aggregate::Sum, Aggregate::Max] {
                    let query = FannQuery::new(&p, &q, 1.0, agg);
                    let truth = brute_force(engine.snapshot().graph(), &query).unwrap();
                    let got = session.query(&p, &q, 1.0, agg).unwrap().unwrap();
                    assert_eq!(got.dist, truth.dist, "round {round} {agg}");
                }
                engine
                    .apply_updates(&[WeightUpdate {
                        u: 1,
                        v: 2,
                        w: 40 + round,
                    }])
                    .unwrap();
            }
        }
    }
}
