//! High-level engine: one handle over a network and its indexes.
//!
//! The paper's conclusion (§VII) is a decision rule: use the universal
//! indexed methods (IER-kNN over PHL-class oracles) when indexes exist,
//! and the specific index-free methods (`Exact-max`, `APX-sum`) when they
//! don't. [`Engine`] packages that rule behind a single `query` call so
//! downstream users don't need to know the taxonomy:
//!
//! ```
//! use fann_core::engine::Engine;
//! use fann_core::Aggregate;
//! # use roadnet::GraphBuilder;
//! # let mut b = GraphBuilder::new();
//! # for i in 0..6 { b.add_node(i as f64, 0.0); }
//! # for i in 0..5 { b.add_edge(i, i + 1, 10); }
//! # let graph = b.build();
//! let engine = Engine::new(&graph).with_labels(); // build once
//! let answer = engine
//!     .query(&[0, 2, 4], &[1, 5], 0.5, Aggregate::Max)
//!     .expect("valid query")
//!     .expect("reachable");
//! assert_eq!(answer.dist, 10);
//! ```

use crate::algo::ier::build_p_rtree;
use crate::algo::topk::{exact_max_topk, ier_topk, rlist_topk};
use crate::algo::{apx_sum, exact_max, exact_max_pooled, ier_knn, r_list, r_list_pooled};
use crate::gphi::ier2::IerPhi;
use crate::gphi::ine::InePhi;
use crate::gphi::oracle::LabelOracle;
use crate::gphi::{GPhi, ReusableGPhi};
use crate::{Aggregate, FannAnswer, FannQuery, KFannAnswer, QueryError};
use hublabel::HubLabels;
use roadnet::{Graph, NodeId, ScratchPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which strategy [`Engine::query`] selected (observable for logging and
/// for the engine tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Indexed: IER-kNN over an R-tree on `P` with an IER-PHL backend.
    IerKnnLabels,
    /// Index-free exact max: `Exact-max`.
    ExactMax,
    /// Index-free exact sum: `R-List` with INE.
    RListIne,
    /// Index-free approximate sum: `APX-sum` with INE.
    ApxSumIne,
}

/// A road network plus optional indexes, with automatic algorithm choice.
pub struct Engine<'g> {
    graph: &'g Graph,
    labels: Option<HubLabels>,
    /// Accept approximate sum answers when no index is available
    /// (3-approximation; off by default).
    allow_approx_sum: bool,
}

impl<'g> Engine<'g> {
    /// An index-free engine (the "road networks change frequently"
    /// scenario of §IV).
    pub fn new(graph: &'g Graph) -> Self {
        Engine {
            graph,
            labels: None,
            allow_approx_sum: false,
        }
    }

    /// Build and attach the hub-label oracle (expensive; do it once).
    pub fn with_labels(mut self) -> Self {
        self.labels = Some(HubLabels::build(self.graph));
        self
    }

    /// Attach previously built labels (e.g. from
    /// [`HubLabels::from_bytes`]).
    pub fn with_prebuilt_labels(mut self, labels: HubLabels) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Allow `APX-sum` (guaranteed 3-approximation) for index-free sum
    /// queries instead of the exact-but-slower `R-List`.
    pub fn allow_approx_sum(mut self, yes: bool) -> Self {
        self.allow_approx_sum = yes;
        self
    }

    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// The strategy `query` would use for this aggregate.
    pub fn strategy_for(&self, agg: Aggregate) -> Strategy {
        if self.labels.is_some() {
            Strategy::IerKnnLabels
        } else {
            match agg {
                Aggregate::Max => Strategy::ExactMax,
                Aggregate::Sum if self.allow_approx_sum => Strategy::ApxSumIne,
                Aggregate::Sum => Strategy::RListIne,
            }
        }
    }

    /// Answer an FANN_R query with the §VII decision rule. `Ok(None)`
    /// when no data point reaches `ceil(phi |Q|)` query points.
    pub fn query(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let query = FannQuery { p, q, phi, agg };
        query.validate(self.graph)?;
        let answer = match self.strategy_for(agg) {
            Strategy::IerKnnLabels => {
                let labels = self.labels.as_ref().expect("strategy implies labels");
                let rtree = build_p_rtree(self.graph, p);
                let gphi = IerPhi::new(self.graph, LabelOracle { labels }, q);
                ier_knn(self.graph, &query, &rtree, &gphi)
            }
            Strategy::ExactMax => exact_max(self.graph, &query),
            Strategy::RListIne => {
                let gphi = InePhi::new(self.graph, q);
                r_list(self.graph, &query, &gphi)
            }
            Strategy::ApxSumIne => {
                let gphi = InePhi::new(self.graph, q);
                apx_sum(self.graph, &query, &gphi)
            }
        };
        Ok(answer)
    }

    /// Answer a `k`-FANN_R query (§V). Always exact; `APX-sum` has no
    /// top-k adaptation (per the paper), so index-free sum uses `R-List`.
    pub fn query_topk(
        &self,
        p: &[NodeId],
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
        k: usize,
    ) -> Result<KFannAnswer, QueryError> {
        let query = FannQuery { p, q, phi, agg };
        query.validate(self.graph)?;
        let answer = match (self.labels.as_ref(), agg) {
            (Some(labels), _) => {
                let rtree = build_p_rtree(self.graph, p);
                let gphi = IerPhi::new(self.graph, LabelOracle { labels }, q);
                ier_topk(self.graph, &query, &rtree, &gphi, k)
            }
            (None, Aggregate::Max) => exact_max_topk(self.graph, &query, k),
            (None, Aggregate::Sum) => {
                let gphi = InePhi::new(self.graph, q);
                rlist_topk(self.graph, &query, &gphi, k)
            }
        };
        Ok(answer)
    }

    /// Answer a stream of queries over a fixed worker pool, recycling
    /// per-worker search state across the stream. Results come back in
    /// input order, each bit-identical to what [`Engine::query`] returns
    /// for the same query.
    ///
    /// `workers = 0` means "use the machine's available parallelism".
    pub fn query_batch(
        &self,
        queries: &[BatchQuery],
        workers: usize,
    ) -> Vec<Result<Option<FannAnswer>, QueryError>> {
        self.batch_runner(workers).run(queries)
    }

    /// A reusable handle for running query batches (see
    /// [`Engine::query_batch`]).
    pub fn batch_runner(&self, workers: usize) -> BatchRunner<'_, 'g> {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        BatchRunner {
            engine: self,
            workers,
        }
    }

    /// One query of a batch, answered with this worker's recycled state.
    /// Dispatch mirrors [`Engine::query`] strategy-for-strategy, so the
    /// answers are identical; only the allocation behavior differs.
    fn query_with_state(
        &self,
        bq: &BatchQuery,
        state: &mut WorkerState<'g>,
    ) -> Result<Option<FannAnswer>, QueryError> {
        let query = FannQuery {
            p: &bq.p,
            q: &bq.q,
            phi: bq.phi,
            agg: bq.agg,
        };
        query.validate(self.graph)?;
        let WorkerState { pool, ine } = state;
        let answer = match self.strategy_for(bq.agg) {
            Strategy::IerKnnLabels => {
                let labels = self.labels.as_ref().expect("strategy implies labels");
                let rtree = build_p_rtree(self.graph, &bq.p);
                let gphi = IerPhi::new(self.graph, LabelOracle { labels }, &bq.q);
                ier_knn(self.graph, &query, &rtree, &gphi)
            }
            Strategy::ExactMax => exact_max_pooled(self.graph, &query, pool),
            Strategy::RListIne => {
                r_list_pooled(self.graph, &query, rebind_ine(ine, self.graph, &bq.q), pool)
            }
            Strategy::ApxSumIne => apx_sum(self.graph, &query, rebind_ine(ine, self.graph, &bq.q)),
        };
        Ok(answer)
    }

    /// Evaluate `g_phi(p, Q)` directly with the best available backend
    /// (Definition 1 as a public operation).
    pub fn g_phi(
        &self,
        p: NodeId,
        q: &[NodeId],
        phi: f64,
        agg: Aggregate,
    ) -> Option<crate::gphi::GPhiResult> {
        let k = ((phi * q.len() as f64).ceil() as usize).clamp(1, q.len());
        match self.labels.as_ref() {
            Some(labels) => IerPhi::new(self.graph, LabelOracle { labels }, q).eval(p, k, agg),
            None => InePhi::new(self.graph, q).eval(p, k, agg),
        }
    }
}

/// One query of a batch stream: an owned `(P, Q, phi, g)` quadruple
/// (the graph is the engine's).
#[derive(Debug, Clone)]
pub struct BatchQuery {
    pub p: Vec<NodeId>,
    pub q: Vec<NodeId>,
    pub phi: f64,
    pub agg: Aggregate,
}

impl BatchQuery {
    pub fn new(p: Vec<NodeId>, q: Vec<NodeId>, phi: f64, agg: Aggregate) -> Self {
        BatchQuery { p, q, phi, agg }
    }
}

/// Per-worker recycled state: a scratch pool for the multi-expansion
/// algorithms and one long-lived INE backend, rebound per query.
struct WorkerState<'g> {
    pool: ScratchPool,
    ine: Option<InePhi<'g>>,
}

/// Rebind the worker's long-lived INE backend to `q` (constructing it on
/// first use), returning it ready for evaluation.
fn rebind_ine<'s, 'g>(
    ine: &'s mut Option<InePhi<'g>>,
    graph: &'g Graph,
    q: &[NodeId],
) -> &'s InePhi<'g> {
    match ine {
        Some(backend) => backend.rebind(q),
        None => *ine = Some(InePhi::new(graph, q)),
    }
    ine.as_ref().expect("just ensured")
}

/// Drives a stream of queries over a fixed pool of worker threads, one
/// long-lived backend + scratch pool per worker (the batch/throughput
/// layer; obtained from [`Engine::batch_runner`]).
///
/// Queries are pulled from a shared atomic cursor, so workers self-balance
/// on skewed workloads; results are returned in input order.
pub struct BatchRunner<'e, 'g> {
    engine: &'e Engine<'g>,
    workers: usize,
}

impl BatchRunner<'_, '_> {
    /// Worker threads this runner will spawn (before clamping to the
    /// batch size).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Answer every query; `results[i]` corresponds to `queries[i]` and is
    /// exactly what [`Engine::query`] would return for it.
    pub fn run(&self, queries: &[BatchQuery]) -> Vec<Result<Option<FannAnswer>, QueryError>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.clamp(1, n);
        if workers == 1 {
            // Single worker: answer inline, no thread overhead.
            let mut state = WorkerState {
                pool: ScratchPool::new(),
                ine: None,
            };
            return queries
                .iter()
                .map(|bq| self.engine.query_with_state(bq, &mut state))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<Option<FannAnswer>, QueryError>>> = vec![None; n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut state = WorkerState {
                            pool: ScratchPool::new(),
                            ine: None,
                        };
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, self.engine.query_with_state(&queries[i], &mut state)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::brute::brute_force;
    use roadnet::GraphBuilder;

    fn grid(w: u32, h: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64 * 10.0, y as f64 * 10.0);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 10 + (x + y) % 5);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, 10 + (x * 2 + y) % 4);
                }
            }
        }
        b.build()
    }

    #[test]
    fn indexed_and_index_free_agree_with_truth() {
        let g = grid(7, 7);
        let p: Vec<u32> = (0..49).step_by(3).collect();
        let q: Vec<u32> = vec![4, 18, 30, 44];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for phi in [0.25, 0.5, 1.0] {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let query = FannQuery::new(&p, &q, phi, agg);
                let truth = brute_force(&g, &query).unwrap();
                let a = bare.query(&p, &q, phi, agg).unwrap().unwrap();
                let b = indexed.query(&p, &q, phi, agg).unwrap().unwrap();
                assert_eq!(a.dist, truth.dist, "bare phi={phi} {agg}");
                assert_eq!(b.dist, truth.dist, "indexed phi={phi} {agg}");
            }
        }
    }

    #[test]
    fn strategies_selected_as_documented() {
        let g = grid(3, 3);
        let bare = Engine::new(&g);
        assert_eq!(bare.strategy_for(Aggregate::Max), Strategy::ExactMax);
        assert_eq!(bare.strategy_for(Aggregate::Sum), Strategy::RListIne);
        let approx = Engine::new(&g).allow_approx_sum(true);
        assert_eq!(approx.strategy_for(Aggregate::Sum), Strategy::ApxSumIne);
        let indexed = Engine::new(&g).with_labels();
        assert!(indexed.has_labels());
        assert_eq!(indexed.strategy_for(Aggregate::Max), Strategy::IerKnnLabels);
    }

    #[test]
    fn approx_sum_within_bound() {
        let g = grid(8, 8);
        let p: Vec<u32> = (0..64).step_by(2).collect();
        let q: Vec<u32> = vec![0, 9, 27, 45, 63];
        let engine = Engine::new(&g).allow_approx_sum(true);
        let query = FannQuery::new(&p, &q, 0.6, Aggregate::Sum);
        let truth = brute_force(&g, &query).unwrap();
        let a = engine.query(&p, &q, 0.6, Aggregate::Sum).unwrap().unwrap();
        assert!(a.dist >= truth.dist);
        assert!(a.dist <= 3 * truth.dist);
    }

    #[test]
    fn topk_consistent_between_modes() {
        let g = grid(6, 6);
        let p: Vec<u32> = (0..36).collect();
        let q: Vec<u32> = vec![0, 20, 35];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let a = bare.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let b = indexed.query_topk(&p, &q, 0.67, agg, 4).unwrap();
            let da: Vec<u64> = a.iter().map(|&(_, d)| d).collect();
            let db: Vec<u64> = b.iter().map(|&(_, d)| d).collect();
            assert_eq!(da, db, "{agg}");
        }
    }

    fn mixed_batch(n: usize) -> Vec<BatchQuery> {
        // Deterministic workload mixing aggregates, phi, and query sets.
        (0..n)
            .map(|i| {
                let p: Vec<u32> = (0..49).step_by(2 + i % 3).collect();
                let q: Vec<u32> = vec![
                    (i % 49) as u32,
                    ((i * 7 + 11) % 49) as u32,
                    ((i * 13 + 23) % 49) as u32,
                ];
                let agg = if i % 2 == 0 {
                    Aggregate::Max
                } else {
                    Aggregate::Sum
                };
                BatchQuery::new(p, q, 0.34 + 0.33 * (i % 3) as f64, agg)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let g = grid(7, 7);
        let batch = mixed_batch(12);
        for engine in [Engine::new(&g), Engine::new(&g).with_labels()] {
            let sequential: Vec<_> = batch
                .iter()
                .map(|b| engine.query(&b.p, &b.q, b.phi, b.agg).unwrap().unwrap())
                .collect();
            for workers in [1usize, 3] {
                let got = engine.query_batch(&batch, workers);
                for (i, (got, want)) in got.iter().zip(&sequential).enumerate() {
                    let got = got.as_ref().unwrap().as_ref().unwrap();
                    assert_eq!(got.dist, want.dist, "query {i}, workers={workers}");
                    assert_eq!(got.p_star, want.p_star, "query {i}, workers={workers}");
                }
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_singleton_streams() {
        let g = grid(4, 4);
        let engine = Engine::new(&g);
        for workers in [0usize, 1, 2, 8] {
            assert!(engine.query_batch(&[], workers).is_empty());
            let one = vec![BatchQuery::new(
                vec![0, 5, 15],
                vec![10],
                1.0,
                Aggregate::Max,
            )];
            let got = engine.query_batch(&one, workers);
            assert_eq!(got.len(), 1);
            let want = engine
                .query(&[0, 5, 15], &[10], 1.0, Aggregate::Max)
                .unwrap();
            assert_eq!(
                got[0].as_ref().unwrap().as_ref().map(|a| a.dist),
                want.as_ref().map(|a| a.dist)
            );
        }
    }

    #[test]
    fn batch_propagates_per_query_errors() {
        let g = grid(3, 3);
        let engine = Engine::new(&g);
        let batch = vec![
            BatchQuery::new(vec![0, 4], vec![8], 1.0, Aggregate::Max),
            BatchQuery::new(vec![99], vec![0], 0.5, Aggregate::Max),
            BatchQuery::new(vec![2], vec![6], 2.0, Aggregate::Sum),
        ];
        let got = engine.query_batch(&batch, 2);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(QueryError::NodeOutOfRange(99))));
        assert!(matches!(got[2], Err(QueryError::PhiOutOfRange)));
    }

    #[test]
    fn validation_errors_propagate() {
        let g = grid(2, 2);
        let engine = Engine::new(&g);
        assert!(matches!(
            engine.query(&[99], &[0], 0.5, Aggregate::Max),
            Err(QueryError::NodeOutOfRange(99))
        ));
        assert!(matches!(
            engine.query(&[], &[0], 0.5, Aggregate::Max),
            Err(QueryError::EmptyP)
        ));
    }

    #[test]
    fn g_phi_is_consistent_between_backends() {
        let g = grid(5, 5);
        let q: Vec<u32> = vec![0, 12, 24];
        let bare = Engine::new(&g);
        let indexed = Engine::new(&g).with_labels();
        for v in 0..25 {
            let a = bare.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap();
            let b = indexed.g_phi(v, &q, 0.67, Aggregate::Sum).unwrap();
            assert_eq!(a.dist, b.dist);
        }
    }
}
