// placed as an integration test in fann-core
use fann_core::locality::{AnswerCache, CacheKey, NO_REACH};
use spatial_rtree::{Mbr, Pt};

#[test]
fn tombstone_fill_terminates() {
    let cache = AnswerCache::new(4); // slots = 8
    let mbr = Mbr {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 1.0,
        max_y: 1.0,
    };
    let mut next_id: u32 = 0;
    for round in 0..50 {
        // insert 3 distinct keys (stays below max_live=4, never resets)
        let mut keys = Vec::new();
        for _ in 0..3 {
            next_id += 1;
            keys.push([next_id]);
        }
        for q in &keys {
            let k = CacheKey {
                p: &[0],
                q,
                phi: 1.0,
                agg: 0,
                strategy: 1,
            };
            cache.insert(&k, round, None, 0, mbr, NO_REACH);
        }
        // epoch bump invalidates everything (NO_REACH entries never promote)
        cache.on_update(round, round + 1, &[Pt::new(0.0, 0.0)], 1.0);
    }
    // lookup of an absent key: must terminate
    let k = CacheKey {
        p: &[0],
        q: &[999_999],
        phi: 1.0,
        agg: 0,
        strategy: 1,
    };
    assert!(cache.lookup(&k, 1000).is_none());
}
