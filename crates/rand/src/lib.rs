//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small `rand` API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — fast,
//! well distributed, and deterministic per seed, which is all the workload
//! generators and tests require. Streams differ from upstream `rand` (the
//! experiments only need *reproducibility*, not byte compatibility) and
//! integer ranges use simple modulo reduction, whose bias is negligible for
//! the range sizes used here (≤ a few million).

/// A source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample.
    pub trait SampleRange<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range!(usize, u64, u32, u16, u8, i64, i32);

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range");
            lo + unit_f64(rng.next_u64()) * (hi - lo)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
