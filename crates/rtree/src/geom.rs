//! Planar geometry: points and minimum bounding rectangles (MBRs).

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pt {
    pub x: f64,
    pub y: f64,
}

impl Pt {
    pub fn new(x: f64, y: f64) -> Self {
        Pt { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Pt) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned minimum bounding rectangle.
///
/// `mindist` follows Roussopoulos et al. \[23\]: the smallest possible
/// Euclidean distance from a point (or another MBR) to anything inside the
/// rectangle — the pruning bound in IER (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Mbr {
    /// Degenerate MBR covering a single point.
    pub fn from_point(p: Pt) -> Self {
        Mbr {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// Identity element for [`Mbr::union`]: contains nothing.
    pub fn empty() -> Self {
        Mbr {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Smallest MBR containing both `self` and `other`.
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grow to include a point.
    pub fn extend(&mut self, p: Pt) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Bounding box of a point set; [`Mbr::empty`] for an empty slice.
    pub fn of_points(points: &[Pt]) -> Mbr {
        let mut m = Mbr::empty();
        for &p in points {
            m.extend(p);
        }
        m
    }

    pub fn contains(&self, p: Pt) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_x - self.min_x) * (self.max_y - self.min_y)
        }
    }

    /// `mindist(b, q)`: minimum Euclidean distance from `q` to the MBR
    /// (0 when `q` lies inside).
    pub fn mindist_point(&self, q: Pt) -> f64 {
        let dx = (self.min_x - q.x).max(q.x - self.max_x).max(0.0);
        let dy = (self.min_y - q.y).max(q.y - self.max_y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// `mindist(b, b')`: minimum Euclidean distance between two MBRs
    /// (0 when they intersect).
    pub fn mindist_mbr(&self, other: &Mbr) -> f64 {
        let dx = (self.min_x - other.max_x)
            .max(other.min_x - self.max_x)
            .max(0.0);
        let dy = (self.min_y - other.max_y)
            .max(other.min_y - self.max_y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum possible distance from `q` to anything in the MBR; an upper
    /// bound used by aggregate pruning heuristics.
    pub fn maxdist_point(&self, q: Pt) -> f64 {
        let dx = (q.x - self.min_x).abs().max((q.x - self.max_x).abs());
        let dy = (q.y - self.min_y).abs().max((q.y - self.max_y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    pub fn center(&self) -> Pt {
        Pt::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_covers_both() {
        let a = Mbr::from_point(Pt::new(0.0, 0.0));
        let b = Mbr::from_point(Pt::new(2.0, 3.0));
        let u = a.union(&b);
        assert!(u.contains(Pt::new(1.0, 1.5)));
        assert_eq!(u.area(), 6.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let a = Mbr {
            min_x: 1.0,
            min_y: 2.0,
            max_x: 3.0,
            max_y: 4.0,
        };
        assert_eq!(Mbr::empty().union(&a), a);
        assert!(Mbr::empty().is_empty());
        assert_eq!(Mbr::empty().area(), 0.0);
    }

    #[test]
    fn mindist_point_inside_is_zero() {
        let m = Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 4.0,
            max_y: 4.0,
        };
        assert_eq!(m.mindist_point(Pt::new(2.0, 2.0)), 0.0);
        assert_eq!(m.mindist_point(Pt::new(4.0, 4.0)), 0.0);
    }

    #[test]
    fn mindist_point_outside_is_perpendicular_or_corner() {
        let m = Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 4.0,
            max_y: 4.0,
        };
        assert_eq!(m.mindist_point(Pt::new(7.0, 2.0)), 3.0);
        // Corner case: (7, 8) vs corner (4, 4) -> 5.
        assert_eq!(m.mindist_point(Pt::new(7.0, 8.0)), 5.0);
    }

    #[test]
    fn mindist_mbr_zero_when_overlapping() {
        let a = Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 4.0,
            max_y: 4.0,
        };
        let b = Mbr {
            min_x: 3.0,
            min_y: 3.0,
            max_x: 5.0,
            max_y: 5.0,
        };
        assert_eq!(a.mindist_mbr(&b), 0.0);
    }

    #[test]
    fn mindist_mbr_separated() {
        let a = Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 1.0,
            max_y: 1.0,
        };
        let b = Mbr {
            min_x: 4.0,
            min_y: 5.0,
            max_x: 6.0,
            max_y: 7.0,
        };
        assert_eq!(a.mindist_mbr(&b), 5.0); // dx = 3, dy = 4
    }

    #[test]
    fn maxdist_bounds_mindist() {
        let m = Mbr {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 2.0,
            max_y: 2.0,
        };
        let q = Pt::new(5.0, 5.0);
        assert!(m.maxdist_point(q) >= m.mindist_point(q));
    }

    #[test]
    fn of_points_matches_extends() {
        let pts = [Pt::new(1.0, 5.0), Pt::new(-2.0, 0.5), Pt::new(3.0, 2.0)];
        let m = Mbr::of_points(&pts);
        assert_eq!(m.min_x, -2.0);
        assert_eq!(m.max_x, 3.0);
        assert_eq!(m.min_y, 0.5);
        assert_eq!(m.max_y, 5.0);
    }
}
