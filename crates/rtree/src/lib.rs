//! An R-tree over planar points with STR bulk loading.
//!
//! The paper uses R-trees in two places (Table I): over the data set `P`
//! for the IER-kNN framework (Algorithm 1), and over the query set `Q` for
//! the `IER²` variants of `g_phi`. Both uses need
//!
//! * external best-first traversal: the caller owns the priority queue and
//!   orders [`Entry`] handles by its own aggregate bound (`g^eps_phi(e, Q)`) —
//!   see [`RTree::root`] and [`Node::children`];
//! * classic incremental nearest-neighbor search by Euclidean distance
//!   (Hjaltason & Samet \[22\]) — see [`RTree::nearest_iter`].
//!
//! The tree is built once by Sort-Tile-Recursive (STR) bulk loading with a
//! configurable fanout (the paper sets `f = 4`, §VI-A) and is immutable
//! afterwards, matching the paper's static-index setting.

pub mod geom;

pub use geom::{Mbr, Pt};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order wrapper for finite `f64` priorities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A stored item: a point plus its payload (typically a graph node id).
#[derive(Debug, Clone)]
pub struct Item<T> {
    pub point: Pt,
    pub data: T,
}

enum NodeKind<T> {
    Leaf(Vec<Item<T>>),
    Internal(Vec<Node<T>>),
}

/// An R-tree node with its MBR.
pub struct Node<T> {
    mbr: Mbr,
    kind: NodeKind<T>,
}

impl<T> Node<T> {
    /// The node's minimum bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        self.mbr
    }

    /// Child entries: sub-nodes for internal nodes, items for leaves
    /// (line 9 of Algorithm 1: "for each R-tree entry ê under e").
    pub fn children(&self) -> impl Iterator<Item = Entry<'_, T>> {
        let (nodes, items) = match &self.kind {
            NodeKind::Internal(ns) => (&ns[..], &[][..]),
            NodeKind::Leaf(its) => (&[][..], &its[..]),
        };
        nodes
            .iter()
            .map(Entry::Node)
            .chain(items.iter().map(Entry::Item))
    }

    fn count_nodes(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(_) => 1,
            NodeKind::Internal(ns) => 1 + ns.iter().map(Node::count_nodes).sum::<usize>(),
        }
    }
}

/// A traversal handle: either an internal/leaf node or a stored item.
pub enum Entry<'a, T> {
    Node(&'a Node<T>),
    Item(&'a Item<T>),
}

impl<'a, T> Entry<'a, T> {
    /// MBR of the entry (degenerate for items).
    pub fn mbr(&self) -> Mbr {
        match self {
            Entry::Node(n) => n.mbr,
            Entry::Item(it) => Mbr::from_point(it.point),
        }
    }

    /// Minimum possible Euclidean distance from `q` to this entry.
    pub fn mindist(&self, q: Pt) -> f64 {
        match self {
            Entry::Node(n) => n.mbr.mindist_point(q),
            Entry::Item(it) => it.point.dist(&q),
        }
    }
}

impl<'a, T> Clone for Entry<'a, T> {
    fn clone(&self) -> Self {
        match self {
            Entry::Node(n) => Entry::Node(n),
            Entry::Item(i) => Entry::Item(i),
        }
    }
}

// Entries carry no intrinsic ordering: callers key their priority queues by
// an external bound (e.g. `g^eps_phi(e, Q)` in Algorithm 1) and use these
// do-nothing impls only to satisfy `BinaryHeap`'s trait bounds.
impl<T> PartialEq for Entry<'_, T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Entry<'_, T> {}
impl<T> PartialOrd for Entry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<'_, T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// An immutable R-tree bulk-loaded with STR.
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
    fanout: usize,
}

/// Default fanout, matching the paper's `f = 4` (§VI-A).
pub const DEFAULT_FANOUT: usize = 4;

impl<T> RTree<T> {
    /// Bulk-load with the default fanout.
    pub fn bulk_load(items: Vec<(Pt, T)>) -> Self {
        Self::bulk_load_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Bulk-load with an explicit fanout (`>= 2`).
    pub fn bulk_load_with_fanout(items: Vec<(Pt, T)>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2, got {fanout}");
        let len = items.len();
        let leaves: Vec<Item<T>> = items
            .into_iter()
            .map(|(point, data)| Item { point, data })
            .collect();
        let root = (!leaves.is_empty()).then(|| Self::build_leaves(leaves, fanout));
        RTree { root, len, fanout }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Root node; `None` for an empty tree.
    pub fn root(&self) -> Option<&Node<T>> {
        self.root.as_ref()
    }

    /// STR: sort by x, cut into vertical slabs, sort each slab by y, chunk.
    fn str_tile<E, KX, KY>(mut elems: Vec<E>, cap: usize, kx: KX, ky: KY) -> Vec<Vec<E>>
    where
        KX: Fn(&E) -> f64,
        KY: Fn(&E) -> f64,
    {
        let n = elems.len();
        let n_groups = n.div_ceil(cap);
        let n_slabs = (n_groups as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(n_slabs);
        elems.sort_by(|a, b| kx(a).total_cmp(&kx(b)));
        let mut groups = Vec::with_capacity(n_groups);
        let mut rest = elems;
        while !rest.is_empty() {
            let take = slab_size.min(rest.len());
            let mut slab: Vec<E> = rest.drain(..take).collect();
            slab.sort_by(|a, b| ky(a).total_cmp(&ky(b)));
            while !slab.is_empty() {
                let take = cap.min(slab.len());
                groups.push(slab.drain(..take).collect());
            }
        }
        groups
    }

    fn build_leaves(items: Vec<Item<T>>, fanout: usize) -> Node<T> {
        let groups = Self::str_tile(items, fanout, |i| i.point.x, |i| i.point.y);
        let mut nodes: Vec<Node<T>> = groups
            .into_iter()
            .map(|g| {
                let mut mbr = Mbr::empty();
                for it in &g {
                    mbr.extend(it.point);
                }
                Node {
                    mbr,
                    kind: NodeKind::Leaf(g),
                }
            })
            .collect();
        while nodes.len() > 1 {
            let groups = Self::str_tile(nodes, fanout, |n| n.mbr.center().x, |n| n.mbr.center().y);
            nodes = groups
                .into_iter()
                .map(|g| {
                    let mbr = g.iter().fold(Mbr::empty(), |acc, n| acc.union(&n.mbr));
                    Node {
                        mbr,
                        kind: NodeKind::Internal(g),
                    }
                })
                .collect();
        }
        nodes.pop().expect("non-empty input produces a root")
    }

    /// Items in increasing Euclidean distance from `q` (incremental
    /// best-first NN, \[22\]). Lazy: pulling `k` results does work roughly
    /// proportional to the visited frontier only.
    pub fn nearest_iter(&self, q: Pt) -> NearestIter<'_, T> {
        let mut heap = BinaryHeap::new();
        if let Some(root) = &self.root {
            heap.push((
                Reverse(OrdF64(root.mbr.mindist_point(q))),
                HeapEntry::Node(root),
            ));
        }
        NearestIter {
            q,
            heap,
            nodes_visited: 0,
        }
    }

    /// The `k` nearest items to `q` as `(distance, &data)`.
    pub fn knn(&self, q: Pt, k: usize) -> Vec<(f64, &T)> {
        self.nearest_iter(q).take(k).collect()
    }

    /// Iterate over all stored items (arbitrary order).
    pub fn iter(&self) -> Box<dyn Iterator<Item = &Item<T>> + '_> {
        fn walk<'a, T>(n: &'a Node<T>) -> Box<dyn Iterator<Item = &'a Item<T>> + 'a> {
            match &n.kind {
                NodeKind::Leaf(items) => Box::new(items.iter()),
                NodeKind::Internal(ns) => Box::new(ns.iter().flat_map(walk)),
            }
        }
        match &self.root {
            Some(r) => walk(r),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Number of tree nodes (for the Appendix-A index-cost experiment).
    pub fn num_nodes(&self) -> usize {
        self.root.as_ref().map_or(0, Node::count_nodes)
    }

    /// Rough in-memory size: nodes + items. Payload counted as `size_of::<T>()`.
    pub fn memory_bytes(&self) -> usize {
        let node_sz = std::mem::size_of::<Node<T>>();
        let item_sz = std::mem::size_of::<Item<T>>();
        self.num_nodes() * node_sz + self.len * item_sz
    }
}

/// Internal heap entry for [`NearestIter`]. Ordering lives entirely in the
/// `f64` key; entries themselves compare equal.
enum HeapEntry<'a, T> {
    Node(&'a Node<T>),
    Item(&'a Item<T>),
}

impl<T> PartialEq for HeapEntry<'_, T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for HeapEntry<'_, T> {}
impl<T> PartialOrd for HeapEntry<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<'_, T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Iterator produced by [`RTree::nearest_iter`].
pub struct NearestIter<'a, T> {
    q: Pt,
    heap: BinaryHeap<(Reverse<OrdF64>, HeapEntry<'a, T>)>,
    nodes_visited: u64,
}

impl<T> NearestIter<'_, T> {
    /// Tree nodes (leaf or internal) expanded so far — the classic
    /// machine-independent "node accesses" cost of best-first NN search.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }
}

impl<'a, T> Iterator for NearestIter<'a, T> {
    type Item = (f64, &'a T);

    fn next(&mut self) -> Option<(f64, &'a T)> {
        while let Some((Reverse(OrdF64(d)), entry)) = self.heap.pop() {
            match entry {
                HeapEntry::Item(it) => return Some((d, &it.data)),
                HeapEntry::Node(n) => match &n.kind {
                    NodeKind::Leaf(items) => {
                        self.nodes_visited += 1;
                        for it in items {
                            self.heap.push((
                                Reverse(OrdF64(it.point.dist(&self.q))),
                                HeapEntry::Item(it),
                            ));
                        }
                    }
                    NodeKind::Internal(ns) => {
                        self.nodes_visited += 1;
                        for c in ns {
                            self.heap.push((
                                Reverse(OrdF64(c.mbr.mindist_point(self.q))),
                                HeapEntry::Node(c),
                            ));
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n: usize) -> Vec<(Pt, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Pt::new(x, y), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<usize> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.root().is_none());
        assert_eq!(t.knn(Pt::new(0.0, 0.0), 3), vec![]);
        assert_eq!(t.num_nodes(), 0);
    }

    #[test]
    fn single_item() {
        let t = RTree::bulk_load(vec![(Pt::new(1.0, 2.0), 7usize)]);
        assert_eq!(t.len(), 1);
        let nn = t.knn(Pt::new(1.0, 2.0), 1);
        assert_eq!(nn.len(), 1);
        assert_eq!(*nn[0].1, 7);
        assert_eq!(nn[0].0, 0.0);
    }

    #[test]
    fn stores_all_items() {
        let t = RTree::bulk_load(grid_items(57));
        assert_eq!(t.len(), 57);
        let mut ids: Vec<usize> = t.iter().map(|it| it.data).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let items = grid_items(100);
        let t = RTree::bulk_load(items.clone());
        let q = Pt::new(3.7, 6.2);
        let mut by_scan: Vec<(f64, usize)> = items.iter().map(|(p, i)| (p.dist(&q), *i)).collect();
        by_scan.sort_by(|a, b| a.0.total_cmp(&b.0));
        let by_tree: Vec<(f64, usize)> = t.nearest_iter(q).map(|(d, &i)| (d, i)).collect();
        assert_eq!(by_tree.len(), 100);
        for (a, b) in by_scan.iter().zip(by_tree.iter()) {
            assert!((a.0 - b.0).abs() < 1e-12, "distance order mismatch");
        }
    }

    #[test]
    fn knn_returns_k_sorted() {
        let t = RTree::bulk_load(grid_items(100));
        let res = t.knn(Pt::new(0.0, 0.0), 5);
        assert_eq!(res.len(), 5);
        assert!(res.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(*res[0].1, 0);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let t = RTree::bulk_load(grid_items(3));
        assert_eq!(t.knn(Pt::new(0.0, 0.0), 10).len(), 3);
    }

    #[test]
    fn root_mbr_covers_everything() {
        let t = RTree::bulk_load(grid_items(100));
        let mbr = t.root().unwrap().mbr();
        for it in t.iter() {
            assert!(mbr.contains(it.point));
        }
    }

    #[test]
    fn children_mbrs_nest() {
        fn check<T>(n: &Node<T>) {
            for c in n.children() {
                let m = c.mbr();
                assert!(n.mbr().union(&m) == n.mbr(), "child MBR escapes parent");
                if let Entry::Node(cn) = c {
                    check(cn);
                }
            }
        }
        let t = RTree::bulk_load(grid_items(100));
        check(t.root().unwrap());
    }

    #[test]
    fn fanout_is_respected() {
        fn max_children<T>(n: &Node<T>) -> usize {
            let own = n.children().count();
            let sub = n
                .children()
                .filter_map(|c| match c {
                    Entry::Node(cn) => Some(max_children(cn)),
                    Entry::Item(_) => None,
                })
                .max()
                .unwrap_or(0);
            own.max(sub)
        }
        let t = RTree::bulk_load_with_fanout(grid_items(100), 4);
        assert!(max_children(t.root().unwrap()) <= 4);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_fanout_one() {
        let _ = RTree::bulk_load_with_fanout(grid_items(4), 1);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let items = vec![
            (Pt::new(1.0, 1.0), 0usize),
            (Pt::new(1.0, 1.0), 1),
            (Pt::new(1.0, 1.0), 2),
        ];
        let t = RTree::bulk_load(items);
        let res = t.knn(Pt::new(1.0, 1.0), 3);
        let mut ids: Vec<usize> = res.iter().map(|(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn memory_estimate_positive() {
        let t = RTree::bulk_load(grid_items(64));
        assert!(t.memory_bytes() > 0);
        assert!(t.num_nodes() >= 16); // 64 items, fanout 4
    }
}
