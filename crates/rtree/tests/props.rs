//! Property tests: the R-tree must agree with linear scans on arbitrary
//! point sets (duplicates, collinear points, extreme coordinates).

use proptest::prelude::*;
use spatial_rtree::{Mbr, Pt, RTree};

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nearest_order_matches_scan(pts in arb_points(), q in (-1e6f64..1e6, -1e6f64..1e6)) {
        let items: Vec<(Pt, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Pt::new(x, y), i))
            .collect();
        let tree = RTree::bulk_load(items.clone());
        let q = Pt::new(q.0, q.1);
        let mut scan: Vec<f64> = items.iter().map(|(p, _)| p.dist(&q)).collect();
        scan.sort_by(f64::total_cmp);
        let tree_d: Vec<f64> = tree.nearest_iter(q).map(|(d, _)| d).collect();
        prop_assert_eq!(tree_d.len(), scan.len());
        for (a, b) in tree_d.iter().zip(scan.iter()) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn all_items_enumerable(pts in arb_points()) {
        let items: Vec<(Pt, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Pt::new(x, y), i))
            .collect();
        let tree = RTree::bulk_load(items);
        let mut ids: Vec<usize> = tree.iter().map(|it| it.data).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..pts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn mindist_lower_bounds_every_member(pts in arb_points(), q in (-1e6f64..1e6, -1e6f64..1e6)) {
        let q = Pt::new(q.0, q.1);
        let pts: Vec<Pt> = pts.iter().map(|&(x, y)| Pt::new(x, y)).collect();
        let mbr = Mbr::of_points(&pts);
        for p in &pts {
            prop_assert!(mbr.mindist_point(q) <= p.dist(&q) + 1e-9);
            prop_assert!(mbr.maxdist_point(q) >= p.dist(&q) - 1e-9);
        }
    }

    #[test]
    fn mbr_mindist_symmetric(a in arb_points(), b in arb_points()) {
        let ma = Mbr::of_points(&a.iter().map(|&(x, y)| Pt::new(x, y)).collect::<Vec<_>>());
        let mb = Mbr::of_points(&b.iter().map(|&(x, y)| Pt::new(x, y)).collect::<Vec<_>>());
        prop_assert!((ma.mindist_mbr(&mb) - mb.mindist_mbr(&ma)).abs() < 1e-9);
        // And never exceeds any cross-pair distance.
        for &(ax, ay) in &a {
            for &(bx, by) in &b {
                let d = Pt::new(ax, ay).dist(&Pt::new(bx, by));
                prop_assert!(ma.mindist_mbr(&mb) <= d + 1e-9);
            }
        }
    }
}
