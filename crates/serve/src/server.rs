//! The serving loop: bounded admission, deadline enforcement, graceful drain.
//!
//! Thread layout (all scoped, all joined before [`Server::run`] returns):
//!
//! ```text
//! acceptor (run's own thread, nonblocking accept + shutdown poll)
//!   └─ reader thread per connection
//!        ├─ health / metrics / shutdown answered inline (never queued,
//!        │  so observability survives overload)
//!        └─ query  ──try_send──▶ bounded queue ──▶ worker threads
//!                     │                              each: re-armed
//!                     └─ Full ⇒ "shed" response      CancelToken + Engine
//!                        (admission control: the
//!                        queue never grows unbounded)
//! ```
//!
//! A request's deadline is measured from *admission* (queue wait counts):
//! an overloaded server cancels stale work instead of burning CPU on
//! answers nobody is waiting for. Shutdown — wire `shutdown` op, SIGINT /
//! SIGTERM, or [`ShutdownHandle`] — stops the acceptor, lets readers
//! close, drains every admitted query, then returns the final stats.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use fann_core::engine::{BatchQuery, Engine};
use fann_core::QueryError;
use roadnet::{CancelToken, ShardMap};

use crate::protocol::{
    Body, HealthInfo, MetricsInfo, Op, QuerySpec, Request, Response, StreamErrorKind,
    MAX_STREAM_SEGMENT,
};

/// Shard-mode role: this server owns the nodes `v` with
/// `map.owner(v) == id`. Queries keep only owned candidates, update
/// batches keep only owned edges, and `health`/`metrics` report the
/// shard id, its region MBR, and the owned-node count.
#[derive(Debug, Clone)]
pub struct ShardRole {
    pub id: u32,
    pub map: Arc<ShardMap>,
}

/// How the server behaves; see field docs for the knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`. Port 0 picks a free port
    /// (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Query worker threads. Each holds its own [`CancelToken`].
    pub workers: usize,
    /// Bounded queue depth shared by all workers. A query arriving while
    /// the queue is full is shed immediately with `status:"shed"`.
    pub queue_depth: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    /// `None` means such requests run to completion.
    pub default_deadline: Option<Duration>,
    /// Install SIGINT/SIGTERM handlers that trigger graceful drain.
    /// Leave off in tests (handlers are process-global).
    pub handle_signals: bool,
    /// Answer-cache capacity (entries). `0` disables the cache; otherwise
    /// the engine gets an epoch-keyed answer cache attached
    /// (`fann_core::locality`) and queries probe it before running.
    pub cache_capacity: usize,
    /// Co-located batch admission window. When set, a worker that picks
    /// up a query keeps collecting compatible jobs for up to this long
    /// (bounded by [`ServeConfig::batch_max`]) and answers them from one
    /// shared multi-source expansion. Health/metrics stay inline on the
    /// reader threads, so observability is unaffected by an open window.
    /// `None` preserves the one-query-per-dispatch behavior.
    pub batch_window: Option<Duration>,
    /// Most queries one batch window may collect.
    pub batch_max: usize,
    /// Serve as one shard of a partitioned deployment: restrict candidate
    /// sets and update batches to the owned node set and advertise the
    /// shard in `health`/`metrics`. `None` serves the whole graph.
    pub shard: Option<ShardRole>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_depth: 64,
            default_deadline: None,
            handle_signals: false,
            cache_capacity: 0,
            batch_window: None,
            batch_max: 16,
            shard: None,
        }
    }
}

/// The `(shard, owned_nodes, region)` triple advertised by `health` and
/// `metrics` (all absent outside shard mode).
fn shard_fields(config: &ServeConfig) -> (Option<u32>, u64, Option<[f64; 4]>) {
    match &config.shard {
        Some(role) => (
            Some(role.id),
            role.map.owned_nodes(role.id),
            Some(role.map.region(role.id)),
        ),
        None => (None, 0, None),
    }
}

/// Final report returned by [`Server::run`] after the drain completes.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    pub uptime: Duration,
    pub connections: u64,
    pub metrics: MetricsInfo,
}

/// Clonable remote control: trips the same flag as SIGTERM / the wire
/// `shutdown` op.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // async-signal-safe: a single atomic store.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn signalled() -> bool {
        false
    }
}

/// One admitted query travelling from a reader to a worker.
struct Job {
    id: Option<String>,
    spec: QuerySpec,
    admitted: Instant,
    deadline: Option<Duration>,
    writer: Arc<Mutex<TcpStream>>,
}

/// Counters shared by readers and workers. The histogram and search
/// stats sit behind one mutex (touched once per finished query); the
/// queue/inflight gauges are lock-free so `health` stays cheap.
#[derive(Default)]
struct Shared {
    metrics: Mutex<MetricsInfo>,
    queued: AtomicU64,
    inflight: AtomicU64,
    connections: AtomicU64,
}

/// A bound TCP server, not yet serving. Call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listening socket (so the port is known before serving).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Serve until shutdown, then drain and return the final stats.
    /// Blocks the calling thread; every spawned thread is joined before
    /// this returns.
    pub fn run(self, engine: &Engine) -> io::Result<ServeSummary> {
        if self.config.handle_signals {
            sig::install();
        }
        if self.config.cache_capacity > 0 {
            // Clones share the engine's state, so attaching through a
            // clone installs the cache for the caller's handle too.
            let _ = engine.clone().with_answer_cache(self.config.cache_capacity);
        }
        let started = Instant::now();
        let shared = Shared::default();
        let stop = &self.stop;
        let config = &self.config;
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        // std's Receiver is single-consumer; workers share it via a mutex
        // (held only for the blocking recv handoff, not while querying).
        let rx = Mutex::new(rx);

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..config.workers.max(1) {
                scope.spawn(|| worker_loop(engine, &rx, &shared, config));
            }

            loop {
                if stop.load(Ordering::SeqCst) || sig::signalled() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        let tx = tx.clone();
                        let shared = &shared;
                        let stop = Arc::clone(stop);
                        scope.spawn(move || {
                            connection_loop(stream, tx, engine, shared, &stop, config, started);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }

            // Drain: stop is visible to every reader (they exit within one
            // read-timeout tick and drop their queue senders); dropping ours
            // closes the queue once the last reader is gone, and workers
            // finish whatever was admitted before exiting.
            stop.store(true, Ordering::SeqCst);
            drop(tx);
            Ok(())
        })?;

        let mut metrics = shared.metrics.lock().unwrap().clone();
        metrics.epoch = engine.epoch();
        if let Some(cs) = engine.cache_stats() {
            metrics.cache_hits = cs.hits;
            metrics.cache_misses = cs.misses;
            metrics.cache_insertions = cs.insertions;
            metrics.cache_invalidated = cs.invalidated;
            metrics.cache_retained = cs.retained;
            metrics.cache_evicted = cs.evicted;
            metrics.cache_rebuilds = cs.rebuilds;
        }
        Ok(ServeSummary {
            uptime: started.elapsed(),
            connections: shared.connections.load(Ordering::Relaxed),
            metrics,
        })
    }
}

/// Per-connection reader: parses request lines, answers control ops
/// inline, admits queries onto the bounded queue (or sheds).
fn connection_loop(
    stream: TcpStream,
    tx: SyncSender<Job>,
    engine: &Engine,
    shared: &Shared,
    stop: &AtomicBool,
    config: &ServeConfig,
    started: Instant,
) {
    // Pipelined clients see responses as many small writes; without
    // TCP_NODELAY, Nagle + delayed ACK turns each flush into a ~40ms
    // stall that dwarfs any compute saved by the answer cache.
    stream.set_nodelay(true).ok();
    // The read timeout doubles as the shutdown poll interval.
    if stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Next expected `update_stream` segment on this connection (streams
    // are per-connection; a reconnect starts over at 1).
    let mut stream_next: u64 = 1;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client closed.
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(
                        trimmed,
                        &tx,
                        &writer,
                        engine,
                        shared,
                        stop,
                        config,
                        started,
                        &mut stream_next,
                    );
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Partial data (if any) stays in `line`; just poll shutdown.
                if stop.load(Ordering::SeqCst) || sig::signalled() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Drop the edges a shard does not own (owner of the smaller endpoint);
/// foreign edges are the owning shard's job. Edges naming out-of-range
/// nodes stay in so validation rejects the batch exactly like a
/// non-shard server would.
fn owned_updates(
    updates: Vec<roadnet::WeightUpdate>,
    config: &ServeConfig,
) -> Vec<roadnet::WeightUpdate> {
    match &config.shard {
        Some(role) => {
            let n = role.map.num_nodes();
            updates
                .into_iter()
                .filter(|e| e.u >= n || e.v >= n || role.map.edge_owner(e.u, e.v) == role.id)
                .collect()
        }
        None => updates,
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_line(
    trimmed: &str,
    tx: &SyncSender<Job>,
    writer: &Arc<Mutex<TcpStream>>,
    engine: &Engine,
    shared: &Shared,
    stop: &AtomicBool,
    config: &ServeConfig,
    started: Instant,
    stream_next: &mut u64,
) {
    let req = match Request::parse(trimmed) {
        Ok(r) => r,
        Err(error) => {
            shared.metrics.lock().unwrap().errors += 1;
            write_response(
                writer,
                &Response {
                    id: None,
                    body: Body::Error { error },
                },
            );
            return;
        }
    };
    match req.op {
        Op::Health => {
            let snap = engine.snapshot();
            let (shard, owned_nodes, region) = shard_fields(config);
            let report = engine.last_repair_report().unwrap_or_default();
            let body = Body::Health(HealthInfo {
                uptime_ms: started.elapsed().as_millis() as u64,
                inflight: shared.inflight.load(Ordering::Relaxed),
                queued: shared.queued.load(Ordering::Relaxed),
                workers: config.workers.max(1) as u64,
                draining: stop.load(Ordering::SeqCst) || sig::signalled(),
                epoch: snap.epoch(),
                // Stale covers every index a repair pass still owes: lagging
                // labels and unfolded maintained-G-tree updates alike.
                stale: snap.is_stale() || engine.needs_repair(),
                shard,
                owned_nodes,
                region,
                labels_repaired: report.labels_repaired,
                labels_total: report.labels_total,
                repair_scoped_leaves: report.scoped_leaves,
                gtree_entries_repaired: report.gtree_entries_repaired,
                gtree_entries_total: report.gtree_entries_total,
                last_repair_ms: report.wall_ms(),
            });
            write_response(writer, &Response { id: req.id, body });
        }
        Op::Metrics => {
            let mut m = shared.metrics.lock().unwrap().clone();
            m.epoch = engine.epoch();
            (m.shard, m.owned_nodes, m.region) = shard_fields(config);
            // Cache counters live on the engine (shared by all workers and
            // the updater), not in the per-request metrics.
            if let Some(cs) = engine.cache_stats() {
                m.cache_hits = cs.hits;
                m.cache_misses = cs.misses;
                m.cache_insertions = cs.insertions;
                m.cache_invalidated = cs.invalidated;
                m.cache_retained = cs.retained;
                m.cache_evicted = cs.evicted;
                m.cache_rebuilds = cs.rebuilds;
            }
            if let Some(report) = engine.last_repair_report() {
                m.labels_repaired = report.labels_repaired;
                m.labels_total = report.labels_total;
                m.repair_scoped_leaves = report.scoped_leaves;
                m.last_repair_ms = report.wall_ms();
            }
            write_response(
                writer,
                &Response {
                    id: req.id,
                    body: Body::Metrics(Box::new(m)),
                },
            );
        }
        Op::Update(updates) => {
            let updates = owned_updates(updates, config);
            if updates.is_empty() {
                // Nothing owned here: acknowledge without bumping the epoch.
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::Updated {
                            epoch: engine.epoch(),
                            applied: 0,
                        },
                    },
                );
                return;
            }
            // Applied inline on the reader thread: the swap is lock-free
            // for readers, so in-flight queries are never blocked — they
            // keep their pinned snapshot; later queries see the new epoch.
            let applied = updates.len() as u64;
            match engine.apply_updates(&updates) {
                Ok(epoch) => {
                    // Labels (if any) are now stale: queries stay exact via
                    // the guarded fallback while a background rebuild runs.
                    engine.repair_in_background();
                    shared.metrics.lock().unwrap().updates += 1;
                    write_response(
                        writer,
                        &Response {
                            id: req.id,
                            body: Body::Updated { epoch, applied },
                        },
                    );
                }
                Err(e) => {
                    shared.metrics.lock().unwrap().errors += 1;
                    write_response(
                        writer,
                        &Response {
                            id: req.id,
                            body: Body::Error {
                                error: e.to_string(),
                            },
                        },
                    );
                }
            }
        }
        Op::UpdateStream { seq, updates } => {
            // Per-connection ordered stream: segments carry consecutive
            // sequence numbers starting at 1. Duplicates (seq already
            // applied) are re-acked idempotently; a gap rejects the segment
            // without applying so the client can rewind and resend.
            if updates.len() > MAX_STREAM_SEGMENT {
                shared.metrics.lock().unwrap().errors += 1;
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::StreamError {
                            kind: StreamErrorKind::Overflow,
                            expected: MAX_STREAM_SEGMENT as u64,
                            got: updates.len() as u64,
                        },
                    },
                );
                return;
            }
            if seq < *stream_next {
                // Already applied: cumulative re-ack, nothing re-applied.
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::StreamAck {
                            seq: *stream_next - 1,
                            epoch: engine.epoch(),
                            applied: 0,
                        },
                    },
                );
                return;
            }
            if seq > *stream_next {
                shared.metrics.lock().unwrap().errors += 1;
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::StreamError {
                            kind: StreamErrorKind::Gap,
                            expected: *stream_next,
                            got: seq,
                        },
                    },
                );
                return;
            }
            let updates = owned_updates(updates, config);
            if updates.is_empty() {
                // Nothing owned here: the segment still advances the stream
                // so acks stay cumulative across shards.
                *stream_next = seq + 1;
                shared.metrics.lock().unwrap().stream_segments += 1;
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::StreamAck {
                            seq,
                            epoch: engine.epoch(),
                            applied: 0,
                        },
                    },
                );
                return;
            }
            let applied = updates.len() as u64;
            match engine.apply_updates(&updates) {
                Ok(epoch) => {
                    engine.repair_in_background();
                    *stream_next = seq + 1;
                    let mut m = shared.metrics.lock().unwrap();
                    m.updates += 1;
                    m.stream_segments += 1;
                    m.stream_updates += applied;
                    drop(m);
                    write_response(
                        writer,
                        &Response {
                            id: req.id,
                            body: Body::StreamAck {
                                seq,
                                epoch,
                                applied,
                            },
                        },
                    );
                }
                Err(e) => {
                    // Sequence NOT advanced: the client may fix and resend
                    // the same seq.
                    shared.metrics.lock().unwrap().errors += 1;
                    write_response(
                        writer,
                        &Response {
                            id: req.id,
                            body: Body::Error {
                                error: e.to_string(),
                            },
                        },
                    );
                }
            }
        }
        Op::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            write_response(
                writer,
                &Response {
                    id: req.id,
                    body: Body::Bye,
                },
            );
        }
        Op::Query(mut spec) => {
            if let Some(role) = &config.shard {
                // Serve the owned slice of the candidate set. Out-of-range
                // ids pass through so the engine rejects them like a
                // non-shard server. An empty owned slice is a valid "no
                // candidate reaches k of Q here" answer.
                let n = role.map.num_nodes();
                if spec.p.iter().all(|&v| v < n) {
                    spec.p.retain(|&v| role.map.owner(v) == role.id);
                    if spec.p.is_empty() {
                        let mut m = shared.metrics.lock().unwrap();
                        m.requests += 1;
                        m.empty += 1;
                        drop(m);
                        write_response(
                            writer,
                            &Response {
                                id: req.id,
                                body: Body::Empty,
                            },
                        );
                        return;
                    }
                }
            }
            if stop.load(Ordering::SeqCst) || sig::signalled() {
                shared.metrics.lock().unwrap().shed += 1;
                write_response(
                    writer,
                    &Response {
                        id: req.id,
                        body: Body::Shed,
                    },
                );
                return;
            }
            let deadline = spec
                .deadline_ms
                .map(Duration::from_millis)
                .or(config.default_deadline);
            let job = Job {
                id: req.id,
                spec,
                admitted: Instant::now(),
                deadline,
                writer: Arc::clone(writer),
            };
            match tx.try_send(job) {
                Ok(()) => {
                    shared.queued.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.lock().unwrap().requests += 1;
                }
                Err(TrySendError::Full(job) | TrySendError::Disconnected(job)) => {
                    shared.metrics.lock().unwrap().shed += 1;
                    write_response(
                        &job.writer,
                        &Response {
                            id: job.id,
                            body: Body::Shed,
                        },
                    );
                }
            }
        }
    }
}

/// Query worker: owns one re-armable token; drains the queue to empty
/// even after shutdown begins (admitted requests are never dropped).
/// With a batch window configured, a worker that picks up a query keeps
/// the queue for up to the window and answers everything it collected
/// from one shared co-located expansion ([`Engine::query_colocated`]).
fn worker_loop(engine: &Engine, rx: &Mutex<Receiver<Job>>, shared: &Shared, config: &ServeConfig) {
    let token = CancelToken::new();
    let window = config.batch_window.filter(|w| !w.is_zero());
    loop {
        let job = match rx.lock().unwrap().recv() {
            Ok(j) => j,
            Err(_) => return, // queue closed and empty: drain complete.
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        let Some(window) = window else {
            shared.inflight.fetch_add(1, Ordering::Relaxed);
            let resp = execute(engine, &token, &job, shared);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            write_response(&job.writer, &resp);
            continue;
        };
        // Admission window: collect co-located work while it lasts. The
        // receiver mutex is held for the window, which serializes batch
        // collection across workers — but health/metrics never touch the
        // queue, so observability stays inline.
        let mut jobs = vec![job];
        let opened = Instant::now();
        {
            let rx = rx.lock().unwrap();
            while jobs.len() < config.batch_max.max(1) {
                let Some(remaining) = window.checked_sub(opened.elapsed()) else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(j) => {
                        shared.queued.fetch_sub(1, Ordering::Relaxed);
                        jobs.push(j);
                    }
                    Err(_) => break, // window elapsed, or queue closed.
                }
            }
        }
        shared
            .inflight
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        execute_batch(engine, jobs, shared);
    }
}

/// Answer one collected batch: per-job deadline pre-check (a job whose
/// deadline lapsed in the queue or the window is cancelled without
/// running), one [`Engine::query_colocated`] call for the rest, per-job
/// deadline post-check before writing. Batched queries record latency but
/// not search stats (the shared expansion has no per-query attribution);
/// cache counters are read from the engine at `metrics` time.
fn execute_batch(engine: &Engine, jobs: Vec<Job>, shared: &Shared) {
    let mut live: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut queries: Vec<BatchQuery> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let expired = job.deadline.is_some_and(|d| {
            d.checked_sub(job.admitted.elapsed())
                .is_none_or(|r| r.is_zero())
        });
        if expired {
            shared.metrics.lock().unwrap().cancelled += 1;
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            write_response(
                &job.writer,
                &Response {
                    id: job.id.clone(),
                    body: Body::Cancelled,
                },
            );
        } else {
            let s = &job.spec;
            queries.push(BatchQuery::new(s.p.clone(), s.q.clone(), s.phi, s.agg));
            live.push(i);
        }
    }
    {
        let mut m = shared.metrics.lock().unwrap();
        m.batches += 1;
        m.batch_queries += live.len() as u64;
    }
    let results = engine.query_colocated(&queries);
    for (&i, result) in live.iter().zip(results) {
        let job = &jobs[i];
        let elapsed = job.admitted.elapsed();
        let over_deadline = job.deadline.is_some_and(|d| elapsed >= d);
        let resp = match result {
            _ if over_deadline => {
                shared.metrics.lock().unwrap().cancelled += 1;
                Response {
                    id: job.id.clone(),
                    body: Body::Cancelled,
                }
            }
            Ok(answer) => {
                let mut m = shared.metrics.lock().unwrap();
                m.latency.record(elapsed);
                match answer {
                    Some(_) => m.ok += 1,
                    None => m.empty += 1,
                }
                drop(m);
                let strategy = engine.strategy_for(job.spec.agg).name();
                Response::for_answer(
                    job.id.clone(),
                    answer.as_ref(),
                    strategy,
                    elapsed.as_micros() as u64,
                )
            }
            Err(e) => {
                shared.metrics.lock().unwrap().errors += 1;
                Response {
                    id: job.id.clone(),
                    body: Body::Error {
                        error: e.to_string(),
                    },
                }
            }
        };
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        write_response(&job.writer, &resp);
    }
}

fn execute(engine: &Engine, token: &CancelToken, job: &Job, shared: &Shared) -> Response {
    let id = job.id.clone();
    // The deadline clock started at admission: a query that sat in the
    // queue past its deadline is cancelled without running.
    let remaining = match job.deadline {
        Some(d) => match d.checked_sub(job.admitted.elapsed()) {
            Some(r) if !r.is_zero() => Some(Some(r)),
            _ => None,
        },
        None => Some(None),
    };
    let Some(budget) = remaining else {
        shared.metrics.lock().unwrap().cancelled += 1;
        return Response {
            id,
            body: Body::Cancelled,
        };
    };
    token.arm(budget);
    let spec = &job.spec;
    let outcome =
        engine.query_cached_traced_cancellable(&spec.p, &spec.q, spec.phi, spec.agg, token);
    let elapsed = job.admitted.elapsed();
    let mut m = shared.metrics.lock().unwrap();
    match outcome {
        Ok((answer, stats, _cache)) => {
            m.latency.record(elapsed);
            m.search.add(&stats);
            match answer {
                Some(_) => m.ok += 1,
                None => m.empty += 1,
            }
            drop(m);
            let strategy = engine.strategy_for(spec.agg).name();
            Response::for_answer(id, answer.as_ref(), strategy, elapsed.as_micros() as u64)
        }
        Err(QueryError::Cancelled) => {
            m.cancelled += 1;
            drop(m);
            Response {
                id,
                body: Body::Cancelled,
            }
        }
        Err(e) => {
            m.errors += 1;
            drop(m);
            Response {
                id,
                body: Body::Error {
                    error: e.to_string(),
                },
            }
        }
    }
}

/// Serialize + write one response line. Write errors mean the client is
/// gone; the query result is simply dropped.
fn write_response(writer: &Arc<Mutex<TcpStream>>, resp: &Response) {
    let mut line = resp.to_json();
    line.push('\n');
    if let Ok(mut w) = writer.lock() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}
