//! A minimal JSON value, parser, and serializer.
//!
//! The wire protocol is line-delimited JSON and the build environment has
//! no registry access, so the crate carries its own implementation: a
//! recursive-descent parser over the full JSON grammar (RFC 8259) and a
//! compact serializer. Objects preserve insertion order (association list,
//! not a map) so serialized responses are deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers as `f64` — exact for the integers this protocol
    /// carries (node ids and distances below 2^53).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error (a protocol line carries exactly one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, `None` if negative, fractional, or not a
    /// number — node ids and distances must be exact integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace), suitable for one protocol line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one (possibly multi-byte) UTF-8 scalar.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"op":"query","p":[1,2,3],"phi":0.5,"deep":{"a":[{}]}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("phi").and_then(Json::as_f64), Some(0.5));
        let p: Vec<u64> = v
            .get("p")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(p, vec![1, 2, 3]);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::from(1)),
            ("a".into(), Json::from(2)),
        ]);
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::Str("line\nquote\" back\\slash \t\u{1}".to_string());
        let text = original.to_json();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""é😀""#).unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "01x", "\"", "{}extra", "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn large_exact_integers_roundtrip() {
        let n = (1u64 << 53) - 1;
        let v = Json::parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        assert_eq!(v.to_json(), n.to_string());
    }

    #[test]
    fn as_u64_rejects_negative_and_fractional() {
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"1\"").unwrap().as_u64(), None);
    }
}
