//! `fannr-serve`: a std-only TCP query server for FANN_R queries.
//!
//! The paper's algorithms answer one query at a time; this crate turns the
//! [`fann_core::engine::Engine`] into a network service with the load
//! discipline a shared road-network index needs:
//!
//! - **Bounded admission** — a fixed-depth queue in front of the workers;
//!   overload sheds immediately (`status:"shed"`) instead of buffering
//!   without bound ([`server`]).
//! - **Per-request deadlines** — each query carries `deadline_ms`
//!   (measured from admission, so queue wait counts) enforced by
//!   cooperative cancellation: the search kernels poll a
//!   [`roadnet::CancelToken`] and return `cancelled` — never a partial or
//!   wrong answer.
//! - **Graceful drain** — SIGINT/SIGTERM, the wire `shutdown` op, or a
//!   [`ShutdownHandle`] stop the acceptor, finish every admitted query,
//!   and flush the final stats.
//! - **Observability inline** — `health` and `metrics` requests are
//!   answered by the reader thread, bypassing the queue, so they work even
//!   when queries are being shed.
//!
//! The wire format is line-delimited JSON ([`protocol`]) with a hand-rolled
//! parser/serializer ([`json`]) — no external dependencies anywhere in the
//! crate. The same [`protocol::Response`] serializer backs
//! `fannr query --json`, so CLI output and the wire protocol cannot drift.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientReader, ClientWriter};
pub use json::{Json, JsonError};
pub use protocol::{
    Body, HealthInfo, MetricsInfo, Op, QuerySpec, Request, Response, StreamErrorKind,
    MAX_STREAM_SEGMENT, STREAM_WINDOW,
};
pub use server::{ServeConfig, ServeSummary, Server, ShardRole, ShutdownHandle};
